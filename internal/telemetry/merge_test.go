package telemetry

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// nodeRegistry builds one simulated node's registry with the same family
// layout on every node (as a homogeneous fleet would have) and drives rng
// observations through it, returning the per-node expected totals.
func nodeRegistry(rng *rand.Rand, bounds []float64, exemplarNS int64) (*Registry, uint64, uint64, float64) {
	reg := NewRegistry()
	scans := reg.CounterVec("scans_total", "scans", "outcome")
	h := reg.Histogram("latency_ms", "latency", bounds)
	inflight := reg.Gauge("inflight", "inflight scans")

	ok := uint64(rng.Intn(1000))
	errs := uint64(rng.Intn(100))
	scans.With("ok").Add(ok)
	scans.With("error").Add(errs)
	var sum float64
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 120
		sum += v
		h.Observe(v)
	}
	h.exemplarFor(exemplarNS)
	inflight.Set(float64(rng.Intn(8)))
	return reg, ok, errs, sum
}

// exemplarFor plants an exemplar with a controlled timestamp so the
// most-recent-wins property is deterministic under test.
func (h *Histogram) exemplarFor(unixNano int64) {
	h.exemplar.Store(&Exemplar{Value: 1, TraceID: traceIDForNS(unixNano), UnixNano: unixNano})
}

func traceIDForNS(ns int64) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 16)
	for i := range b {
		b[i] = hex[(uint64(ns)>>(4*uint(i%16)))&0xf]
	}
	return string(b)
}

func findSample(samples []Sample, name string, labels map[string]string) *Sample {
	for i := range samples {
		if samples[i].Name != name {
			continue
		}
		if labelString(samples[i].Labels) == labelString(labels) {
			return &samples[i]
		}
	}
	return nil
}

// TestMergeSumsExactly is the federation correctness property: across
// randomized per-node loads, the merged counter values and histogram
// count/sum/buckets are exactly the arithmetic sums of the per-node values
// — bit-exact for counters and bucket counts, and the exemplar comes from
// the node with the most recent observation.
func TestMergeSumsExactly(t *testing.T) {
	bounds := []float64{1, 5, 25, 100}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		nNodes := 2 + rng.Intn(4)
		var sets [][]Sample
		var wantOK, wantErr, wantCount uint64
		var wantSum float64
		wantBuckets := make([]uint64, len(bounds)+1)
		newestNS := int64(-1)
		for n := 0; n < nNodes; n++ {
			exNS := int64(1000 + rng.Intn(1000))
			if exNS > newestNS {
				newestNS = exNS
			}
			reg, ok, errs, sum := nodeRegistry(rng, bounds, exNS)
			wantOK += ok
			wantErr += errs
			wantSum += sum
			snap := reg.Snapshot()
			if hs := findSample(snap, "latency_ms", nil); hs != nil {
				wantCount += hs.Count
				for i, b := range hs.Buckets {
					wantBuckets[i] += b.Count
				}
			}
			// Round-trip each node's snapshot through the wire codec first:
			// merge operates on what the coordinator actually receives.
			wire, err := MarshalSamples(snap)
			if err != nil {
				t.Fatalf("trial %d: MarshalSamples: %v", trial, err)
			}
			back, err := UnmarshalSamples(wire)
			if err != nil {
				t.Fatalf("trial %d: UnmarshalSamples: %v", trial, err)
			}
			sets = append(sets, back)
		}
		fleet, err := Merge(sets...)
		if err != nil {
			t.Fatalf("trial %d: Merge: %v", trial, err)
		}
		if s := findSample(fleet, "scans_total", map[string]string{"outcome": "ok"}); s == nil || s.Value != float64(wantOK) {
			t.Fatalf("trial %d: ok counter = %+v, want exactly %d", trial, s, wantOK)
		}
		if s := findSample(fleet, "scans_total", map[string]string{"outcome": "error"}); s == nil || s.Value != float64(wantErr) {
			t.Fatalf("trial %d: error counter = %+v, want exactly %d", trial, s, wantErr)
		}
		hs := findSample(fleet, "latency_ms", nil)
		if hs == nil {
			t.Fatalf("trial %d: merged histogram missing", trial)
		}
		if hs.Count != wantCount {
			t.Fatalf("trial %d: merged count = %d, want %d", trial, hs.Count, wantCount)
		}
		if hs.Value != wantSum {
			// Histogram sums are float adds in a fixed order per node; the
			// merge adds per-node sums, which is exactly the sum of the
			// per-node Sum() values (associativity is NOT assumed — wantSum
			// accumulated in the same per-node order).
			t.Fatalf("trial %d: merged sum = %v, want %v", trial, hs.Value, wantSum)
		}
		if len(hs.Buckets) != len(bounds)+1 {
			t.Fatalf("trial %d: merged buckets = %d, want %d", trial, len(hs.Buckets), len(bounds)+1)
		}
		for i, b := range hs.Buckets {
			if b.Count != wantBuckets[i] {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, i, b.Count, wantBuckets[i])
			}
		}
		if !math.IsInf(hs.Buckets[len(hs.Buckets)-1].UpperBound, 1) {
			t.Fatalf("trial %d: +Inf bound lost in wire round-trip: %v", trial, hs.Buckets)
		}
		if hs.Exemplar == nil || hs.Exemplar.UnixNano != newestNS {
			t.Fatalf("trial %d: exemplar = %+v, want most recent (ns %d)", trial, hs.Exemplar, newestNS)
		}
	}
}

func TestMergeLayoutMismatchTyped(t *testing.T) {
	a := NewRegistry()
	a.Histogram("latency_ms", "latency", []float64{1, 5, 25}).Observe(3)
	b := NewRegistry()
	b.Histogram("latency_ms", "latency", []float64{1, 10, 25}).Observe(3)

	_, err := Merge(a.Snapshot(), b.Snapshot())
	var le *LayoutError
	if !errors.As(err, &le) {
		t.Fatalf("mismatched bounds: err = %v, want *LayoutError", err)
	}
	if le.Name != "latency_ms" {
		t.Fatalf("LayoutError.Name = %q", le.Name)
	}

	c := NewRegistry()
	c.Histogram("latency_ms", "latency", []float64{1, 5}).Observe(3)
	if _, err := Merge(a.Snapshot(), c.Snapshot()); !errors.As(err, &le) {
		t.Fatalf("mismatched bucket count: err = %v, want *LayoutError", err)
	}

	d := NewRegistry()
	d.Counter("latency_ms", "not a histogram").Inc()
	if _, err := Merge(a.Snapshot(), d.Snapshot()); !errors.As(err, &le) {
		t.Fatalf("mismatched kind: err = %v, want *LayoutError", err)
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h", "", []float64{1, 2}).Observe(1.5)
	reg.Counter("c", "").Add(3)
	snapA, snapB := reg.Snapshot(), reg.Snapshot()
	before := snapA[0].Value

	if _, err := Merge(snapA, snapB); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if snapA[0].Value != before {
		t.Fatal("Merge mutated its input slice")
	}
	hs := findSample(snapA, "h", nil)
	if hs.Buckets[0].Count != 0 || hs.Buckets[1].Count != 1 {
		t.Fatalf("Merge mutated input buckets: %v", hs.Buckets)
	}
}

func TestMergeGaugesSumAndPassThrough(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("inflight", "").Set(3)
	b.Gauge("inflight", "").Set(4)
	a.Counter("only_on_a", "").Add(7)

	fleet, err := Merge(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if s := findSample(fleet, "inflight", nil); s == nil || s.Value != 7 {
		t.Fatalf("gauge sum = %+v, want 7", s)
	}
	if s := findSample(fleet, "only_on_a", nil); s == nil || s.Value != 7 {
		t.Fatalf("pass-through sample = %+v, want 7", s)
	}
}

func TestWithLabel(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("scans_total", "", "outcome").With("ok").Inc()
	reg.Counter("plain", "").Inc()
	snap := reg.Snapshot()

	labeled := WithLabel(snap, "node", "n1")
	for _, s := range labeled {
		if s.Labels["node"] != "n1" {
			t.Fatalf("sample %s missing node label: %v", s.Name, s.Labels)
		}
	}
	// Inputs untouched.
	for _, s := range snap {
		if s.Labels["node"] != "" {
			t.Fatalf("WithLabel mutated input sample %s: %v", s.Name, s.Labels)
		}
	}
	// Existing key overwritten, not duplicated.
	for i, s := range WithLabel(labeled, "node", "n2") {
		if s.Labels["node"] != "n2" || len(s.Labels) != len(labeled[i].Labels) {
			t.Fatalf("relabel wrong: %v vs %v", s.Labels, labeled[i].Labels)
		}
	}
}

// TestFederatedOpenMetricsDocument pins the exposition of a merged fleet
// set: exemplars survive federation (attributed to the most recent node),
// node-labeled series render, and the document stays a valid OpenMetrics
// stream ending in # EOF.
func TestFederatedOpenMetricsDocument(t *testing.T) {
	a := NewRegistry()
	ha := a.Histogram("latency_ms", "latency", []float64{1, 10})
	ha.Observe(0.5)
	ha.exemplarFor(100)
	b := NewRegistry()
	hb := b.Histogram("latency_ms", "latency", []float64{1, 10})
	hb.Observe(5)
	hb.exemplarFor(200)

	fleet, err := Merge(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var all []Sample
	all = append(all, fleet...)
	all = append(all, WithLabel(a.Snapshot(), "node", "node-a")...)
	all = append(all, WithLabel(b.Snapshot(), "node", "node-b")...)

	var sb strings.Builder
	if err := WriteOpenMetricsSamples(&sb, all); err != nil {
		t.Fatalf("WriteOpenMetricsSamples: %v", err)
	}
	doc := sb.String()
	if !strings.HasSuffix(doc, "# EOF\n") {
		t.Fatalf("document does not end with # EOF:\n%s", doc)
	}
	if strings.Count(doc, "# EOF") != 1 {
		t.Fatalf("more than one # EOF terminator:\n%s", doc)
	}
	wantEx := traceIDForNS(200)
	if !strings.Contains(doc, wantEx) {
		t.Fatalf("fleet exemplar (most recent node) missing from exposition:\n%s", doc)
	}
	if !strings.Contains(doc, `node="node-a"`) || !strings.Contains(doc, `node="node-b"`) {
		t.Fatalf("node-labeled series missing:\n%s", doc)
	}
	// The fleet histogram count is the sum of both nodes'.
	if !strings.Contains(doc, "latency_ms_count 2") {
		t.Fatalf("fleet count line missing:\n%s", doc)
	}
}

func TestSampleWireRoundTripExact(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_ms", "latency", []float64{0.5, 2.5})
	h.Observe(0.1)
	h.ObserveExemplar(2, "00000000deadbeef")
	reg.CounterVec("scans_total", "scans", "outcome").With("ok").Add(1 << 50)
	reg.Gauge("inflight", "live").Set(2.5)

	snap := reg.Snapshot()
	wire, err := MarshalSamples(snap)
	if err != nil {
		t.Fatalf("MarshalSamples: %v", err)
	}
	back, err := UnmarshalSamples(wire)
	if err != nil {
		t.Fatalf("UnmarshalSamples: %v", err)
	}
	if len(back) != len(snap) {
		t.Fatalf("round-trip lost samples: %d vs %d", len(back), len(snap))
	}
	for i := range snap {
		a, b := snap[i], back[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.Value != b.Value || a.Count != b.Count {
			t.Fatalf("sample %d mismatch:\n%+v\n%+v", i, a, b)
		}
		for j := range a.Buckets {
			if a.Buckets[j] != b.Buckets[j] {
				t.Fatalf("sample %d bucket %d: %v vs %v (+Inf must survive)", i, j, a.Buckets[j], b.Buckets[j])
			}
		}
		if (a.Exemplar == nil) != (b.Exemplar == nil) {
			t.Fatalf("sample %d exemplar lost", i)
		}
		if a.Exemplar != nil && *a.Exemplar != *b.Exemplar {
			t.Fatalf("sample %d exemplar: %+v vs %+v", i, a.Exemplar, b.Exemplar)
		}
	}
}
