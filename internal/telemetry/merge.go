package telemetry

// Metrics federation: serialize a registry Snapshot, ship it across the
// fleet, and Merge per-node snapshots into one fleet-wide sample set.
//
// Merge semantics:
//
//   - samples are keyed by (name, label set); same-key samples from
//     different nodes combine, distinct keys pass through;
//   - counters and gauges sum (a fleet gauge such as inflight scans is the
//     sum of per-node values);
//   - histograms require bit-identical bucket layouts — same bound count,
//     same bounds, compared as exact float64 values — and then sum
//     per-bucket cumulative counts, the observation count, and the sum.
//     A layout mismatch (nodes running different build vintages with
//     different bucket ladders) fails with *LayoutError rather than
//     producing silently wrong quantiles;
//   - exemplars keep the most recent observation across nodes (largest
//     UnixNano), so the fleet view's tail exemplar links to the node that
//     actually served the slow scan;
//   - output order is deterministic: families in first-seen order, children
//     within a family sorted by label string — the same convention as
//     Registry.Snapshot, so exposition writers can rely on contiguous
//     families.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// LayoutError reports two same-key samples that cannot merge: mismatched
// metric kinds or mismatched histogram bucket layouts.
type LayoutError struct {
	Name   string
	Labels string // canonical label string, "" when unlabeled
	Reason string
}

func (e *LayoutError) Error() string {
	if e.Labels == "" {
		return fmt.Sprintf("telemetry: cannot merge %s: %s", e.Name, e.Reason)
	}
	return fmt.Sprintf("telemetry: cannot merge %s%s: %s", e.Name, e.Labels, e.Reason)
}

// sampleKey is the merge identity: name plus canonical label rendering.
func sampleKey(s Sample) string { return s.Name + labelString(s.Labels) }

// Merge combines any number of sample sets (typically one Snapshot per
// node) into one fleet-wide set. Inputs are not mutated; merged histogram
// samples get fresh bucket slices. Counter sums are exact: per-node uint64
// counters are summed in uint64 before the float64 Value is rebuilt, so
// federated totals equal the arithmetic sum of per-node totals bit-for-bit
// as long as each total is below 2^53 (beyond float64's integer range no
// exposition format is exact either).
func Merge(sets ...[]Sample) ([]Sample, error) {
	type slot struct {
		s Sample
		// uintValue accumulates counter sums exactly; Value is rebuilt
		// from it for kind "counter" samples with integral values.
		uintValue uint64
		integral  bool
	}
	var familyOrder []string
	children := map[string]map[string]*slot{} // family → key → slot
	for _, set := range sets {
		for _, s := range set {
			fam := children[s.Name]
			if fam == nil {
				fam = map[string]*slot{}
				children[s.Name] = fam
				familyOrder = append(familyOrder, s.Name)
			}
			key := sampleKey(s)
			sl := fam[key]
			if sl == nil {
				cp := s
				cp.Labels = copyLabels(s.Labels)
				cp.Buckets = append([]Bucket(nil), s.Buckets...)
				uv, ok := exactUint(s.Value)
				fam[key] = &slot{s: cp, uintValue: uv, integral: ok}
				continue
			}
			if sl.s.Kind != s.Kind {
				return nil, &LayoutError{Name: s.Name, Labels: labelString(s.Labels),
					Reason: fmt.Sprintf("kind %s vs %s", sl.s.Kind, s.Kind)}
			}
			switch s.Kind {
			case "histogram":
				if err := mergeHistogram(&sl.s, s); err != nil {
					return nil, err
				}
			default:
				sl.s.Value += s.Value
				uv, ok := exactUint(s.Value)
				sl.uintValue += uv
				sl.integral = sl.integral && ok
			}
			if sl.s.Help == "" {
				sl.s.Help = s.Help
			}
		}
	}
	var out []Sample
	for _, name := range familyOrder {
		fam := children[name]
		keys := make([]string, 0, len(fam))
		for k := range fam {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sl := fam[k]
			if sl.s.Kind == "counter" && sl.integral {
				sl.s.Value = float64(sl.uintValue)
			}
			out = append(out, sl.s)
		}
	}
	return out, nil
}

// exactUint reports v as a uint64 when it is a non-negative integer inside
// float64's exact range.
func exactUint(v float64) (uint64, bool) {
	if v >= 0 && v < 1<<53 && v == math.Trunc(v) {
		return uint64(v), true
	}
	return 0, false
}

func mergeHistogram(dst *Sample, src Sample) error {
	if len(dst.Buckets) != len(src.Buckets) {
		return &LayoutError{Name: src.Name, Labels: labelString(src.Labels),
			Reason: fmt.Sprintf("bucket count %d vs %d", len(dst.Buckets), len(src.Buckets))}
	}
	for i := range dst.Buckets {
		a, b := dst.Buckets[i].UpperBound, src.Buckets[i].UpperBound
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			return &LayoutError{Name: src.Name, Labels: labelString(src.Labels),
				Reason: fmt.Sprintf("bucket %d bound %v vs %v", i, a, b)}
		}
	}
	for i := range dst.Buckets {
		dst.Buckets[i].Count += src.Buckets[i].Count
	}
	dst.Count += src.Count
	dst.Value += src.Value
	if src.Exemplar != nil && (dst.Exemplar == nil || src.Exemplar.UnixNano > dst.Exemplar.UnixNano) {
		dst.Exemplar = src.Exemplar
	}
	return nil
}

// WithLabel returns a copy of samples with an extra label on every sample
// — the federation path stamps node identity this way (label "node") at
// exposition time rather than widening every registered family. An
// existing label under the same key is overwritten.
func WithLabel(samples []Sample, key, value string) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		cp := s
		cp.Labels = copyLabels(s.Labels)
		if cp.Labels == nil {
			cp.Labels = map[string]string{}
		}
		cp.Labels[key] = value
		out[i] = cp
	}
	return out
}

func copyLabels(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// capInf returns a deep-enough copy of samples with histogram +Inf upper
// bounds replaced by math.MaxFloat64, the repository's JSON stand-in for
// +Inf (encoding/json rejects infinities).
func capInf(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		cp := s
		cp.Buckets = append([]Bucket(nil), s.Buckets...)
		for j := range cp.Buckets {
			if math.IsInf(cp.Buckets[j].UpperBound, 1) {
				cp.Buckets[j].UpperBound = math.MaxFloat64
			}
		}
		out[i] = cp
	}
	return out
}

// uncapInf reverses capInf: a decoded snapshot's math.MaxFloat64 bounds
// become +Inf again, so merge layout checks and exposition writers see the
// registry's real ladder.
func uncapInf(samples []Sample) []Sample {
	for i := range samples {
		for j := range samples[i].Buckets {
			if samples[i].Buckets[j].UpperBound == math.MaxFloat64 {
				samples[i].Buckets[j].UpperBound = math.Inf(1)
			}
		}
	}
	return samples
}

// MarshalSamples serializes a sample set for the wire (the payload of
// GET /cluster/metrics). Histogram +Inf bounds travel as math.MaxFloat64;
// UnmarshalSamples restores them.
func MarshalSamples(samples []Sample) ([]byte, error) {
	return json.Marshal(capInf(samples))
}

// UnmarshalSamples parses a MarshalSamples payload, restoring +Inf bucket
// bounds.
func UnmarshalSamples(data []byte) ([]Sample, error) {
	var samples []Sample
	if err := json.Unmarshal(data, &samples); err != nil {
		return nil, err
	}
	return uncapInf(samples), nil
}
