package telemetry

// Exposition formats: Prometheus text format 0.0.4 and a JSON document.
// Both render a Snapshot, so they are point-in-time consistent per metric
// (not across metrics — the registry takes no global lock while the hot
// paths run, by design).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (one # HELP and # TYPE line per family, histogram
// children expanded into _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusSamples(w, r.Snapshot())
}

// WritePrometheusSamples renders an arbitrary sample set (a registry
// snapshot, a decoded peer snapshot, or a Merge result) in the Prometheus
// text format. Samples sharing a name must be contiguous, as Snapshot and
// Merge both guarantee, or the family header repeats.
func WritePrometheusSamples(w io.Writer, samples []Sample) error {
	seen := map[string]bool{}
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if err := writePromSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, s Sample) error {
	if s.Kind == "histogram" {
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.Name, labelString(s.Labels, "le", le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value))
	return err
}

// labelString renders {k="v",...} with keys sorted; extra appends
// additional key/value pairs (used for the histogram "le" label). Returns
// "" when there are no labels at all.
func labelString(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(labels[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[i], escapeLabel(extra[i+1]))
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", "\\\\")
	v = strings.ReplaceAll(v, "\n", "\\n")
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, "\\", "\\\\")
	v = strings.ReplaceAll(v, "\n", "\\n")
	return v
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteOpenMetrics renders every registered metric in the OpenMetrics
// text format. It exists because the classic Prometheus format (0.0.4,
// WritePrometheus) has no exemplar syntax: OpenMetrics bucket lines may
// carry a trailing "# {trace_id=...} value timestamp" exemplar, which is
// how the serve-path latency/energy histograms link a scraped tail bucket
// back to a flight-recorder trace. bvapd's /metrics negotiates this
// format on Accept: application/openmetrics-text. Ends with the mandatory
// "# EOF" terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return WriteOpenMetricsSamples(w, r.Snapshot())
}

// WriteOpenMetricsSamples renders an arbitrary sample set in the
// OpenMetrics text format, ending with the mandatory "# EOF" terminator —
// the federation path runs Merge over per-node snapshots and exposes the
// result through this writer.
func WriteOpenMetricsSamples(w io.Writer, samples []Sample) error {
	seen := map[string]bool{}
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
		}
		if err := writeOpenMetricsSample(w, s); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeOpenMetricsSample(w io.Writer, s Sample) error {
	if s.Kind != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value))
		return err
	}
	// The exemplar goes on the one bucket whose range contains its value
	// (OpenMetrics requires previous-le < value <= le).
	exIdx := -1
	if s.Exemplar != nil {
		for i, b := range s.Buckets {
			if s.Exemplar.Value <= b.UpperBound {
				exIdx = i
				break
			}
		}
	}
	for i, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		suffix := ""
		if i == exIdx {
			suffix = fmt.Sprintf(" # {trace_id=%q} %s %s",
				escapeLabel(s.Exemplar.TraceID), formatFloat(s.Exemplar.Value),
				formatFloat(float64(s.Exemplar.UnixNano)/1e9))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			s.Name, labelString(s.Labels, "le", le), b.Count, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
	return err
}

// jsonDoc is the JSON exposition envelope.
type jsonDoc struct {
	Metrics []Sample `json:"metrics"`
}

// WriteJSON renders every registered metric as one indented JSON document
// {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	// json.Marshal encodes +Inf as an error; replace histogram +Inf upper
	// bounds with math.MaxFloat64 in the JSON view (capInf copies, so the
	// snapshot itself is untouched).
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Metrics: capInf(r.Snapshot())})
}
