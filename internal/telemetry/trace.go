package telemetry

// Structured trace emission. Two output formats share one event model:
//
//   - FormatJSONL: one JSON object per line, grep/jq-friendly;
//   - FormatChrome: the Chrome trace_event JSON array format
//     ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
//     directly.
//
// Events carry the trace_event fields: ph (phase: "X" complete span, "i"
// instant, "C" counter), ts/dur in microseconds, name, cat, pid/tid and
// args. Wall-clock events timestamp against the tracer's start time;
// simulator events may instead use virtual time (cycle numbers) through
// the *At variants, which keeps the trace's time axis meaningful for
// cycle-accurate runs.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Format selects the trace output encoding.
type Format int

const (
	// FormatJSONL writes one JSON event per line.
	FormatJSONL Format = iota
	// FormatChrome writes the Chrome trace_event array document.
	FormatChrome
)

// Event is one trace_event record.
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	// S scopes instant events ("g" global); required by the Chrome viewer
	// for ph == "i".
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer emits structured trace events to an io.Writer. It is safe for
// concurrent use. Call Close once at the end of the run; for FormatChrome
// the document is invalid JSON until Close writes the closing brackets.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	format Format
	start  time.Time
	wrote  bool
	closed bool
	err    error
	events int
}

// NewTracer starts a tracer writing to w in the given format. For
// FormatChrome the document prefix is written immediately.
func NewTracer(w io.Writer, format Format) *Tracer {
	t := &Tracer{w: w, format: format, start: time.Now()}
	if format == FormatChrome {
		_, t.err = io.WriteString(w, "{\"traceEvents\":[")
	}
	return t
}

// now returns microseconds since the tracer started.
func (t *Tracer) now() float64 {
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

// Emit writes one raw event. Most callers use Span / Instant / CounterAt
// instead.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if ev.Pid == 0 {
		ev.Pid = 1
	}
	if ev.Tid == 0 {
		ev.Tid = 1
	}
	buf, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	switch t.format {
	case FormatChrome:
		if t.wrote {
			if _, t.err = io.WriteString(t.w, ","); t.err != nil {
				return
			}
		}
		if _, t.err = t.w.Write(buf); t.err != nil {
			return
		}
	default:
		if _, t.err = t.w.Write(append(buf, '\n')); t.err != nil {
			return
		}
	}
	t.wrote = true
	t.events++
}

// Span opens a wall-clock span; the returned Span's End method emits one
// "X" (complete) event covering the elapsed time. Args set on the span
// before End are attached to the event. A nil Tracer yields a no-op span.
func (t *Tracer) Span(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, ts: t.now(), start: time.Now()}
}

// Span is an in-flight wall-clock span.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	ts    float64
	start time.Time
	args  map[string]any
}

// SetArg attaches a key/value argument to the span's event.
func (s *Span) SetArg(key string, value any) *Span {
	if s == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// End emits the span's complete event.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := float64(time.Since(s.start)) / float64(time.Microsecond)
	if dur <= 0 {
		dur = 0.001 // keep the event visible in viewers
	}
	s.t.Emit(Event{Name: s.name, Cat: s.cat, Ph: "X", Ts: s.ts, Dur: dur, Args: s.args})
}

// Instant emits a wall-clock instant event.
func (t *Tracer) Instant(name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Ph: "i", Ts: t.now(), S: "g", Args: args})
}

// InstantAt emits an instant event at a caller-supplied virtual timestamp
// (microsecond units on the trace's time axis; the simulator uses cycle
// numbers).
func (t *Tracer) InstantAt(ts float64, name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Ph: "i", Ts: ts, S: "g", Args: args})
}

// CounterAt emits a "C" counter event at a virtual timestamp: the Chrome
// viewer renders these as stacked time series (the per-cycle active-state
// occupancy trace uses this).
func (t *Tracer) CounterAt(ts float64, name string, values map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.Emit(Event{Name: name, Ph: "C", Ts: ts, Args: args})
}

// CounterSeriesAt emits a "C" counter event from parallel key/value
// slices, pairing keys[i] with values[i]. It exists for bulk exporters
// (heatmap → counter-track conversion) that hold series as slices; extra
// keys or values beyond the shorter slice are ignored. Emission order in
// the serialized event is key-sorted (encoding/json), so output is
// deterministic regardless of slice order.
func (t *Tracer) CounterSeriesAt(ts float64, name string, keys []string, values []float64) {
	if t == nil {
		return
	}
	n := len(keys)
	if len(values) < n {
		n = len(values)
	}
	args := make(map[string]any, n)
	for i := 0; i < n; i++ {
		args[keys[i]] = values[i]
	}
	t.Emit(Event{Name: name, Ph: "C", Ts: ts, Args: args})
}

// Events returns how many events have been emitted.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write or encode error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close finalizes the trace document (required for FormatChrome) and
// returns the first error encountered. Close does not close the underlying
// writer. Subsequent Emit calls are dropped.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.format == FormatChrome && t.err == nil {
		_, t.err = io.WriteString(t.w, "]}\n")
	}
	return t.err
}
