package swmatch

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"bvap/internal/nbva"
	"bvap/internal/regex"
)

func TestBasics(t *testing.T) {
	m := MustNew("ab")
	ends := m.MatchEnds([]byte("xxabyab"))
	if len(ends) != 2 || ends[0] != 3 || ends[1] != 6 {
		t.Fatalf("ends = %v", ends)
	}
	if m.Count([]byte("ababab")) != 3 {
		t.Fatalf("count = %d", m.Count([]byte("ababab")))
	}
}

func TestCounting(t *testing.T) {
	m := MustNew("ab{3}c")
	if len(m.MatchEnds([]byte("abbbc"))) != 1 {
		t.Fatal("missed abbbc")
	}
	if len(m.MatchEnds([]byte("abbc"))) != 0 {
		t.Fatal("false match abbc")
	}
	if m.Size() != 5 {
		t.Fatalf("size = %d, want 5 (unfolded)", m.Size())
	}
}

func TestMatchesEmpty(t *testing.T) {
	if !MustNew("a*").MatchesEmpty() {
		t.Fatal("a* empty")
	}
	if MustNew("a+").MatchesEmpty() {
		t.Fatal("a+ empty")
	}
}

func TestResetBetweenRuns(t *testing.T) {
	m := MustNew("ab")
	m.Step('a')
	m.Reset()
	if m.Step('b') {
		t.Fatal("stale state")
	}
	// MatchEnds resets implicitly.
	m.Step('a')
	if got := m.MatchEnds([]byte("b")); len(got) != 0 {
		t.Fatalf("MatchEnds did not reset: %v", got)
	}
}

func TestAgainstNBVA(t *testing.T) {
	patterns := []string{
		"ab{3}c", "a(bc){2,4}d", "a.{5}b", "x(ab|c){3}y", "a{2,6}",
		"a(.a){3}b", "ab{2,5}(cd){6}e", "a+b{3}c*", "xa{0,2}y",
	}
	r := rand.New(rand.NewSource(99))
	for _, pat := range patterns {
		ref := nbva.MustBuild(regex.MustParse(pat))
		m := MustNew(pat)
		for trial := 0; trial < 30; trial++ {
			input := make([]byte, 40)
			for i := range input {
				input[i] = byte('a' + r.Intn(5))
			}
			got := m.MatchEnds(input)
			want := ref.MatchEnds(input)
			if !equalInts(got, want) {
				t.Fatalf("%q input %q: swmatch %v, nbva %v", pat, input, got, want)
			}
		}
	}
}

func TestQuickAgainstNBVA(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random pattern with a bounded repetition.
		pat := "a"
		for i := 0; i < 3; i++ {
			c := string(rune('a' + r.Intn(3)))
			switch r.Intn(3) {
			case 0:
				pat += c + "{" + strconv.Itoa(2+r.Intn(5)) + "}"
			case 1:
				pat += c + "*"
			default:
				pat += c
			}
		}
		ref, err := nbva.Build(regex.MustParse(pat))
		if err != nil {
			return true
		}
		m, err := New(pat)
		if err != nil {
			return false
		}
		input := make([]byte, 30)
		for i := range input {
			input[i] = byte('a' + r.Intn(3))
		}
		return equalInts(m.MatchEnds(input), ref.MatchEnds(input))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBound(t *testing.T) {
	m := MustNew("a.{100}b")
	input := make([]byte, 102)
	input[0] = 'a'
	for i := 1; i <= 100; i++ {
		input[i] = 'x'
	}
	input[101] = 'b'
	ends := m.MatchEnds(input)
	if len(ends) != 1 || ends[0] != 101 {
		t.Fatalf("ends = %v", ends)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
