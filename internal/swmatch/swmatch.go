// Package swmatch is the "reliable software matcher" the paper's evaluation
// uses for consistency checks (§8): an implementation of streaming
// partial-match semantics that shares no simulation code with the automata
// packages or the hardware simulator, so agreement between the two is
// meaningful evidence of functional correctness.
//
// The matcher fully unfolds bounded repetitions and runs a Thompson-style
// breadth-first simulation over the position automaton, recomputing the
// follow relation with its own (deliberately simple) quadratic construction.
package swmatch

import (
	"fmt"

	"bvap/internal/charclass"
	"bvap/internal/regex"
)

// Matcher reports, for a byte stream, every position where some substring
// ending there belongs to the regex's language.
type Matcher struct {
	anchored bool
	started  bool
	classes  []charclass.Class
	first    []bool
	last     []bool
	// follow[p][q] reports whether position q may follow position p.
	follow  [][]bool
	current []bool
	scratch []bool
	empty   bool
}

// New compiles a pattern into a Matcher. A leading ^ anchors matches to
// the start of the stream.
func New(pattern string) (*Matcher, error) {
	ast, anchored, err := regex.ParseAnchored(pattern)
	if err != nil {
		return nil, err
	}
	m, err := FromAST(ast)
	if err != nil {
		return nil, err
	}
	m.anchored = anchored
	return m, nil
}

// MustNew is New for known-good patterns.
func MustNew(pattern string) *Matcher {
	m, err := New(pattern)
	if err != nil {
		panic(err)
	}
	return m
}

// FromAST compiles a parsed regex into a Matcher.
func FromAST(ast regex.Node) (*Matcher, error) {
	ast = regex.FullyUnfold(ast)
	m := &Matcher{empty: nullable(ast)}
	// Collect positions.
	var collect func(n regex.Node)
	collect = func(n regex.Node) {
		switch n := n.(type) {
		case regex.Lit:
			m.classes = append(m.classes, n.Class)
		case *regex.Concat:
			for _, f := range n.Factors {
				collect(f)
			}
		case *regex.Alt:
			for _, a := range n.Alternatives {
				collect(a)
			}
		case *regex.Star:
			collect(n.Sub)
		case *regex.Repeat:
			collect(n.Sub)
		}
	}
	collect(ast)
	n := len(m.classes)
	m.first = make([]bool, n)
	m.last = make([]bool, n)
	m.follow = make([][]bool, n)
	for i := range m.follow {
		m.follow[i] = make([]bool, n)
	}
	m.current = make([]bool, n)
	m.scratch = make([]bool, n)
	if _, err := m.analyze(ast, 0, true); err != nil {
		return nil, err
	}
	return m, nil
}

func nullable(n regex.Node) bool { return regex.Nullable(n) }

// span is the contiguous position range of a subexpression together with
// its boundary sets.
type span struct {
	firsts []int
	lasts  []int
	null   bool
	next   int // position counter after the subexpression
}

// analyze walks the AST assigning position indices in order and filling
// first/last/follow. markTop marks the whole expression's firsts/lasts into
// the matcher.
func (m *Matcher) analyze(n regex.Node, pos int, top bool) (span, error) {
	s, err := m.walk(n, pos)
	if err != nil {
		return span{}, err
	}
	if top {
		for _, p := range s.firsts {
			m.first[p] = true
		}
		for _, p := range s.lasts {
			m.last[p] = true
		}
	}
	return s, nil
}

func (m *Matcher) walk(n regex.Node, pos int) (span, error) {
	switch n := n.(type) {
	case regex.Empty:
		return span{null: true, next: pos}, nil
	case regex.Lit:
		return span{firsts: []int{pos}, lasts: []int{pos}, next: pos + 1}, nil
	case *regex.Concat:
		cur := span{null: true, next: pos}
		for _, f := range n.Factors {
			fs, err := m.walk(f, cur.next)
			if err != nil {
				return span{}, err
			}
			for _, p := range cur.lasts {
				for _, q := range fs.firsts {
					m.follow[p][q] = true
				}
			}
			merged := span{null: cur.null && fs.null, next: fs.next}
			merged.firsts = append(merged.firsts, cur.firsts...)
			if cur.null {
				merged.firsts = append(merged.firsts, fs.firsts...)
			}
			merged.lasts = append(merged.lasts, fs.lasts...)
			if fs.null {
				merged.lasts = append(merged.lasts, cur.lasts...)
			}
			cur = merged
		}
		return cur, nil
	case *regex.Alt:
		out := span{next: pos}
		for _, a := range n.Alternatives {
			as, err := m.walk(a, out.next)
			if err != nil {
				return span{}, err
			}
			out.null = out.null || as.null
			out.firsts = append(out.firsts, as.firsts...)
			out.lasts = append(out.lasts, as.lasts...)
			out.next = as.next
		}
		return out, nil
	case *regex.Star:
		ss, err := m.walk(n.Sub, pos)
		if err != nil {
			return span{}, err
		}
		for _, p := range ss.lasts {
			for _, q := range ss.firsts {
				m.follow[p][q] = true
			}
		}
		ss.null = true
		return ss, nil
	case *regex.Repeat:
		switch {
		case n.Min == 0 && n.Max == 1:
			rs, err := m.walk(n.Sub, pos)
			if err != nil {
				return span{}, err
			}
			rs.null = true
			return rs, nil
		case n.Min == 1 && n.Max == regex.Unbounded:
			rs, err := m.walk(n.Sub, pos)
			if err != nil {
				return span{}, err
			}
			for _, p := range rs.lasts {
				for _, q := range rs.firsts {
					m.follow[p][q] = true
				}
			}
			return rs, nil
		default:
			return span{}, fmt.Errorf("swmatch: unexpected bounded repetition %s after unfolding", n)
		}
	default:
		return span{}, fmt.Errorf("swmatch: unknown node %T", n)
	}
}

// Size returns the number of positions (unfolded NFA states).
func (m *Matcher) Size() int { return len(m.classes) }

// MatchesEmpty reports whether the pattern accepts the empty string.
func (m *Matcher) MatchesEmpty() bool { return m.empty }

// Reset clears streaming state.
func (m *Matcher) Reset() {
	m.started = false
	for i := range m.current {
		m.current[i] = false
	}
}

// Step consumes one byte and reports whether a match ends at it.
func (m *Matcher) Step(b byte) bool {
	next := m.scratch
	for i := range next {
		next[i] = false
	}
	for p, on := range m.current {
		if !on {
			continue
		}
		for q, f := range m.follow[p] {
			if f && m.classes[q].Contains(b) {
				next[q] = true
			}
		}
	}
	if !m.anchored || !m.started {
		for q := range m.first {
			if m.first[q] && m.classes[q].Contains(b) {
				next[q] = true
			}
		}
	}
	m.started = true
	m.current, m.scratch = next, m.current
	for q, on := range m.current {
		if on && m.last[q] {
			return true
		}
	}
	return false
}

// MatchEnds returns every input index at which a match ends.
func (m *Matcher) MatchEnds(input []byte) []int {
	m.Reset()
	var ends []int
	for i, b := range input {
		if m.Step(b) {
			ends = append(ends, i)
		}
	}
	return ends
}

// Count returns the number of match-end positions in input.
func (m *Matcher) Count(input []byte) int {
	m.Reset()
	n := 0
	for _, b := range input {
		if m.Step(b) {
			n++
		}
	}
	return n
}
