package slo

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// counters is a fake cumulative (good, total) source the tests drive.
type counters struct {
	good, total float64
}

func (c *counters) source() (float64, float64) { return c.good, c.total }

// add records n events with the given error rate.
func (c *counters) add(n, errRate float64) {
	c.total += n
	c.good += n * (1 - errRate)
}

func newTestMonitor(c *counters, log *slog.Logger) *Monitor {
	return NewMonitor([]Objective{{
		Name:       "scan-availability",
		Target:     0.999,
		Source:     c.source,
		FastWindow: 5 * time.Minute,
		SlowWindow: time.Hour,
		// Default threshold 14.4: fires when the error rate sustains at
		// 14.4 × the 0.1% budget = 1.44%.
	}}, log)
}

// drive ticks the monitor every 10s for dur, applying errRate to 100
// events per tick, and returns the advanced clock.
func drive(m *Monitor, c *counters, start time.Time, dur time.Duration, errRate float64) time.Time {
	const tick = 10 * time.Second
	now := start
	for elapsed := time.Duration(0); elapsed < dur; elapsed += tick {
		now = now.Add(tick)
		c.add(100, errRate)
		m.Observe(now)
	}
	return now
}

func TestHealthyBaselineStaysSilent(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	c := &counters{}
	m := newTestMonitor(c, log)

	start := time.Unix(1_700_000_000, 0)
	// Two simulated hours at a 0.05% error rate — half the budget.
	now := drive(m, c, start, 2*time.Hour, 0.0005)

	for _, s := range m.Status(now) {
		if s.Firing || s.Transitions != 0 {
			t.Fatalf("healthy baseline fired: %+v", s)
		}
	}
	if m.Firing() {
		t.Fatal("Firing() true on healthy baseline")
	}
	if strings.Contains(buf.String(), "alert") {
		t.Fatalf("healthy baseline logged alerts:\n%s", buf.String())
	}
}

func TestInjectedRegressionFiresAndResolves(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	c := &counters{}
	m := newTestMonitor(c, log)

	start := time.Unix(1_700_000_000, 0)
	now := drive(m, c, start, time.Hour, 0.0005) // healthy warm-up
	if m.Firing() {
		t.Fatal("fired during warm-up")
	}

	// Inject a 10% error rate — burn 100× the budget. The slow window is
	// the laggard: it needs the bad minutes to push the 1h average past
	// 14.4 × 0.1% = 1.44%, which ~15 minutes of 10% errors does.
	now = drive(m, c, now, 20*time.Minute, 0.10)
	if !m.Firing() {
		st := m.Status(now)
		t.Fatalf("regression did not fire: %+v", st)
	}
	st := m.Status(now)[0]
	if st.BurnFast < 14.4 || st.BurnSlow < 14.4 {
		t.Fatalf("firing with burns below threshold: %+v", st)
	}
	if st.Since.IsZero() {
		t.Fatal("firing status has zero Since")
	}
	if !strings.Contains(buf.String(), "slo burn-rate alert firing") {
		t.Fatalf("fire transition not logged:\n%s", buf.String())
	}

	// Recovery: the fast window clears within minutes of the fix.
	now = drive(m, c, now, 10*time.Minute, 0.0005)
	if m.Firing() {
		t.Fatalf("alert still firing 10m after recovery: %+v", m.Status(now))
	}
	if !strings.Contains(buf.String(), "slo burn-rate alert resolved") {
		t.Fatalf("resolve transition not logged:\n%s", buf.String())
	}
	// Exactly one fire + one resolve.
	if st := m.Status(now)[0]; st.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2 (fire, resolve)", st.Transitions)
	}
}

func TestShortBlipDoesNotPage(t *testing.T) {
	c := &counters{}
	m := newTestMonitor(c, nil)
	start := time.Unix(1_700_000_000, 0)
	now := drive(m, c, start, time.Hour, 0) // perfect warm-up

	// 100% errors for 30 seconds: the fast window spikes far past the
	// threshold, but the slow window absorbs it (30s of outage is 0.83% of
	// the hour — under the 14.4 × 0.1% = 1.44% slow-window trip point) —
	// multi-window suppression keeps the page quiet.
	now = drive(m, c, now, 30*time.Second, 1.0)
	if m.Firing() {
		t.Fatalf("30-second blip paged: %+v", m.Status(now))
	}
	st := m.Status(now)[0]
	if st.BurnFast < 14.4 {
		t.Fatalf("fast window did not register the blip: %+v", st)
	}
	if st.BurnSlow >= 14.4 {
		t.Fatalf("slow window fired on a 30-second blip: %+v", st)
	}
}

func TestIdleWindowsDoNotBurn(t *testing.T) {
	c := &counters{}
	m := newTestMonitor(c, nil)
	start := time.Unix(1_700_000_000, 0)
	now := start
	// No traffic at all: repeated identical readings.
	for i := 0; i < 100; i++ {
		now = now.Add(10 * time.Second)
		m.Observe(now)
	}
	st := m.Status(now)[0]
	if st.BurnFast != 0 || st.BurnSlow != 0 || st.Firing {
		t.Fatalf("idle service burns budget: %+v", st)
	}
}

func TestRingTrimsToSlowWindow(t *testing.T) {
	c := &counters{}
	m := newTestMonitor(c, nil)
	start := time.Unix(1_700_000_000, 0)
	drive(m, c, start, 6*time.Hour, 0.0005)
	st := m.objs[0]
	// 1h window at 10s cadence = 360 samples, plus the one pre-window
	// baseline and a little slack; 6h of samples must not accumulate.
	if n := len(st.ring); n > 365 {
		t.Fatalf("ring holds %d samples after 6h, want ≤ slow window (≈361)", n)
	}
}

func TestMonitorNilAndEmptySafe(t *testing.T) {
	var m *Monitor
	m.Observe(time.Now())
	if m.Firing() || m.Status(time.Now()) != nil || m.Objectives() != 0 {
		t.Fatal("nil monitor not inert")
	}
	empty := NewMonitor([]Objective{{Name: "no-source"}}, nil)
	if empty.Objectives() != 0 {
		t.Fatal("nil-Source objective not dropped")
	}
	empty.Observe(time.Now())
	if empty.Firing() {
		t.Fatal("empty monitor fired")
	}
}

func TestCounterResetTolerated(t *testing.T) {
	// A process restart resets cumulative counters to zero; deltas go
	// negative for one window. The monitor must clamp, not fire or panic.
	c := &counters{}
	m := newTestMonitor(c, nil)
	start := time.Unix(1_700_000_000, 0)
	now := drive(m, c, start, 30*time.Minute, 0)
	c.good, c.total = 0, 0
	now = drive(m, c, now, 10*time.Minute, 0)
	if m.Firing() {
		t.Fatalf("counter reset fired the alert: %+v", m.Status(now))
	}
}
