// Package slo is the fleet's service-level-objective plane: a multi-window
// burn-rate monitor over cumulative good/total counters, the standard SRE
// alerting shape, stdlib-only like the rest of the repository.
//
// An Objective declares a success-ratio target (e.g. 99.9% of scans
// succeed, or complete under 50ms). The monitor periodically samples each
// objective's cumulative (good, total) counters and derives the error
// *burn rate* over two trailing windows:
//
//	error rate = 1 - Δgood/Δtotal          (over the window)
//	burn rate  = error rate / (1 - target)
//
// A burn rate of 1 means the service is consuming its error budget exactly
// at the rate that exhausts it at the end of the SLO period; 10 means ten
// times faster. An alert fires only when BOTH windows exceed the
// threshold: the fast window (default 5m) makes the alert respond quickly
// and reset quickly once the regression stops, the slow window (default
// 1h) keeps a short blip from paging. This is the classic multi-window
// multi-burn-rate construction — it bounds both detection time and false
// positives without tuning per-service magic numbers.
//
// The monitor takes explicit timestamps (Observe(now)) and never reads the
// wall clock itself, so tests and the fleetobs soak drive simulated hours
// through it in microseconds.
package slo

import (
	"log/slog"
	"sync"
	"time"
)

// Objective is one monitored service-level objective.
type Objective struct {
	// Name identifies the objective in health output and logs
	// (e.g. "scan-availability", "scan-latency-p50ms").
	Name string
	// Target is the success-ratio objective in (0,1), e.g. 0.999. The
	// error budget is 1-Target.
	Target float64
	// Source returns the cumulative (good, total) event counts since
	// process start. Monotonic non-decreasing; the monitor works on
	// deltas, so process restarts simply reset the windows.
	Source func() (good, total float64)
	// FastWindow and SlowWindow are the two trailing burn-rate windows;
	// zero selects 5m and 1h.
	FastWindow, SlowWindow time.Duration
	// BurnThreshold is the burn rate both windows must exceed to fire;
	// zero selects 14.4 (the canonical "2% of a 30-day budget in one
	// hour" page threshold).
	BurnThreshold float64
}

func (o Objective) fill() Objective {
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 14.4
	}
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = 0.999
	}
	return o
}

// sample is one cumulative reading.
type sample struct {
	at          time.Time
	good, total float64
}

// objState is one objective's ring of readings plus alert state.
type objState struct {
	obj     Objective
	ring    []sample // chronological
	firing  bool
	since   time.Time
	changes uint64
}

// Status is one objective's evaluated state, as surfaced in
// /debug/fleet/health.
type Status struct {
	Name          string    `json:"name"`
	Target        float64   `json:"target"`
	BurnThreshold float64   `json:"burn_threshold"`
	FastWindowS   float64   `json:"fast_window_s"`
	SlowWindowS   float64   `json:"slow_window_s"`
	BurnFast      float64   `json:"burn_fast"`
	BurnSlow      float64   `json:"burn_slow"`
	ErrorRateFast float64   `json:"error_rate_fast"`
	ErrorRateSlow float64   `json:"error_rate_slow"`
	Good          float64   `json:"good"`
	Total         float64   `json:"total"`
	Firing        bool      `json:"firing"`
	Since         time.Time `json:"since,omitempty"`
	// Transitions counts fire/resolve edges since the monitor started —
	// the fleetobs gate asserts exactly one fire on an injected
	// regression and zero on the healthy baseline.
	Transitions uint64 `json:"transitions"`
}

// Monitor evaluates a set of objectives. Safe for concurrent use.
type Monitor struct {
	log *slog.Logger

	mu   sync.Mutex
	objs []*objState
}

// NewMonitor builds a monitor. log may be nil (transitions then go
// unlogged); objectives with a nil Source are dropped.
func NewMonitor(objectives []Objective, log *slog.Logger) *Monitor {
	m := &Monitor{log: log}
	for _, o := range objectives {
		if o.Source == nil {
			continue
		}
		m.objs = append(m.objs, &objState{obj: o.fill()})
	}
	return m
}

// Objectives returns the number of monitored objectives.
func (m *Monitor) Objectives() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objs)
}

// Observe takes one cumulative reading per objective at time now and
// re-evaluates alert state, logging fire/resolve transitions. Call it on a
// fixed cadence (bvapd uses a ticker; tests pass synthetic clocks).
func (m *Monitor) Observe(now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.objs {
		good, total := st.obj.Source()
		st.ring = append(st.ring, sample{at: now, good: good, total: total})
		st.trim(now)
		s := st.evaluate(now)
		if s.Firing != st.firing {
			st.firing = s.Firing
			st.changes++
			if st.firing {
				st.since = now
			} else {
				st.since = time.Time{}
			}
			if m.log != nil {
				if st.firing {
					m.log.Warn("slo burn-rate alert firing",
						"objective", st.obj.Name, "target", st.obj.Target,
						"burn_fast", s.BurnFast, "burn_slow", s.BurnSlow,
						"threshold", st.obj.BurnThreshold)
				} else {
					m.log.Info("slo burn-rate alert resolved",
						"objective", st.obj.Name,
						"burn_fast", s.BurnFast, "burn_slow", s.BurnSlow)
				}
			}
		}
	}
}

// trim drops readings older than the slow window, always keeping one
// reading at or before the window start so deltas stay well-defined.
func (st *objState) trim(now time.Time) {
	cutoff := now.Add(-st.obj.SlowWindow)
	keepFrom := 0
	for i, s := range st.ring {
		if s.at.Before(cutoff) {
			keepFrom = i
		} else {
			break
		}
	}
	if keepFrom > 0 {
		st.ring = append(st.ring[:0], st.ring[keepFrom:]...)
	}
}

// windowRates returns the error rate and burn rate over the trailing
// window w ending at now. With no traffic in the window both are 0 — an
// idle service is not burning budget.
func (st *objState) windowRates(now time.Time, w time.Duration) (errRate, burn float64) {
	if len(st.ring) == 0 {
		return 0, 0
	}
	last := st.ring[len(st.ring)-1]
	start := now.Add(-w)
	// Baseline: the newest reading at or before the window start; if every
	// reading is inside the window (monitor younger than the window), use
	// zero — everything observed so far counts.
	base := sample{}
	for _, s := range st.ring {
		if !s.at.After(start) {
			base = s
		} else {
			break
		}
	}
	dGood, dTotal := last.good-base.good, last.total-base.total
	if dTotal <= 0 {
		return 0, 0
	}
	errRate = 1 - dGood/dTotal
	if errRate < 0 {
		errRate = 0
	}
	return errRate, errRate / (1 - st.obj.Target)
}

func (st *objState) evaluate(now time.Time) Status {
	s := Status{
		Name:          st.obj.Name,
		Target:        st.obj.Target,
		BurnThreshold: st.obj.BurnThreshold,
		FastWindowS:   st.obj.FastWindow.Seconds(),
		SlowWindowS:   st.obj.SlowWindow.Seconds(),
		Firing:        st.firing,
		Since:         st.since,
		Transitions:   st.changes,
	}
	if len(st.ring) > 0 {
		s.Good = st.ring[len(st.ring)-1].good
		s.Total = st.ring[len(st.ring)-1].total
	}
	s.ErrorRateFast, s.BurnFast = st.windowRates(now, st.obj.FastWindow)
	s.ErrorRateSlow, s.BurnSlow = st.windowRates(now, st.obj.SlowWindow)
	s.Firing = s.BurnFast >= st.obj.BurnThreshold && s.BurnSlow >= st.obj.BurnThreshold
	return s
}

// Status evaluates every objective as of now without taking a new reading
// (the health endpoint calls this between Observe ticks).
func (m *Monitor) Status(now time.Time) []Status {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.objs))
	for _, st := range m.objs {
		s := st.evaluate(now)
		// Report the committed alert state (transitions happen in Observe,
		// where they are logged), but expose the live burn numbers.
		s.Firing = st.firing
		out = append(out, s)
	}
	return out
}

// Firing reports whether any objective's alert is currently firing.
func (m *Monitor) Firing() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.objs {
		if st.firing {
			return true
		}
	}
	return false
}
