package archmodel

import (
	"math"
	"testing"
)

func TestTable4CircuitModels(t *testing.T) {
	// Pin the published Table 4 values.
	cases := []struct {
		name  string
		m     CircuitModel
		eMin  float64
		eMax  float64
		delay float64
		area  float64
		leak  float64
	}{
		{"8T SRAM 128x128", SRAM8T, 1, 14.2, 298, 5655, 57},
		{"routing switch 256x256", RoutingSwitch, 2, 55, 410, 18153, 228},
		{"8T CAM 32x256", CAM8T, 33.56, 33.56, 336, 7838, 28.5},
		{"4-port switch 48x48", FourPortSwitch, 0.76, 3.25, 173, 1818, 25},
		{"bit vector 64", BitVector, 1.37, 1.37, 178, 17.7, 0.56},
		{"global wire 1mm", GlobalWire, 0.07, 0.07, 66, 50, 0},
	}
	for _, tc := range cases {
		if tc.m.EnergyMinPJ != tc.eMin || tc.m.EnergyMaxPJ != tc.eMax ||
			tc.m.DelayPs != tc.delay || tc.m.AreaUm2 != tc.area || tc.m.LeakageUA != tc.leak {
			t.Errorf("%s = %+v, want {%g %g %g %g %g}", tc.name, tc.m, tc.eMin, tc.eMax, tc.delay, tc.area, tc.leak)
		}
	}
}

func TestEnergyInterpolation(t *testing.T) {
	if got := RoutingSwitch.EnergyPJ(0); got != 2 {
		t.Fatalf("E(0) = %g", got)
	}
	if got := RoutingSwitch.EnergyPJ(1); got != 55 {
		t.Fatalf("E(1) = %g", got)
	}
	mid := RoutingSwitch.EnergyPJ(0.5)
	if math.Abs(mid-28.5) > 1e-9 {
		t.Fatalf("E(0.5) = %g, want 28.5", mid)
	}
	// Clamping.
	if RoutingSwitch.EnergyPJ(-1) != 2 || RoutingSwitch.EnergyPJ(2) != 55 {
		t.Fatal("activity not clamped")
	}
}

func TestTileAreas(t *testing.T) {
	// Structural relations from §8: the BVAP tile is 1.5× the CAMA tile;
	// the BVM is 20% smaller than the RRCB; CA is the largest tile.
	bvap := BVAP.Tile().AreaUm2
	cama := CAMA.Tile().AreaUm2
	ca := CA.Tile().AreaUm2
	eap := EAP.Tile().AreaUm2
	if math.Abs(bvap/cama-1.5) > 1e-9 {
		t.Fatalf("BVAP/CAMA tile ratio = %g, want 1.5", bvap/cama)
	}
	if !(ca > eap && eap > bvap && bvap > cama) {
		t.Fatalf("tile area ordering violated: CA=%g eAP=%g BVAP=%g CAMA=%g", ca, eap, bvap, cama)
	}
	if cnt := CNT.Tile().AreaUm2; cnt <= cama {
		t.Fatalf("CNT tile (%g) not larger than CAMA (%g)", cnt, cama)
	}
}

func TestPerSTEMatchEnergyOrdering(t *testing.T) {
	// At realistic availability (≤ 20%), CAM matching is far cheaper than
	// full-row SRAM matching — the CAMA energy advantage.
	for _, avail := range []float64{0.02, 0.05, 0.1, 0.2} {
		cam := CAMA.MatchEnergyPJ(avail)
		sram := CA.MatchEnergyPJ(avail)
		if cam >= sram {
			t.Fatalf("avail %.2f: CAM %.2f ≥ SRAM %.2f", avail, cam, sram)
		}
	}
	// BVAP adopts CAMA's matcher exactly.
	if BVAP.MatchEnergyPJ(0.1) != CAMA.MatchEnergyPJ(0.1) {
		t.Fatal("BVAP and CAMA matchers differ")
	}
	// BVAP-S scales by (0.65/0.9)².
	scale := BVAPS.MatchEnergyPJ(0.1) / BVAP.MatchEnergyPJ(0.1)
	want := (0.65 / 0.9) * (0.65 / 0.9)
	if math.Abs(scale-want) > 1e-9 {
		t.Fatalf("voltage scale = %g, want %g", scale, want)
	}
}

func TestTransitionEnergyOrdering(t *testing.T) {
	for _, act := range []float64{0.01, 0.1, 0.5} {
		ca := CA.TransitionEnergyPJ(act)
		eap := EAP.TransitionEnergyPJ(act)
		cama := CAMA.TransitionEnergyPJ(act)
		if !(ca > eap && eap > cama) {
			t.Fatalf("act %.2f: CA %.2f, eAP %.2f, CAMA %.2f", act, ca, eap, cama)
		}
	}
}

func TestBVMEnergiesZeroWhenIdle(t *testing.T) {
	// Event-driven BVM: no activity, no energy.
	if BVMReadEnergyPJ(0) != 0 {
		t.Fatal("read energy nonzero when idle")
	}
	if BVMSwapEnergyPJ(0, 0, 8, 0) != 0 {
		t.Fatal("swap energy nonzero when idle")
	}
	if BVMReadEnergyPJ(3) <= 0 || BVMSwapEnergyPJ(2, 1, 4, 0.5) <= 0 {
		t.Fatal("nonzero activity must cost energy")
	}
}

func TestVirtualBVSavesSwapEnergy(t *testing.T) {
	// §5: shorter virtual BVs reduce cycles and energy.
	full := BVMSwapEnergyPJ(4, 1, 8, 0.2)
	short := BVMSwapEnergyPJ(4, 1, 2, 0.2)
	if short >= full {
		t.Fatalf("virtual BV did not save energy: %g vs %g", short, full)
	}
}

func TestSet1CheaperThanStorage(t *testing.T) {
	// A power-gated set1 constant generator costs far less than a
	// storage BV's read-modify-write (§5).
	set1 := BVMSwapEnergyPJ(0, 1, 8, 0.1)
	storage := BVMSwapEnergyPJ(1, 0, 8, 0.1)
	if set1 >= storage {
		t.Fatalf("set1 %g ≥ storage %g", set1, storage)
	}
}

func TestStallCycles(t *testing.T) {
	// BV clk = 2.5× system clk: a full 64-bit swap (8 words + read +
	// 3-cycle pipeline = 12 BV cycles = 4.8 system cycles) overlaps two
	// system cycles of SM/ST (Fig. 10(a)) and stalls the remaining 3; a
	// 1-word virtual BV (5 BV cycles = 2 system cycles) is fully hidden.
	if got := StallCycles(8); got != 3 {
		t.Fatalf("StallCycles(8) = %d, want 3", got)
	}
	if got := StallCycles(1); got != 0 {
		t.Fatalf("StallCycles(1) = %d, want 0", got)
	}
	if StallCycles(2) > StallCycles(8) {
		t.Fatal("stalls must grow with words")
	}
	if StallCycles(4) < 1 {
		t.Fatal("a 32-bit virtual BV should still stall")
	}
}

func TestSymbolClocks(t *testing.T) {
	if BVAP.SymbolClockGHz() != 2.0 {
		t.Fatalf("BVAP clock = %g", BVAP.SymbolClockGHz())
	}
	if CAMA.SymbolClockGHz() <= BVAP.SymbolClockGHz() {
		t.Fatal("CAMA should clock faster than BVAP (shorter wires)")
	}
	s := BVAPS.SymbolClockGHz()
	if math.Abs(s-2.0*0.33) > 1e-9 {
		t.Fatalf("BVAP-S clock = %g, want %g", s, 2.0*0.33)
	}
}

func TestLeakagePositiveAndSmall(t *testing.T) {
	for _, a := range All() {
		e := a.LeakageEnergyPJ(a.SymbolClockGHz())
		if e <= 0 {
			t.Fatalf("%v leakage energy = %g", a, e)
		}
		// Leakage per symbol should be far below dynamic energy.
		if e > 5 {
			t.Fatalf("%v leakage energy = %g pJ, implausibly high", a, e)
		}
	}
}

func TestArchPredicates(t *testing.T) {
	if !BVAP.UsesBVM() || !BVAPS.UsesBVM() || CAMA.UsesBVM() {
		t.Fatal("UsesBVM wrong")
	}
	if !CNT.UsesCounters() || BVAP.UsesCounters() {
		t.Fatal("UsesCounters wrong")
	}
	if !CA.Unfolds() || !EAP.Unfolds() || !CAMA.Unfolds() || BVAP.Unfolds() {
		t.Fatal("Unfolds wrong")
	}
	for i, a := range []Arch{BVAP, BVAPS, CAMA, CA, EAP, CNT} {
		if a.String() == "" || a.String()[0] == 'A' && i < 5 {
			t.Fatalf("bad name for arch %d: %q", i, a.String())
		}
	}
}
