package archmodel

// This file models the design alternatives the paper argues against, so the
// benchmark harness can quantify each choice as an ablation:
//
//   - the naïve per-transition PE array of §3 (Fig. 3(b)), where every
//     crossing point of the BV routing switch carries its own processing
//     element — resources grow quadratically with the BVs per tile;
//   - the §5 routing-strategy trade: fully parallel routing (n FCBs, one
//     cycle, large area), fully serial routing (1-bit, n× latency), and the
//     adopted semi-parallel word-serial scheme;
//   - always-on versus event-driven BVM clocking (§6).

// Routing selects the Swap-step routing implementation (§5).
type Routing int

const (
	// RoutingSemiParallel is the adopted design: 8-bit words through the
	// MFCB, one word per BV cycle.
	RoutingSemiParallel Routing = iota
	// RoutingSerial moves one bit per cycle: minimal area, 8× latency.
	RoutingSerial
	// RoutingParallel routes the whole 64-bit vector in one cycle using
	// eight bit-slice crossbars: minimal latency, 8× area.
	RoutingParallel
)

func (r Routing) String() string {
	switch r {
	case RoutingSemiParallel:
		return "semi-parallel"
	case RoutingSerial:
		return "serial"
	case RoutingParallel:
		return "parallel"
	}
	return "Routing(?)"
}

// PhaseCycles returns the bit-vector-processing phase length in BV-clock
// cycles under the routing strategy.
func (r Routing) PhaseCycles(words int) int {
	if words < 1 {
		words = 1
	}
	switch r {
	case RoutingSerial:
		return 1 + words*WordBitsPerCycle + BVMPipelineDepth
	case RoutingParallel:
		return 1 + 1 + BVMPipelineDepth
	default:
		return 1 + words + BVMPipelineDepth
	}
}

// WordBitsPerCycle is the MFCB word width (8 bits); serial routing needs
// this many cycles per word.
const WordBitsPerCycle = 8

// StallCycles is StallCycles generalized over the routing strategy.
func (r Routing) StallCycles(words int) int {
	bvPerSystem := BVClockGHz / SystemClockGHz
	cycles := float64(r.PhaseCycles(words)) / bvPerSystem
	extra := int(ceil(cycles)) - 2
	if extra < 0 {
		extra = 0
	}
	return extra
}

// MFCBAreaUm2 returns the routing-switch area per BVM under the strategy:
// the adopted design uses two 48×48 4-port arrays; serial needs a quarter
// of one (1 output bit per port pair); parallel needs eight word slices.
func (r Routing) MFCBAreaUm2() float64 {
	base := 2 * FourPortSwitch.AreaUm2
	switch r {
	case RoutingSerial:
		return base / 4
	case RoutingParallel:
		return base * 8
	default:
		return base
	}
}

// MFCBEnergyScale scales the Swap-step crossbar energy: parallel switches
// all slices at once (same total charge, so ≈1), serial adds per-bit
// control overhead.
func (r Routing) MFCBEnergyScale() float64 {
	switch r {
	case RoutingSerial:
		return 1.3
	case RoutingParallel:
		return 1.1
	default:
		return 1
	}
}

// NaivePEAreaUm2 is the area of the §3 naïve design's PE array for one
// tile: one processing element (a BV-wide datapath with its instruction
// latch, ≈2× the BV macro) at each of the BVsPerTile² crossing points,
// "because each node in the routing switch needs one PE".
func NaivePEAreaUm2() float64 {
	perPE := 2 * BitVector.AreaUm2
	return float64(BVsPerTile*BVsPerTile) * perPE
}

// NaivePESwapEnergyPJ is the naïve design's Swap energy: every enabled
// transition's PE transforms a full vector before aggregation, so the
// energy scales with the OR fan-in (deliveries), not with the BVs.
func NaivePESwapEnergyPJ(deliveries, words int) float64 {
	if deliveries == 0 {
		return 0
	}
	perDelivery := 2*BitVector.EnergyPJ(1) + float64(words)/float64(PhysicalBVWords)*FourPortSwitch.EnergyPJ(0.5)
	return float64(deliveries) * perDelivery * 1.5 // PE compute on top of the move
}

// BVMIdlePhasePJ is the energy an always-on (non-event-driven) BVM burns
// on a symbol with no active BV-STEs: clocking the controller and
// precharging the MFCB for the full phase.
func BVMIdlePhasePJ(words int) float64 {
	return FourPortSwitch.EnergyPJ(0) * float64(words) / float64(PhysicalBVWords)
}
