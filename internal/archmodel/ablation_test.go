package archmodel

import "testing"

func TestRoutingPhaseCycles(t *testing.T) {
	// Semi-parallel: 1 read + words + 3 pipeline.
	if got := RoutingSemiParallel.PhaseCycles(8); got != 12 {
		t.Fatalf("semi(8) = %d", got)
	}
	// Serial: one bit per cycle.
	if got := RoutingSerial.PhaseCycles(8); got != 1+64+3 {
		t.Fatalf("serial(8) = %d", got)
	}
	// Parallel: single swap cycle.
	if got := RoutingParallel.PhaseCycles(8); got != 5 {
		t.Fatalf("parallel(8) = %d", got)
	}
	// Words clamp at 1.
	if RoutingSemiParallel.PhaseCycles(0) != RoutingSemiParallel.PhaseCycles(1) {
		t.Fatal("words not clamped")
	}
}

func TestRoutingStallOrdering(t *testing.T) {
	for _, words := range []int{1, 4, 8} {
		ser := RoutingSerial.StallCycles(words)
		semi := RoutingSemiParallel.StallCycles(words)
		par := RoutingParallel.StallCycles(words)
		if !(ser >= semi && semi >= par) {
			t.Fatalf("words %d: stalls serial=%d semi=%d parallel=%d", words, ser, semi, par)
		}
	}
	// The adopted StallCycles is the semi-parallel strategy.
	if StallCycles(8) != RoutingSemiParallel.StallCycles(8) {
		t.Fatal("StallCycles diverged from semi-parallel")
	}
	// Parallel routing never stalls: 5 BV cycles = 2 system cycles.
	if RoutingParallel.StallCycles(8) != 0 {
		t.Fatalf("parallel stall = %d", RoutingParallel.StallCycles(8))
	}
}

func TestRoutingAreaOrdering(t *testing.T) {
	ser := RoutingSerial.MFCBAreaUm2()
	semi := RoutingSemiParallel.MFCBAreaUm2()
	par := RoutingParallel.MFCBAreaUm2()
	if !(ser < semi && semi < par) {
		t.Fatalf("areas: serial=%g semi=%g parallel=%g", ser, semi, par)
	}
	if semi != 2*FourPortSwitch.AreaUm2 {
		t.Fatalf("semi area = %g", semi)
	}
}

func TestNaivePEQuadratic(t *testing.T) {
	// The §3 argument: one PE per crossing point ⇒ area ∝ BVs².
	area := NaivePEAreaUm2()
	if area < 10*float64(BVMAreaUm2) {
		t.Fatalf("naive PE array (%g µm²) should dwarf the BVM (%d µm²)", area, BVMAreaUm2)
	}
	// Naive swap energy scales with OR fan-in.
	if NaivePESwapEnergyPJ(4, 8) <= NaivePESwapEnergyPJ(2, 8) {
		t.Fatal("naive PE energy must grow with deliveries")
	}
	if NaivePESwapEnergyPJ(0, 8) != 0 {
		t.Fatal("idle naive PE must cost nothing")
	}
}

func TestBVMIdlePhase(t *testing.T) {
	if BVMIdlePhasePJ(8) <= 0 {
		t.Fatal("idle phase should cost energy when always-on")
	}
	if BVMIdlePhasePJ(2) >= BVMIdlePhasePJ(8) {
		t.Fatal("idle phase energy should scale with words")
	}
}

func TestRoutingStrings(t *testing.T) {
	for r, want := range map[Routing]string{
		RoutingSemiParallel: "semi-parallel",
		RoutingSerial:       "serial",
		RoutingParallel:     "parallel",
	} {
		if r.String() != want {
			t.Errorf("%d = %q", r, r.String())
		}
	}
}
