// Package archmodel encodes the 28nm circuit models of Table 4 of the paper
// and composes them into per-architecture area, energy, leakage and timing
// models for BVAP, BVAP-S, CAMA, CA, eAP and CNT (CAMA extended with counter
// elements, the §8 micro-benchmark baseline).
//
// The paper derives these numbers from SPICE simulation of custom arrays in
// TSMC 28nm; we take the published Table 4 values as ground truth and
// document every composition rule here. Energy values that Table 4 gives as
// a range (e.g. 2–55 pJ for the 256×256 routing switch) scale linearly with
// the switching activity, as the paper states: "The energy of routing
// switches scales up with both the number of activated wordlines and the
// number of '1' on OBLs."
package archmodel

import "fmt"

// CircuitModel is one row of Table 4.
type CircuitModel struct {
	// EnergyMinPJ and EnergyMaxPJ bound the per-access energy; the
	// instantaneous energy interpolates with switching activity.
	EnergyMinPJ float64
	EnergyMaxPJ float64
	DelayPs     float64
	AreaUm2     float64
	LeakageUA   float64
}

// EnergyPJ interpolates the access energy at a given activity in [0, 1].
func (m CircuitModel) EnergyPJ(activity float64) float64 {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	return m.EnergyMinPJ + activity*(m.EnergyMaxPJ-m.EnergyMinPJ)
}

// Table 4 rows (28nm CMOS, SPICE-derived; global wire values from CA).
var (
	// SRAM8T is a 128×128 8T SRAM array (match memory of CA/eAP).
	SRAM8T = CircuitModel{EnergyMinPJ: 1, EnergyMaxPJ: 14.2, DelayPs: 298, AreaUm2: 5655, LeakageUA: 57}
	// RoutingSwitch is a 256×256 full crossbar (CA's FCB).
	RoutingSwitch = CircuitModel{EnergyMinPJ: 2, EnergyMaxPJ: 55, DelayPs: 410, AreaUm2: 18153, LeakageUA: 228}
	// CAM8T is a 32×256 8T CAM (CAMA's match structure).
	CAM8T = CircuitModel{EnergyMinPJ: 33.56, EnergyMaxPJ: 33.56, DelayPs: 336, AreaUm2: 7838, LeakageUA: 28.5}
	// FourPortSwitch is the 48×48 4-port SRAM routing switch (the MFCB
	// building block; each BVM contains two).
	FourPortSwitch = CircuitModel{EnergyMinPJ: 0.76, EnergyMaxPJ: 3.25, DelayPs: 173, AreaUm2: 1818, LeakageUA: 25}
	// BitVector is one 64-bit 8T-SRAM bit vector with latches and control.
	BitVector = CircuitModel{EnergyMinPJ: 1.37, EnergyMaxPJ: 1.37, DelayPs: 178, AreaUm2: 17.7, LeakageUA: 0.56}
	// GlobalWire is 1 mm of global wire.
	GlobalWire = CircuitModel{EnergyMinPJ: 0.07, EnergyMaxPJ: 0.07, DelayPs: 66, AreaUm2: 50, LeakageUA: 0}
)

// Architectural constants (§5, §6, §8).
const (
	// STEsPerTile is the tile capacity shared by all modeled designs.
	STEsPerTile = 256
	// BVsPerTile is the number of 64-bit BVs in a BVAP tile's BVM.
	BVsPerTile = 48
	// FCBModeSTEs is the capacity of a tile pair reconfigured to the
	// fully connected crossbar mode (§6): the two 128×128 crossbars fuse
	// into one 128×128 FCB, one CAM subarray and one BVM power-gated.
	FCBModeSTEs = 128
	// TilesPerArray and ArraysPerBank give a bank 16,384 STEs.
	TilesPerArray = 16
	ArraysPerBank = 4
	// CountersPerTile is the CNT baseline's counter-element budget.
	CountersPerTile = 8

	// SystemClockGHz is BVAP's (and CA's/eAP's) symbol clock: the largest
	// pipeline stage delay is 449.1 ps including a 10% margin → 2 GHz.
	SystemClockGHz = 2.0
	// CAMAClockGHz reflects CAMA's shorter global wires (26.1 ps vs
	// 39.1 ps): the paper reports BVAP 11.2% slower than CAMA.
	CAMAClockGHz = 2.25
	// BVClockGHz is the Bit Vector Module clock (§8).
	BVClockGHz = 5.0

	// NominalVDD and StreamingVDD: BVAP-S lowers the supply of the
	// state-matching and state-transition circuits from 0.9 V to 0.65 V.
	NominalVDD   = 0.90
	StreamingVDD = 0.65

	// StreamingThroughputFactor: BVAP-S runs the system clock at the
	// constant bit-vector-processing rate; the paper reports 67% lower
	// throughput than BVAP.
	StreamingThroughputFactor = 0.33

	// BVMAreaUm2 is the synthesized BVM area (§8): 48 BVs, two 4-port
	// 48×48 crossbars, instruction latches and the local controller.
	BVMAreaUm2 = 4490

	// BVMPipelineDepth is the Swap-step pipeline latency in BV-clock
	// cycles (§5: "a 3-cycle latency").
	BVMPipelineDepth = 3

	// PhysicalBVWords is the word count of a full 64-bit BV at the
	// MFCB's 8-bit routing width.
	PhysicalBVWords = 8
)

// voltageScale is the dynamic-energy scaling (V/V0)² applied to the SM/ST
// stages in BVAP-S mode.
func voltageScale() float64 {
	r := StreamingVDD / NominalVDD
	return r * r
}

// Arch identifies a modeled architecture.
type Arch int

const (
	BVAP Arch = iota
	BVAPS
	CAMA
	CA
	EAP
	CNT
)

var archNames = [...]string{"BVAP", "BVAP-S", "CAMA", "CA", "eAP", "CNT"}

func (a Arch) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// All lists the architectures compared in Fig. 14.
func All() []Arch { return []Arch{BVAP, BVAPS, CAMA, EAP, CA} }

// UsesBVM reports whether the architecture contains Bit Vector Modules.
func (a Arch) UsesBVM() bool { return a == BVAP || a == BVAPS }

// UsesCounters reports whether the architecture has counter elements.
func (a Arch) UsesCounters() bool { return a == CNT }

// Unfolds reports whether the architecture must unfold bounded repetitions
// into plain NFA states. CNT unfolds only counter-ambiguous repetitions,
// which the compiler decides per-regex.
func (a Arch) Unfolds() bool { return a == CAMA || a == CA || a == EAP }

// TileCost is the silicon cost of one tile.
type TileCost struct {
	AreaUm2   float64
	LeakageUA float64
}

// counterElementArea is the area of one CNT counter element (a small
// saturating counter with comparator; our estimate in the same 28nm node).
const counterElementArea = 95.0

// Tile returns the per-tile silicon cost of an architecture:
//
//	CA    — 4× 128×128 8T SRAM match arrays (256 STEs × 256-entry
//	        predicate columns) + one 256×256 FCB;
//	eAP   — same match arrays + a Reduced CrossBar at half the FCB cost;
//	CAMA  — one 256×32 8T CAM + the RRCB (the paper says the BVM is 20%
//	        smaller than the RRCB, fixing the RRCB at 5612 µm²);
//	BVAP  — the CAMA tile plus one BVM (48 BVs + MFCB) plus control,
//	        matching the paper's "a BVAP tile is 1.5× larger than a CAMA
//	        tile";
//	CNT   — the CAMA tile plus CountersPerTile counter elements.
func (a Arch) Tile() TileCost {
	rrcbArea := BVMAreaUm2 / 0.8 // BVM is 20% smaller than RRCB (§8)
	camaTile := TileCost{
		AreaUm2:   CAM8T.AreaUm2 + rrcbArea,
		LeakageUA: CAM8T.LeakageUA + RoutingSwitch.LeakageUA/4,
	}
	switch a {
	case CA:
		return TileCost{
			AreaUm2:   4*SRAM8T.AreaUm2 + RoutingSwitch.AreaUm2,
			LeakageUA: 4*SRAM8T.LeakageUA + RoutingSwitch.LeakageUA,
		}
	case EAP:
		return TileCost{
			AreaUm2:   4*SRAM8T.AreaUm2 + RoutingSwitch.AreaUm2/2,
			LeakageUA: 4*SRAM8T.LeakageUA + RoutingSwitch.LeakageUA/2,
		}
	case CAMA:
		return camaTile
	case BVAP, BVAPS:
		t := camaTile
		t.AreaUm2 = camaTile.AreaUm2 * 1.5 // includes BVM + extra control/buffers
		t.LeakageUA += 2*FourPortSwitch.LeakageUA + BVsPerTile*BitVector.LeakageUA
		return t
	case CNT:
		t := camaTile
		t.AreaUm2 += CountersPerTile * counterElementArea
		t.LeakageUA += 1.5
		return t
	}
	panic("archmodel: unknown architecture")
}

// BVAPCustomTileAreaUm2 is the area of a BVAP tile sized to a single regex
// (the §8 micro-benchmarks): the CAMA portion scales with the STEs used and
// the BVM portion with the BVs used.
func BVAPCustomTileAreaUm2(steFrac, bvFrac float64) float64 {
	camaArea := CAMA.Tile().AreaUm2
	bvmPortion := BVAP.Tile().AreaUm2 - camaArea
	return camaArea*clamp01(steFrac) + bvmPortion*clamp01(bvFrac)
}

// MatchEnergyPJ returns the state-matching energy of one tile for one input
// symbol.
//
// CA and eAP read a full 256-bit predicate row out of the 8T SRAM match
// arrays every symbol, so their match energy is a high, nearly constant
// cost. CAMA (and BVAP, which adopts CAMA's matcher) search the 8T CAM; the
// CAM's matchline energy is dominated by the entries that are currently
// available, which is CAMA's headline energy saving. availFrac is the
// fraction of the tile's STEs that are available this cycle.
func (a Arch) MatchEnergyPJ(availFrac float64) float64 {
	switch a {
	case CA, EAP:
		// Two 128-bit row reads per array pair; activity is the row
		// occupancy, conservatively full.
		return 2 * SRAM8T.EnergyPJ(1.0)
	case CAMA, CNT, BVAP:
		// Matchline energy scales with available entries; a floor
		// covers precharge of the search bus.
		return CAM8T.EnergyPJ(1.0) * (0.08 + 0.92*clamp01(availFrac))
	case BVAPS:
		return CAM8T.EnergyPJ(1.0) * (0.08 + 0.92*clamp01(availFrac)) * voltageScale()
	}
	panic("archmodel: unknown architecture")
}

// TransitionEnergyPJ returns the state-transition (crossbar) energy of one
// tile for one symbol, given the fraction of STEs active this cycle.
//
// CA drives the full 256×256 FCB; eAP's RCB exploits sparsity for roughly
// half the switched capacitance; CAMA's RRCB quarter (a 128×128 structure
// per tile pair).
func (a Arch) TransitionEnergyPJ(activeFrac float64) float64 {
	base := RoutingSwitch.EnergyPJ(clamp01(activeFrac))
	switch a {
	case CA:
		return base
	case EAP:
		return base * 0.5
	case CAMA, CNT, BVAP:
		return base * 0.25
	case BVAPS:
		return base * 0.25 * voltageScale()
	}
	panic("archmodel: unknown architecture")
}

// WireEnergyPJ returns the broadcast/global-wire energy per tile per symbol.
// A tile edge is on the order of 0.15 mm; the input symbol and the active
// vector traverse a few tile pitches per cycle.
func (a Arch) WireEnergyPJ() float64 {
	mm := 0.5
	if a == BVAP || a == BVAPS {
		mm = 0.75 // BVAP tiles are 1.5× larger → longer wires (§8)
	}
	return GlobalWire.EnergyPJ(1) * mm
}

// FCBTransitionEnergyPJ is the state-transition energy of a tile pair in
// FCB mode: a 128×128 full crossbar switches about half the capacitance of
// the 256×256 reference switch, but with none of the RCB's sparsity
// savings.
func FCBTransitionEnergyPJ(activeFrac float64) float64 {
	return RoutingSwitch.EnergyPJ(clamp01(activeFrac)) * 0.5
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BVMReadEnergyPJ is the energy of the BVM Read step: each active BV with a
// read instruction performs one access of its tiny 8T-SRAM macro (the
// r(1,n) reads OR multiple bitlines within that single access; Table 4
// prices the whole 64-bit macro access at 1.37 pJ), and the 1-bit results
// route through the MFCB at its minimum switching energy.
func BVMReadEnergyPJ(readOps int) float64 {
	if readOps == 0 {
		return 0
	}
	return float64(readOps)*BitVector.EnergyPJ(1) + FourPortSwitch.EnergyPJ(0)
}

// set1ConstantPJ is the energy of a power-gated set1 BV emitting its stored
// constant ("it is power-gated except for a simple logic that sends the
// stored constant to the MFCB", §5) — a small fraction of a macro access.
const set1ConstantPJ = 0.25

// BVMSwapEnergyPJ is the energy of the BVM Swap step. Aggregation is free:
// multiple sources OR onto shared output bitlines within the same MFCB
// access (the 8T-SRAM wired-OR that motivates the design), so the cost
// scales with the *BVs* involved, not with the OR fan-in:
//
//   - each active storage BV performs one macro read and one macro write
//     over the phase (the 8T array reads and writes two words per cycle);
//   - each active set1 BV only emits its constant (power-gated, §5);
//   - the MFCB runs for `words` word-cycles; Table 4's 0.76–3.25 pJ prices
//     the full 8-word phase, so shorter virtual BVs cost proportionally
//     less (§5's virtual-BV saving).
func BVMSwapEnergyPJ(storageActive, set1Active, words int, activeBVFrac float64) float64 {
	if storageActive == 0 && set1Active == 0 {
		return 0
	}
	crossbar := FourPortSwitch.EnergyPJ(clamp01(activeBVFrac)) *
		float64(words) / float64(PhysicalBVWords)
	return float64(storageActive)*2*BitVector.EnergyPJ(1) +
		float64(set1Active)*set1ConstantPJ + crossbar
}

// BVMResetEnergyPJ is the energy to reset the BVs of freshly deactivated
// states ("all inactive BVs are reset by raising all RWLs and writing '0'
// to all cells in one cycle") — one macro write per deactivation.
func BVMResetEnergyPJ(resets int) float64 {
	if resets < 0 {
		resets = 0
	}
	return float64(resets) * BitVector.EnergyPJ(1)
}

// CounterEnergyPJ is the CNT baseline's counter-element energy: one
// increment-and-compare per active counter per symbol.
const counterEnergyPJ = 0.9

// CounterEnergyPJFor returns the counter energy for n active counters.
func CounterEnergyPJFor(n int) float64 { return float64(n) * counterEnergyPJ }

// BVMPhaseCycles returns the bit-vector-processing phase length in BV-clock
// cycles for a virtual BV of the given word count: one Read cycle, one
// word-serial Swap pass, and the pipeline drain.
func BVMPhaseCycles(words int) int {
	if words < 1 {
		words = 1
	}
	return 1 + words + BVMPipelineDepth
}

// StallCycles returns how many extra system-clock cycles an array loses when
// a BVM with the given virtual word count activates (§6's dynamic stall
// scheme). The bit-vector-processing phase runs at the BV clock and overlaps
// the state-matching and state-transition of the current and the next symbol
// (Fig. 10(a)), so two system cycles of the phase are hidden; only the
// excess stalls the array's input broadcast.
func StallCycles(words int) int {
	bvPerSystem := BVClockGHz / SystemClockGHz
	cycles := float64(BVMPhaseCycles(words)) / bvPerSystem
	extra := int(ceil(cycles)) - 2
	if extra < 0 {
		extra = 0
	}
	return extra
}

func ceil(x float64) float64 {
	i := float64(int(x))
	if x > i {
		return i + 1
	}
	return i
}

// SymbolClockGHz returns the nominal symbol rate of the architecture,
// before BVM stalls.
func (a Arch) SymbolClockGHz() float64 {
	switch a {
	case CAMA, CNT:
		return CAMAClockGHz
	case BVAPS:
		return SystemClockGHz * StreamingThroughputFactor
	default:
		return SystemClockGHz
	}
}

// LeakageEnergyPJ returns the leakage energy of one tile over one symbol
// period at the given symbol rate.
func (a Arch) LeakageEnergyPJ(symbolRateGHz float64) float64 {
	t := a.Tile()
	vdd := NominalVDD
	// P = I·V in µW; E per symbol = P / f. µA·V/GHz = pW·s·1e-3 = ... :
	// µA × V = µW; µW / GHz = femtojoule×1000 = pJ·1e-3. So:
	powerUW := t.LeakageUA * vdd
	return powerUW / symbolRateGHz * 1e-3
}
