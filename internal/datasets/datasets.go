// Package datasets provides seeded synthetic stand-ins for the seven
// real-world regex collections of the paper's evaluation (§8): Snort,
// Suricata, Prosite, ClamAV, YARA, SpamAssassin and RegexLib.
//
// The originals are not redistributable here, so each Profile captures the
// published statistical shape of its dataset — the fraction of regexes with
// bounded repetition, the magnitude distribution of the bounds, literal vs
// character-class mix, and typical pattern length — and Generate expands it
// deterministically into concrete regexes. The aggregate figures the paper
// reports and this package is calibrated against:
//
//   - bounded repetition appears in 37% of regexes over the combined
//     collections, and accounts for 85% of all NFA states after unfolding;
//   - repetition bounds reach beyond 10,000 (ClamAV's {9139} example);
//   - the BV-STE ratio is typically below 18% (≈5% for SpamAssassin);
//   - the average RegexLib pattern has about 16 plain STEs;
//   - real-world match rates stay below 10%.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"bvap/internal/regex"
	"bvap/internal/workload"
)

// Profile describes the statistical shape of one dataset.
type Profile struct {
	Name string
	// Size is the nominal number of regexes in the full collection.
	Size int
	// CountingFrac is the fraction of regexes containing at least one
	// bounded repetition.
	CountingFrac float64
	// BoundLo and BoundHi bound the log-uniform repetition-bound
	// distribution.
	BoundLo, BoundHi int
	// RangeFrac is the fraction of bounded repetitions that are ranges
	// {m,n} rather than exact {n}.
	RangeFrac float64
	// DotCountFrac is the fraction of bounded repetitions whose body is
	// Σ (the ClamAV/Snort "gap" idiom .{n}).
	DotCountFrac float64
	// ClassFrac is the fraction of non-counting positions drawn as
	// character classes instead of literal bytes.
	ClassFrac float64
	// LitLo and LitHi bound the literal-run lengths.
	LitLo, LitHi int
	// AltFrac is the fraction of regexes with a top-level alternation.
	AltFrac float64
	// CaseFoldFrac is the fraction of regexes written case-insensitively
	// with the (?i) modifier, as network and spam rules commonly are.
	CaseFoldFrac float64
	// Alphabet is the input-corpus symbol distribution.
	Alphabet string
	// MatchRate is the target fraction of corpus positions covered by
	// planted pattern fragments.
	MatchRate float64
}

// Profiles returns the seven benchmark datasets in the paper's order
// (alphabetical, as in Fig. 13/14): ClamAV, Prosite, RegexLib, Snort,
// SpamAssassin, Suricata, YARA.
func Profiles() []Profile {
	hexAlpha := "\x00\x01\x02\x03abcdefghij0123456789\xff\xfe\x90\x41\x42\x43"
	textAlpha := "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,-@"
	protAlpha := "ACDEFGHIKLMNPQRSTVWY"
	netAlpha := "abcdefghijklmnopqrstuvwxyz0123456789/=&?.:- "
	return []Profile{
		{
			Name: "ClamAV", Size: 1500,
			CountingFrac: 0.35, BoundLo: 32, BoundHi: 9139, RangeFrac: 0.25,
			DotCountFrac: 0.85, ClassFrac: 0.05, LitLo: 4, LitHi: 12,
			AltFrac: 0.05, Alphabet: hexAlpha, MatchRate: 0.01,
		},
		{
			Name: "Prosite", Size: 1200,
			CountingFrac: 0.80, BoundLo: 2, BoundHi: 30, RangeFrac: 0.60,
			DotCountFrac: 0.50, ClassFrac: 0.70, LitLo: 1, LitHi: 3,
			AltFrac: 0.05, Alphabet: protAlpha, MatchRate: 0.04,
		},
		{
			Name: "RegexLib", Size: 1800,
			CountingFrac: 0.50, BoundLo: 2, BoundHi: 64, RangeFrac: 0.45,
			DotCountFrac: 0.15, ClassFrac: 0.45, LitLo: 2, LitHi: 6,
			AltFrac: 0.25, Alphabet: textAlpha, MatchRate: 0.05, CaseFoldFrac: 0.25,
		},
		{
			Name: "Snort", Size: 2000,
			CountingFrac: 0.45, BoundLo: 8, BoundHi: 8000, RangeFrac: 0.30,
			DotCountFrac: 0.70, ClassFrac: 0.15, LitLo: 4, LitHi: 10,
			AltFrac: 0.10, Alphabet: netAlpha, MatchRate: 0.03, CaseFoldFrac: 0.50,
		},
		{
			Name: "SpamAssassin", Size: 1400,
			CountingFrac: 0.12, BoundLo: 2, BoundHi: 40, RangeFrac: 0.50,
			DotCountFrac: 0.30, ClassFrac: 0.25, LitLo: 3, LitHi: 9,
			AltFrac: 0.30, Alphabet: textAlpha, MatchRate: 0.06, CaseFoldFrac: 0.60,
		},
		{
			Name: "Suricata", Size: 1900,
			CountingFrac: 0.40, BoundLo: 8, BoundHi: 4000, RangeFrac: 0.30,
			DotCountFrac: 0.65, ClassFrac: 0.15, LitLo: 4, LitHi: 10,
			AltFrac: 0.10, Alphabet: netAlpha, MatchRate: 0.03, CaseFoldFrac: 0.50,
		},
		{
			Name: "YARA", Size: 1300,
			CountingFrac: 0.40, BoundLo: 8, BoundHi: 2000, RangeFrac: 0.35,
			DotCountFrac: 0.75, ClassFrac: 0.10, LitLo: 4, LitHi: 12,
			AltFrac: 0.05, Alphabet: hexAlpha, MatchRate: 0.02, CaseFoldFrac: 0.20,
		},
	}
}

// ByName returns the profile with the given (case-insensitive) name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// seedOf derives a stable per-dataset seed.
func (p Profile) seedOf(salt int64) int64 {
	h := int64(1469598103934665603)
	for _, c := range p.Name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ salt
}

// Generate produces n regexes drawn from the profile (n ≤ 0 yields the full
// Size). Generation is deterministic per profile.
func (p Profile) Generate(n int) []string {
	if n <= 0 || n > p.Size {
		n = p.Size
	}
	r := rand.New(rand.NewSource(p.seedOf(0)))
	out := make([]string, 0, n)
	for len(out) < n {
		pat := p.genRegex(r)
		if _, err := regex.Parse(pat); err != nil {
			continue // never expected; guards generator bugs
		}
		out = append(out, pat)
	}
	return out
}

// Sample draws k regexes with the dataset's STE-count distribution roughly
// preserved (§8: "we selectively sampled >300 regexes from each dataset,
// while keeping a similar distribution of the number of STEs"): generation
// is i.i.d., so a prefix is already distribution-preserving.
func (p Profile) Sample(k int) []string { return p.Generate(k) }

// Input produces a corpus of length n with the profile's symbol
// distribution and planted pattern fragments at the profile's match rate.
func (p Profile) Input(n int, patterns []string) []byte {
	return workload.Corpus(p.seedOf(1), n, p.Alphabet, patterns, p.MatchRate)
}

// genRegex draws one pattern.
func (p Profile) genRegex(r *rand.Rand) string {
	prefix := ""
	if r.Float64() < p.CaseFoldFrac {
		prefix = "(?i)"
	}
	segments := 1 + r.Intn(3)
	if r.Float64() < p.AltFrac {
		// Top-level alternation of two independent branches.
		return prefix + p.genBranch(r, segments) + "|" + p.genBranch(r, 1+r.Intn(2))
	}
	return prefix + p.genBranch(r, segments)
}

func (p Profile) genBranch(r *rand.Rand, segments int) string {
	var sb strings.Builder
	sb.WriteString(p.genLiteralRun(r))
	counting := r.Float64() < p.CountingFrac
	for s := 0; s < segments; s++ {
		if counting {
			sb.WriteString(p.genCounting(r))
			counting = r.Float64() < 0.2 // occasionally more than one
		}
		sb.WriteString(p.genLiteralRun(r))
	}
	return sb.String()
}

// genLiteralRun emits a run of literal bytes and classes.
func (p Profile) genLiteralRun(r *rand.Rand) string {
	var sb strings.Builder
	n := p.LitLo + r.Intn(p.LitHi-p.LitLo+1)
	for i := 0; i < n; i++ {
		if r.Float64() < p.ClassFrac {
			sb.WriteString(p.genClass(r))
		} else {
			writeLiteral(&sb, p.Alphabet[r.Intn(len(p.Alphabet))])
		}
	}
	return sb.String()
}

func (p Profile) genClass(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return `\d`
	case 1:
		return `\w`
	case 2:
		lo := byte('a' + r.Intn(20))
		hi := lo + byte(1+r.Intn(5))
		return fmt.Sprintf("[%c-%c]", lo, hi)
	default:
		a := p.Alphabet[r.Intn(len(p.Alphabet))]
		b := p.Alphabet[r.Intn(len(p.Alphabet))]
		var sb strings.Builder
		sb.WriteByte('[')
		writeLiteral(&sb, a)
		writeLiteral(&sb, b)
		sb.WriteByte(']')
		return sb.String()
	}
}

// genCounting emits one bounded repetition with a log-uniform bound.
func (p Profile) genCounting(r *rand.Rand) string {
	bound := p.logUniformBound(r)
	body := "."
	if r.Float64() >= p.DotCountFrac {
		if r.Intn(2) == 0 {
			body = p.genClass(r)
		} else {
			var sb strings.Builder
			writeLiteral(&sb, p.Alphabet[r.Intn(len(p.Alphabet))])
			body = sb.String()
		}
	}
	if r.Float64() < p.RangeFrac {
		lo := bound / (2 + r.Intn(3))
		if lo < 1 {
			lo = 0
		}
		return fmt.Sprintf("%s{%d,%d}", body, lo, bound)
	}
	return fmt.Sprintf("%s{%d}", body, bound)
}

func (p Profile) logUniformBound(r *rand.Rand) int {
	// Squaring the uniform draw skews the log-scale distribution toward
	// small bounds: real rule sets use mostly modest repetition counts
	// with a thin tail of very large gaps (ClamAV's {9139}, Snort's
	// url=.{8000}).
	lo, hi := float64(p.BoundLo), float64(p.BoundHi)
	u := r.Float64()
	v := math.Exp(math.Log(lo) + u*u*(math.Log(hi)-math.Log(lo)))
	b := int(v)
	if b < p.BoundLo {
		b = p.BoundLo
	}
	if b > p.BoundHi {
		b = p.BoundHi
	}
	return b
}

// writeLiteral escapes a byte so it parses as itself.
func writeLiteral(sb *strings.Builder, b byte) {
	switch {
	case b >= 0x20 && b < 0x7f:
		if strings.ContainsRune(`.*+?()[]{}|\^$`, rune(b)) {
			sb.WriteByte('\\')
		}
		sb.WriteByte(b)
	default:
		fmt.Fprintf(sb, `\x%02x`, b)
	}
}

// CollectionStats aggregates the §1 motivation numbers over a set of
// patterns: how many contain bounded repetition, and what share of the
// unfolded NFA states counting contributes.
type CollectionStats struct {
	Regexes          int
	WithCounting     int
	Nontrivial       int
	UnfoldedStates   int
	CountingStates   int
	MaxBound         int
	UnparsablePileup int
}

// CountingRegexFrac is the fraction of regexes with bounded repetition.
func (s CollectionStats) CountingRegexFrac() float64 {
	if s.Regexes == 0 {
		return 0
	}
	return float64(s.WithCounting) / float64(s.Regexes)
}

// CountingStateFrac is the fraction of unfolded NFA states contributed by
// bounded repetitions.
func (s CollectionStats) CountingStateFrac() float64 {
	if s.UnfoldedStates == 0 {
		return 0
	}
	return float64(s.CountingStates) / float64(s.UnfoldedStates)
}

// Analyze computes CollectionStats for a pattern set.
func Analyze(patterns []string) CollectionStats {
	var s CollectionStats
	for _, pat := range patterns {
		ast, err := regex.Parse(pat)
		if err != nil {
			s.UnparsablePileup++
			continue
		}
		s.Regexes++
		st := regex.Analyze(ast)
		if st.HasCounting() {
			s.WithCounting++
		}
		if st.NontrivialCounting {
			s.Nontrivial++
		}
		s.UnfoldedStates += st.UnfoldedLiterals
		s.CountingStates += st.CountingLiterals
		if st.MaxUpperBound > s.MaxBound {
			s.MaxBound = st.MaxUpperBound
		}
	}
	return s
}
