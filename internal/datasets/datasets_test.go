package datasets

import (
	"math"
	"testing"

	"bvap/internal/compiler"
	"bvap/internal/regex"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 7 {
		t.Fatalf("profiles = %d, want 7", len(ps))
	}
	want := []string{"ClamAV", "Prosite", "RegexLib", "Snort", "SpamAssassin", "Suricata", "YARA"}
	for i, name := range want {
		if ps[i].Name != name {
			t.Fatalf("profile %d = %s, want %s", i, ps[i].Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("snort")
	if err != nil || p.Name != "Snort" {
		t.Fatalf("ByName(snort) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGenerateDeterministicAndParsable(t *testing.T) {
	for _, p := range Profiles() {
		a := p.Generate(50)
		b := p.Generate(50)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: generation not deterministic", p.Name)
			}
			if _, err := regex.Parse(a[i]); err != nil {
				t.Fatalf("%s: unparsable %q: %v", p.Name, a[i], err)
			}
		}
	}
}

func TestProfileShapes(t *testing.T) {
	// Each dataset's generated counting fraction must track its profile.
	for _, p := range Profiles() {
		st := Analyze(p.Generate(400))
		got := st.CountingRegexFrac()
		if math.Abs(got-p.CountingFrac) > 0.12 {
			t.Errorf("%s: counting frac %.2f, profile %.2f", p.Name, got, p.CountingFrac)
		}
		if st.MaxBound > p.BoundHi {
			t.Errorf("%s: bound %d exceeds profile max %d", p.Name, st.MaxBound, p.BoundHi)
		}
	}
}

func TestPaperMotivationNumbers(t *testing.T) {
	// §1: across the combined collections, bounded repetition appears in
	// ≈37% of regexes and accounts for ≈85% of unfolded NFA states. The
	// synthetic profiles must land near those anchors.
	var all []string
	for _, p := range Profiles() {
		all = append(all, p.Generate(300)...)
	}
	st := Analyze(all)
	frac := st.CountingRegexFrac()
	if frac < 0.30 || frac > 0.50 {
		t.Errorf("counting regex fraction = %.2f, want ≈0.37", frac)
	}
	statesFrac := st.CountingStateFrac()
	if statesFrac < 0.70 || statesFrac > 0.97 {
		t.Errorf("counting state fraction = %.2f, want ≈0.85", statesFrac)
	}
	if st.MaxBound < 4000 {
		t.Errorf("max bound = %d, want > 4000 (ClamAV-style gaps)", st.MaxBound)
	}
}

func TestBVSTERatios(t *testing.T) {
	// §6: the BV-STE ratio is typically below 18%; SpamAssassin ≈5%.
	for _, p := range Profiles() {
		res, err := compiler.Compile(p.Sample(120), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		storage := 0
		for _, tp := range res.Config.Tiles {
			storage += tp.BVSTEs
		}
		total := res.Report.TotalSTEs
		if total == 0 {
			t.Fatalf("%s: nothing compiled", p.Name)
		}
		ratio := float64(storage) / float64(total)
		if ratio > 0.45 {
			t.Errorf("%s: BV ratio %.2f implausibly high", p.Name, ratio)
		}
		if p.Name == "SpamAssassin" && ratio > 0.15 {
			t.Errorf("SpamAssassin BV ratio %.2f, want ≈0.05", ratio)
		}
	}
}

func TestInputCorpus(t *testing.T) {
	p, _ := ByName("Snort")
	pats := p.Sample(20)
	in := p.Input(5000, pats)
	if len(in) != 5000 {
		t.Fatalf("input length = %d", len(in))
	}
	// Deterministic.
	in2 := p.Input(5000, pats)
	for i := range in {
		if in[i] != in2[i] {
			t.Fatal("input not deterministic")
		}
	}
}

func TestMostRegexesCompile(t *testing.T) {
	// §6: 48 BVs per tile "covers over 99% of regexes in our datasets".
	// Synthetic profiles include huge ClamAV-style bounds that exercise
	// splitting; nearly everything must still compile.
	for _, p := range Profiles() {
		res, err := compiler.Compile(p.Sample(150), compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(res.Report.Unsupported) / 150
		if frac > 0.05 {
			for _, r := range res.Report.PerRegex {
				if !r.Supported {
					t.Logf("%s unsupported: %q: %s", p.Name, r.Pattern, r.Reason)
				}
			}
			t.Errorf("%s: %.1f%% unsupported", p.Name, frac*100)
		}
	}
}
