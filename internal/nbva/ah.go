package nbva

import (
	"fmt"

	"bvap/internal/charclass"
)

// This file implements the Action-Homogeneous transformation of §4 and the
// execution semantics of AH-NBVAs (§3, "BVAP Solution"): a state with k
// distinct incoming actions is split into k copies, each copy receives the
// incoming transitions with its action and inherits all outgoing transitions
// of the original, and afterwards the action can be attached to the state.
//
// In AH form the per-destination aggregation (bitwise OR) happens *before*
// the action is applied; the two orders agree because every action is linear
// with respect to OR.

// AHState is a state of an AH-NBVA. Beyond the NBVA state it carries the
// state's single incoming Action and its single Read instruction — the read
// all of its outgoing guarded transitions (and its finalization, if it is a
// reporting state) evaluate on its vector. This pair is exactly what the
// hardware's per-BV instruction (Table 3) encodes.
type AHState struct {
	Class  charclass.Class
	Width  int
	Action Action
	Read   Read
}

// AHEdge is a transition of an AH-NBVA. It carries no action (the
// destination state owns it); Gated records whether the transition requires
// the source state's read to pass.
type AHEdge struct {
	From  int
	To    int
	Gated bool
}

// AHNBVA is an action-homogeneous NBVA.
type AHNBVA struct {
	States       []AHState
	Initial      []int
	Edges        []AHEdge
	Finals       []int // finalization uses the state's own Read
	AcceptsEmpty bool
	// Anchored restricts matches to begin at the first input symbol.
	Anchored bool

	byDest   [][]int
	bySource [][]int
	// Origin maps each AH state back to the NBVA state it was split
	// from, for diagnostics and for the compiler's reports.
	Origin []int
}

// Size returns the number of control states (the STE count for hardware).
func (a *AHNBVA) Size() int { return len(a.States) }

// BVStateCount returns the number of states that carry a bit vector (the
// BV-STE count; each BVAP tile provisions 48 of these).
func (a *AHNBVA) BVStateCount() int {
	n := 0
	for _, s := range a.States {
		if s.Width > 0 {
			n++
		}
	}
	return n
}

// Finalize prepares an externally constructed AH-NBVA for execution by
// building the edge indexes. Transform calls it automatically; the hardware
// simulator calls it after reconstructing a machine from its JSON
// configuration.
func (a *AHNBVA) Finalize() { a.finalize() }

func (a *AHNBVA) finalize() {
	a.byDest = make([][]int, len(a.States))
	a.bySource = make([][]int, len(a.States))
	for i, e := range a.Edges {
		a.byDest[e.To] = append(a.byDest[e.To], i)
		a.bySource[e.From] = append(a.bySource[e.From], i)
	}
}

// Transform converts an NBVA into an equivalent AH-NBVA (§4). For every
// state q with distinct incoming actions ϑ1…ϑk it creates copies q1…qk; an
// NBVA edge p →(σ/ϑi) q becomes an AH edge p → qi, and every outgoing edge
// q →(σ/ϑ) q' is replicated from each copy qi.
//
// Initial entry counts as an incoming action (set1 for BV states), so an
// initial state that is also entered with a different action is split too.
// Transform verifies the read-homogeneity invariant the construction
// guarantees: all gated outgoing edges of a state use the same read.
func Transform(src *NBVA) (*AHNBVA, error) {
	type copyKey struct {
		orig   int
		action Action
	}
	// Determine the set of incoming actions per state.
	actionsOf := make([][]Action, src.Size())
	addAction := func(q int, act Action) {
		for _, a := range actionsOf[q] {
			if a == act {
				return
			}
		}
		actionsOf[q] = append(actionsOf[q], act)
	}
	for _, e := range src.Edges {
		addAction(e.To, e.Action)
	}
	for _, q := range src.Initial {
		if src.States[q].Width > 0 {
			addAction(q, ActSet1)
		} else {
			addAction(q, ActNone)
		}
	}
	// Unreachable states (no incoming edges, not initial) keep a single
	// copy with the neutral action so indices stay well formed.
	for q := range src.States {
		if len(actionsOf[q]) == 0 {
			if src.States[q].Width > 0 {
				addAction(q, ActCopy)
			} else {
				addAction(q, ActNone)
			}
		}
	}

	// Determine each state's read instruction and check homogeneity.
	readOf := make([]Read, src.Size())
	for q := range readOf {
		readOf[q] = NoRead()
	}
	setRead := func(q int, r Read) error {
		if r.None {
			return nil
		}
		if !readOf[q].None && readOf[q] != r {
			return fmt.Errorf("nbva: state %d has conflicting reads %v and %v", q, readOf[q], r)
		}
		readOf[q] = r
		return nil
	}
	for _, e := range src.Edges {
		if err := setRead(e.From, e.Read); err != nil {
			return nil, err
		}
	}
	for _, f := range src.Finals {
		if err := setRead(f.State, f.Read); err != nil {
			return nil, err
		}
	}

	dst := &AHNBVA{AcceptsEmpty: src.AcceptsEmpty, Anchored: src.Anchored}
	ids := make(map[copyKey]int)
	for q, st := range src.States {
		for _, act := range actionsOf[q] {
			ids[copyKey{q, act}] = len(dst.States)
			dst.States = append(dst.States, AHState{
				Class:  st.Class,
				Width:  st.Width,
				Action: act,
				Read:   readOf[q],
			})
			dst.Origin = append(dst.Origin, q)
		}
	}
	// Edges: p's copies all forward to the copy of q matching the action.
	for _, e := range src.Edges {
		to := ids[copyKey{e.To, e.Action}]
		for _, act := range actionsOf[e.From] {
			from := ids[copyKey{e.From, act}]
			dst.Edges = append(dst.Edges, AHEdge{From: from, To: to, Gated: !e.Read.None})
		}
	}
	for _, q := range src.Initial {
		act := ActNone
		if src.States[q].Width > 0 {
			act = ActSet1
		}
		dst.Initial = append(dst.Initial, ids[copyKey{q, act}])
	}
	for _, f := range src.Finals {
		for _, act := range actionsOf[f.State] {
			dst.Finals = append(dst.Finals, ids[copyKey{f.State, act}])
		}
	}
	dst.finalize()
	return dst, nil
}

// MustTransform is Transform for known-good inputs; it panics on error.
func MustTransform(src *NBVA) *AHNBVA {
	a, err := Transform(src)
	if err != nil {
		panic(err)
	}
	return a
}

// AHRunner executes an AH-NBVA with the BVAP phase structure of §3:
// state matching, then bit-vector processing (route, aggregate with OR,
// apply the destination state's action), then state transition.
//
// The runner is sparse: a step costs time proportional to the active
// frontier (active states, their out-edges, and the candidate states those
// edges reach), not to the automaton size — the same property the
// event-driven hardware has.
type AHRunner struct {
	ah *AHNBVA
	// vecs holds the current configuration's vectors (valid only for
	// active BV states); nextVecs is the build buffer for the next
	// configuration. Double buffering matters: aggregation must read the
	// *old* vector of a source even when that source is itself being
	// rewritten as a destination this step (e.g. mutually-fed shift
	// loops).
	vecs     []BitVector
	nextVecs []BitVector

	// activeStamp[q] == epoch marks q active in the current
	// configuration; candStamp marks candidacy during a step.
	activeStamp []uint64
	candStamp   []uint64
	epoch       uint64
	activeList  []int
	candList    []int
	scratch     []int

	readOK      []bool
	isInitial   []bool
	isFinal     []bool
	initialList []int
	started     bool

	lastBVActive  int
	lastNFAActive int
	lastStorage   int // active BV states with storage (copy/shift)
	lastSet1      int // active power-gated set1 states
	lastReads     int // read actions executed (for energy accounting)
	lastSwaps     int // swap-phase vector deliveries (for energy accounting)
}

// NewAHRunner returns an AHRunner in the start-of-stream configuration.
func NewAHRunner(a *AHNBVA) *AHRunner {
	r := &AHRunner{
		ah:          a,
		vecs:        make([]BitVector, a.Size()),
		nextVecs:    make([]BitVector, a.Size()),
		activeStamp: make([]uint64, a.Size()),
		candStamp:   make([]uint64, a.Size()),
		epoch:       1,
		readOK:      make([]bool, a.Size()),
		isInitial:   make([]bool, a.Size()),
		isFinal:     make([]bool, a.Size()),
	}
	for _, q := range a.Initial {
		if !r.isInitial[q] {
			r.isInitial[q] = true
			r.initialList = append(r.initialList, q)
		}
	}
	for _, q := range a.Finals {
		r.isFinal[q] = true
	}
	for q, st := range a.States {
		if st.Width > 0 {
			r.vecs[q] = NewBitVector(st.Width)
			r.nextVecs[q] = NewBitVector(st.Width)
		}
	}
	return r
}

// Reset returns the runner to the start-of-stream configuration.
func (r *AHRunner) Reset() {
	r.epoch += 2
	r.started = false
	r.activeList = r.activeList[:0]
	r.lastBVActive, r.lastNFAActive = 0, 0
	r.lastStorage, r.lastSet1 = 0, 0
	r.lastReads, r.lastSwaps = 0, 0
}

// Active reports whether state q is active in the current configuration.
func (r *AHRunner) Active(q int) bool { return r.activeStamp[q] == r.epoch }

// Vector returns state q's current bit vector. Its contents are only
// meaningful while Active(q); callers must not mutate it.
func (r *AHRunner) Vector(q int) BitVector { return r.vecs[q] }

// ActiveBVStates returns the number of active BV states after the latest
// step.
func (r *AHRunner) ActiveBVStates() int { return r.lastBVActive }

// ActiveStates returns the number of active states after the latest step.
func (r *AHRunner) ActiveStates() int { return r.lastNFAActive }

// AppendActive appends the ids of the states active after the latest step
// to dst and returns the extended slice. It allocates only when dst's
// capacity is insufficient, so profilers can reuse one scratch buffer
// across steps; the order is the runner's deterministic commit order.
func (r *AHRunner) AppendActive(dst []int) []int {
	return append(dst, r.activeList...)
}

// ReadOps and SwapOps return the counts of read actions and vector
// deliveries performed on the latest step; the cycle simulator converts
// these into BVM energy and latency.
func (r *AHRunner) ReadOps() int { return r.lastReads }
func (r *AHRunner) SwapOps() int { return r.lastSwaps }

// ActiveStorageBVs and ActiveSet1BVs split the active BV states into those
// with SRAM storage (copy/shift) and power-gated set1 constant generators —
// the split the BVM energy model charges differently (§5).
func (r *AHRunner) ActiveStorageBVs() int { return r.lastStorage }
func (r *AHRunner) ActiveSet1BVs() int    { return r.lastSet1 }

// Step consumes one input symbol and reports whether a match ends at it.
func (r *AHRunner) Step(b byte) bool {
	a := r.ah
	cur := r.epoch
	next := cur + 1
	r.lastReads, r.lastSwaps = 0, 0

	// Read step: evaluate each active source's read once (performed at
	// the source BV, §5).
	for _, q := range r.activeList {
		st := &a.States[q]
		if st.Read.None || st.Width == 0 {
			r.readOK[q] = true
			continue
		}
		r.readOK[q] = st.Read.Eval(r.vecs[q])
		r.lastReads++
	}

	// Candidate discovery: initial states plus targets of enabled edges
	// out of active states. A candidate BV state's scratch vector is
	// cleared on first sight.
	r.candList = r.candList[:0]
	addCand := func(q int) {
		if r.candStamp[q] == next {
			return
		}
		r.candStamp[q] = next
		r.candList = append(r.candList, q)
	}
	armInitial := !a.Anchored || !r.started
	r.started = true
	if armInitial {
		for _, q := range r.initialList {
			addCand(q)
		}
	}
	for _, p := range r.activeList {
		for _, ei := range a.bySource[p] {
			e := &a.Edges[ei]
			if e.Gated && !r.readOK[p] {
				continue
			}
			addCand(e.To)
		}
	}

	// Matching + bit-vector processing over the candidates.
	match := false
	r.scratch = r.scratch[:0]
	for _, q := range r.candList {
		st := &a.States[q]
		if !st.Class.Contains(b) {
			continue
		}
		needVec := st.Width > 0 && st.Action != ActSet1
		if needVec {
			r.nextVecs[q].Clear()
		}
		fired := false
		for _, ei := range a.byDest[q] {
			e := &a.Edges[ei]
			if r.activeStamp[e.From] != cur {
				continue
			}
			if e.Gated && !r.readOK[e.From] {
				continue
			}
			fired = true
			// Aggregation: OR the raw source vector into the
			// destination's input. Set1 ignores the input, and
			// plain states carry none.
			if needVec && a.States[e.From].Width > 0 {
				r.nextVecs[q].OrFrom(r.vecs[e.From])
				r.lastSwaps++
			}
		}
		if !fired && !(armInitial && r.isInitial[q]) {
			continue
		}
		// Action execution after aggregation (§3).
		alive := true
		if st.Width > 0 {
			switch st.Action {
			case ActSet1:
				r.nextVecs[q].SetOnly1()
				r.lastSwaps++
			case ActShift:
				r.nextVecs[q].ShiftFrom(r.nextVecs[q])
				alive = !r.nextVecs[q].IsZero()
			default:
				alive = !r.nextVecs[q].IsZero()
			}
		}
		if !alive {
			continue // a BV state with a zero vector is dead
		}
		r.scratch = append(r.scratch, q)
	}

	// Commit the new configuration: the build buffer becomes current.
	r.vecs, r.nextVecs = r.nextVecs, r.vecs
	r.activeList, r.scratch = r.scratch, r.activeList
	r.lastBVActive, r.lastNFAActive = 0, 0
	r.lastStorage, r.lastSet1 = 0, 0
	for _, q := range r.activeList {
		r.activeStamp[q] = next
		st := &a.States[q]
		r.lastNFAActive++
		if st.Width > 0 {
			r.lastBVActive++
			if st.Action == ActSet1 {
				r.lastSet1++
			} else {
				r.lastStorage++
			}
		}
		if r.isFinal[q] {
			if st.Read.None || st.Width == 0 || st.Read.Eval(r.vecs[q]) {
				match = true
			}
		}
	}
	r.epoch = next
	return match
}

// MatchEnds runs the AH-NBVA over input and returns every index where a
// match ends.
func (a *AHNBVA) MatchEnds(input []byte) []int {
	r := NewAHRunner(a)
	var ends []int
	for i, b := range input {
		if r.Step(b) {
			ends = append(ends, i)
		}
	}
	return ends
}
