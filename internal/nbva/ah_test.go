package nbva

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bvap/internal/nca"
	"bvap/internal/regex"
)

func TestAHSplitRunningExample(t *testing.T) {
	// §3/§4: for a(Σa){3}b the Σ state has two incoming actions (set1
	// from a, shift from the inner a), so it splits into STE2a and STE2b;
	// total 5 STEs (Fig. 2(f)/(g), Fig. 3(c)).
	src := MustBuild(regex.MustParse("a(.a){3}b"))
	ah := MustTransform(src)
	if ah.Size() != 5 {
		t.Fatalf("AH size = %d, want 5", ah.Size())
	}
	if ah.BVStateCount() != 3 {
		t.Fatalf("BV states = %d, want 3 (2a, 2b, 3)", ah.BVStateCount())
	}
	// Action kinds among BV states: set1 (2a), shift (2b), copy (the
	// inner a).
	counts := map[Action]int{}
	for _, s := range ah.States {
		if s.Width > 0 {
			counts[s.Action]++
		}
	}
	if counts[ActSet1] != 1 || counts[ActShift] != 1 || counts[ActCopy] != 1 {
		t.Fatalf("action histogram = %v", counts)
	}
}

func TestAHIsActionHomogeneous(t *testing.T) {
	// The defining property: in the transformed automaton every state has
	// a unique action, and every NBVA edge maps to an AH edge whose
	// destination's action equals the original edge action.
	patterns := []string{
		"a(.a){3}b", "ab{2,5}(cd){6}e", "a(b+c){2}d", "x(ab|c){3}y",
		"ab{3}c{4}d", "a{2,6}", "a+b{3}",
	}
	for _, pat := range patterns {
		src := MustBuild(regex.MustParse(pat))
		ah := MustTransform(src)
		for _, e := range ah.Edges {
			if e.From < 0 || e.From >= ah.Size() || e.To < 0 || e.To >= ah.Size() {
				t.Fatalf("%q: invalid edge %+v", pat, e)
			}
		}
		// Each AH state's incoming edges must be consistent with its
		// action: a ActNone state has width 0, others width > 0.
		for q, s := range ah.States {
			if (s.Action == ActNone) != (s.Width == 0) {
				t.Fatalf("%q: state %d action %v width %d", pat, q, s.Action, s.Width)
			}
		}
	}
}

func TestTable2AHExecution(t *testing.T) {
	// Table 2: BVAP (AH) execution of a(Σa){3}b over "abaaabab".
	// States after transform: a, Σ/set1 (2a), Σ/shift (2b), a/copy (3),
	// b (4, gated by r(3)). The report fires only at the final b, and the
	// combined count-set of the two Σ copies must equal the unsplit Σ
	// vector of the naïve execution at every step (language equivalence
	// made observable).
	src := MustBuild(regex.MustParse("a(.a){3}b"))
	ah := MustTransform(src)

	// Identify the split Σ states and the inner-a state.
	var sigmaStates, innerA []int
	for q, s := range ah.States {
		if s.Width > 0 {
			if s.Action == ActCopy {
				innerA = append(innerA, q)
			} else {
				sigmaStates = append(sigmaStates, q)
			}
		}
	}
	if len(sigmaStates) != 2 || len(innerA) != 1 {
		t.Fatalf("split shape wrong: sigma=%v inner=%v", sigmaStates, innerA)
	}

	naive := NewRunner(src)
	ahr := NewAHRunner(ah)
	input := []byte("abaaabab")
	for i, b := range input {
		nOut := naive.Step(b)
		aOut := ahr.Step(b)
		if nOut != aOut {
			t.Fatalf("step %d (%q): naive out %v, AH out %v", i, b, nOut, aOut)
		}
		// OR of the split copies equals the unsplit vector.
		or := NewBitVector(3)
		for _, q := range sigmaStates {
			if ahr.Active(q) {
				or.OrFrom(ahr.Vector(q))
			}
		}
		if !or.Equal(naive.Vector(1)) {
			t.Fatalf("step %d (%q): Σ split OR = %s, naive = %s", i, b, or, naive.Vector(1))
		}
		orA := NewBitVector(3)
		for _, q := range innerA {
			if ahr.Active(q) {
				orA.OrFrom(ahr.Vector(q))
			}
		}
		if !orA.Equal(naive.Vector(2)) {
			t.Fatalf("step %d (%q): inner-a split OR = %s, naive = %s", i, b, orA, naive.Vector(2))
		}
	}
}

func TestAHMatchesNaive(t *testing.T) {
	patterns := []string{
		"ab{3}c", "a(bc){2,4}d", "a.{5}b", "x(ab|c){3}y", "a{2,6}",
		"ab{1,3}c{2}", "a(b+c){2}d", "xa{0,2}y", "a(.a){3}b",
		"ab{2,5}(cd){6}e", "a+b{3}c*",
	}
	inputs := []string{
		"abbbc", "abcbcd", "axxxxxb", "xababcaby", "aaaa", "xy", "xaay",
		"abbbcabcc", "abcbccd", "aaaaaaaa", "xcababy", "abcc", "",
		"abbcc", "abbccabcc", "abaaabab", "abbcdcdcdcdcdcde",
		"abbbbbcdcdcdcdcdcde", "aabbbccc",
	}
	for _, pat := range patterns {
		src := MustBuild(regex.MustParse(pat))
		ah := MustTransform(src)
		for _, in := range inputs {
			got := ah.MatchEnds([]byte(in))
			want := src.MatchEnds([]byte(in))
			if !equalInts(got, want) {
				t.Errorf("pattern %q input %q: AH %v, naive %v", pat, in, got, want)
			}
		}
	}
}

// randCountingPattern builds a random pattern mixing classical operators and
// one or two bounded repetitions with small bounds.
func randCountingPattern(r *rand.Rand) string {
	letter := func() string { return string(rune('a' + r.Intn(3))) }
	atom := func() string {
		switch r.Intn(4) {
		case 0:
			return letter() + "{" + string(rune('2'+r.Intn(4))) + "}"
		case 1:
			lo := 1 + r.Intn(2)
			hi := lo + 1 + r.Intn(3)
			return letter() + "{" + string(rune('0'+lo)) + "," + string(rune('0'+hi)) + "}"
		case 2:
			return "(" + letter() + letter() + "){" + string(rune('2'+r.Intn(3))) + "}"
		default:
			return letter()
		}
	}
	s := letter()
	for i := 0; i < 2+r.Intn(3); i++ {
		s += atom()
	}
	return s
}

func TestQuickAHEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randCountingPattern(r)
		n, err := regex.Parse(pat)
		if err != nil {
			return false
		}
		src, err := Build(n)
		if err != nil {
			return true // nested counting etc.: nothing to compare
		}
		ah, err := Transform(src)
		if err != nil {
			return false
		}
		input := make([]byte, 24)
		for i := range input {
			input[i] = byte('a' + r.Intn(3))
		}
		return equalInts(src.MatchEnds(input), ah.MatchEnds(input))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAHAgainstNCA(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randCountingPattern(r)
		n, err := regex.Parse(pat)
		if err != nil {
			return false
		}
		src, err := Build(n)
		if err != nil {
			return true
		}
		ah := MustTransform(src)
		input := make([]byte, 20)
		for i := range input {
			input[i] = byte('a' + r.Intn(3))
		}
		want := mustNCAEnds(pat, input)
		return equalInts(ah.MatchEnds(input), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAHConstantOverhead(t *testing.T) {
	// §3: "BVAP needs O(1) STEs for a(Σa){n}b since the AH transformation
	// only adds a constant number of STEs" — the AH size must not depend
	// on the bound.
	n5 := MustTransform(MustBuild(regex.MustParse("a(.a){5}b"))).Size()
	n500 := MustTransform(MustBuild(regex.MustParse("a(.a){500}b"))).Size()
	if n5 != n500 {
		t.Fatalf("AH size depends on bound: %d vs %d", n5, n500)
	}
}

func mustNCAEnds(pat string, input []byte) []int {
	return nca.MustBuild(regex.MustParse(pat)).MatchEnds(input)
}

func TestAHRunnerCounters(t *testing.T) {
	src := MustBuild(regex.MustParse("ab{3}c"))
	ah := MustTransform(src)
	r := NewAHRunner(ah)
	r.Step('a')
	r.Step('b')
	if r.ActiveBVStates() != 1 {
		t.Fatalf("active BV states = %d, want 1", r.ActiveBVStates())
	}
	if r.ActiveStates() < 1 {
		t.Fatal("no active states")
	}
	r.Step('b')
	if r.ReadOps() < 0 || r.SwapOps() < 1 {
		t.Fatalf("ops: reads=%d swaps=%d", r.ReadOps(), r.SwapOps())
	}
}
