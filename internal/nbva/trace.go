package nbva

import (
	"fmt"
	"strings"
)

// This file renders step-by-step execution traces in the style of the
// paper's Table 1 (naïve per-transition design) and Table 2 (BVAP/AH
// design): one row per input symbol showing each STE's activity and each
// bit vector's value after the cycle. The traces regenerate the paper's
// sample-execution tables and double as a debugging aid.

// TraceNaive executes the plain NBVA over input and renders the Table 1
// style trace.
func TraceNaive(a *NBVA, input []byte) string {
	r := NewRunner(a)
	var sb strings.Builder
	header := []string{"input"}
	for q := range a.States {
		header = append(header, fmt.Sprintf("STE%d", q+1))
	}
	for q, st := range a.States {
		if st.Width > 0 {
			header = append(header, fmt.Sprintf("bv%d", q+1))
		}
	}
	header = append(header, "out")
	rows := [][]string{header}
	for _, b := range input {
		out := r.Step(b)
		row := []string{printable(b)}
		for q := range a.States {
			row = append(row, bit(r.Active(q)))
		}
		for q, st := range a.States {
			if st.Width > 0 {
				row = append(row, r.Vector(q).String())
			}
		}
		row = append(row, bit(out))
		rows = append(rows, row)
	}
	renderRows(&sb, rows)
	return sb.String()
}

// TraceAH executes the AH-NBVA over input and renders the Table 2 style
// trace. Split states are labeled STE<origin><letter> (e.g. STE2a, STE2b),
// mirroring the paper's naming.
func TraceAH(a *AHNBVA, input []byte) string {
	r := NewAHRunner(a)
	labels := ahLabels(a)
	var sb strings.Builder
	header := []string{"input"}
	for q := range a.States {
		header = append(header, labels[q])
	}
	for q, st := range a.States {
		if st.Width > 0 {
			header = append(header, "bv"+strings.TrimPrefix(labels[q], "STE"))
		}
	}
	header = append(header, "out")
	rows := [][]string{header}
	for _, b := range input {
		out := r.Step(b)
		row := []string{printable(b)}
		for q := range a.States {
			row = append(row, bit(r.Active(q)))
		}
		for q, st := range a.States {
			if st.Width > 0 {
				if r.Active(q) {
					row = append(row, r.Vector(q).String())
				} else {
					row = append(row, zeroVector(st.Width))
				}
			}
		}
		row = append(row, bit(out))
		rows = append(rows, row)
	}
	renderRows(&sb, rows)
	return sb.String()
}

// ahLabels names AH states after their NBVA origin, appending a/b/c…
// when the origin was split.
func ahLabels(a *AHNBVA) []string {
	copies := map[int]int{}
	for _, o := range a.Origin {
		copies[o]++
	}
	seen := map[int]int{}
	labels := make([]string, a.Size())
	for q, o := range a.Origin {
		if copies[o] > 1 {
			labels[q] = fmt.Sprintf("STE%d%c", o+1, 'a'+seen[o])
			seen[o]++
		} else {
			labels[q] = fmt.Sprintf("STE%d", o+1)
		}
	}
	return labels
}

func zeroVector(width int) string {
	parts := make([]string, width)
	for i := range parts {
		parts[i] = "0"
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func printable(b byte) string {
	if b >= 0x21 && b < 0x7f {
		return string(b)
	}
	return fmt.Sprintf("%02x", b)
}

// renderRows prints rows with per-column alignment.
func renderRows(sb *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
}
