package nbva

import (
	"bytes"
	"testing"

	"bvap/internal/regex"
)

func wireTestMachine(t *testing.T) *AHNBVA {
	t.Helper()
	return MustTransform(MustBuild(regex.MustParse("a(.a){3}b")))
}

// advance runs the runner n symbols into a repeating probe input and
// returns the symbols fed.
func advance(r *AHRunner, n int) []byte {
	in := bytes.Repeat([]byte("axayaab"), (n+6)/7)[:n]
	for _, b := range in {
		r.Step(b)
	}
	return in
}

func TestRunnerSnapshotWireRoundTrip(t *testing.T) {
	ah := wireTestMachine(t)
	r := NewAHRunner(ah)
	advance(r, 11)
	snap := r.Snapshot()

	wire, err := snap.AppendWire(nil, ah)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}
	dec, rest, err := DecodeRunnerSnapshotWire(wire, ah)
	if err != nil {
		t.Fatalf("DecodeRunnerSnapshotWire: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d unconsumed bytes", len(rest))
	}
	if dec.started != snap.started {
		t.Fatalf("started = %v, want %v", dec.started, snap.started)
	}
	if len(dec.active) != len(snap.active) {
		t.Fatalf("frontier size = %d, want %d", len(dec.active), len(snap.active))
	}
	for i := range snap.active {
		if dec.active[i] != snap.active[i] {
			t.Fatalf("frontier[%d] = %d, want %d (order must be preserved)", i, dec.active[i], snap.active[i])
		}
		if snap.vecs[i].Width() > 0 && !dec.vecs[i].Equal(snap.vecs[i]) {
			t.Fatalf("vector of state %d differs after round trip", snap.active[i])
		}
	}
	if dec.nfaActive != snap.nfaActive || dec.bvActive != snap.bvActive ||
		dec.storage != snap.storage || dec.set1 != snap.set1 {
		t.Fatalf("recomputed counters (%d,%d,%d,%d) != snapshot (%d,%d,%d,%d)",
			dec.nfaActive, dec.bvActive, dec.storage, dec.set1,
			snap.nfaActive, snap.bvActive, snap.storage, snap.set1)
	}

	// A restored-from-wire runner must replay identically to the original.
	r2 := NewAHRunner(ah)
	r2.Restore(dec)
	r3 := NewAHRunner(ah)
	advance(r3, 11)
	tail := bytes.Repeat([]byte("aaaab"), 8)
	for i, b := range tail {
		if got, want := r2.Step(b), r3.Step(b); got != want {
			t.Fatalf("replay diverged at symbol %d: wire=%v direct=%v", i, got, want)
		}
	}
}

func TestRunnerSnapshotWireFreshRunner(t *testing.T) {
	ah := wireTestMachine(t)
	snap := NewAHRunner(ah).Snapshot()
	wire, err := snap.AppendWire(nil, ah)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}
	dec, _, err := DecodeRunnerSnapshotWire(wire, ah)
	if err != nil {
		t.Fatalf("decode fresh snapshot: %v", err)
	}
	if dec.started || len(dec.active) != 0 || dec.nfaActive != 0 {
		t.Fatalf("fresh snapshot decoded dirty: %+v", dec)
	}
}

func TestRunnerSnapshotWireRejectsCorruption(t *testing.T) {
	ah := wireTestMachine(t)
	r := NewAHRunner(ah)
	advance(r, 9)
	wire, err := r.Snapshot().AppendWire(nil, ah)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}

	// Every strict prefix must be rejected as truncated, never mis-decoded.
	for n := 0; n < len(wire); n++ {
		if _, _, err := DecodeRunnerSnapshotWire(wire[:n], ah); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(wire))
		}
	}

	corrupt := func(mut func(b []byte)) error {
		b := append([]byte(nil), wire...)
		mut(b)
		_, _, err := DecodeRunnerSnapshotWire(b, ah)
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 7 }); err == nil {
		t.Fatal("bad started flag accepted")
	}
	if err := corrupt(func(b []byte) { b[1], b[2] = 0xff, 0xff }); err == nil {
		t.Fatal("absurd frontier count accepted")
	}
	if err := corrupt(func(b []byte) { b[5], b[6] = 0xff, 0xff }); err == nil {
		t.Fatal("out-of-range state index accepted")
	}
}

func TestRunnerSnapshotWireRejectsWrongMachine(t *testing.T) {
	ah := wireTestMachine(t)
	r := NewAHRunner(ah)
	advance(r, 9)
	wire, err := r.Snapshot().AppendWire(nil, ah)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}
	// Machine identity is enforced a layer up (the session checkpoint
	// carries an engine fingerprint); this codec's obligation against a
	// foreign machine is weaker but still firm: decode either fails, or
	// yields a state fully self-consistent with the machine it was decoded
	// against — in-range indices, machine-derived widths, no stray bytes
	// silently dropped.
	other := MustTransform(MustBuild(regex.MustParse("a(.a){64}b")))
	dec, rest, err := DecodeRunnerSnapshotWire(wire, other)
	if err != nil {
		return
	}
	if len(rest) != 0 && len(rest) == len(wire) {
		t.Fatal("decode claimed success without consuming anything")
	}
	for i, q := range dec.active {
		if q < 0 || q >= len(other.States) {
			t.Fatalf("wrong-machine decode produced out-of-range state %d", q)
		}
		if w := other.States[q].Width; (w > 0) != (dec.vecs[i].Width() > 0) || (w > 0 && dec.vecs[i].Width() != w) {
			t.Fatalf("wrong-machine decode produced vector width %d for state %d (machine width %d)",
				dec.vecs[i].Width(), q, w)
		}
	}
}
