package nbva

import (
	"testing"

	"bvap/internal/glushkov"
	"bvap/internal/nca"
	"bvap/internal/regex"
)

func TestFigure1NBVAExecution(t *testing.T) {
	// Fig. 1: NBVA for Σ*aΣ{3}; the leading Σ* is the implicit initial
	// availability. State 1 carries the width-3 bit vector; the figure's
	// configurations for q2 are checked step by step.
	a := MustBuild(regex.MustParse("a.{3}"))
	if a.Size() != 2 {
		t.Fatalf("size = %d, want 2", a.Size())
	}
	if a.States[0].Width != 0 || a.States[1].Width != 3 {
		t.Fatalf("widths = %d,%d; want 0,3", a.States[0].Width, a.States[1].Width)
	}
	r := NewRunner(a)
	steps := []struct {
		in  byte
		q2  string // bit vector of the counting state
		out bool
	}{
		{'b', "[0,0,0]", false},
		{'a', "[0,0,0]", false},
		{'b', "[1,0,0]", false},
		{'a', "[0,1,0]", false},
		{'a', "[1,0,1]", true},
		{'b', "[1,1,0]", false},
		{'a', "[0,1,1]", true},
		{'a', "[1,0,1]", true},
		{'a', "[1,1,0]", false},
	}
	for i, st := range steps {
		got := r.Step(st.in)
		if got != st.out {
			t.Fatalf("step %d (%q): output %v, want %v", i, st.in, got, st.out)
		}
		if vec := r.Vector(1).String(); vec != st.q2 {
			t.Fatalf("step %d (%q): q2 = %s, want %s", i, st.in, vec, st.q2)
		}
	}
}

func TestSection4ExampleStructure(t *testing.T) {
	// §4: the NBVA for ab{2,5}(cd){6}e has states a, b, c, d, e with
	// widths 0, 5, 6, 6, 0; b's exit read is r(2,5) and d's is r(6).
	a := MustBuild(regex.MustParse("ab{2,5}(cd){6}e"))
	if a.Size() != 5 {
		t.Fatalf("size = %d, want 5", a.Size())
	}
	wantWidths := []int{0, 5, 6, 6, 0}
	for q, w := range wantWidths {
		if a.States[q].Width != w {
			t.Fatalf("state %d width = %d, want %d", q, a.States[q].Width, w)
		}
	}
	// Find the edge b→c: it should be gated by r(2,5) and carry set1.
	found := false
	for _, e := range a.Edges {
		if e.From == 1 && e.To == 2 {
			found = true
			if e.Read != ReadRange(2, 5) || e.Action != ActSet1 {
				t.Fatalf("b→c edge = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no b→c edge")
	}
	// The final e is reached from d gated by r(6).
	for _, e := range a.Edges {
		if e.From == 3 && e.To == 4 {
			if e.Read != ReadBit(6) {
				t.Fatalf("d→e read = %v, want r(6)", e.Read)
			}
		}
	}
}

func TestNaiveMatchesRunningExample(t *testing.T) {
	// §3's running example: a(Σa){3}b over "abaaabab" matches exactly at
	// the last symbol (Tables 1 and 2 report at the 8th input).
	a := MustBuild(regex.MustParse("a(.a){3}b"))
	ends := a.MatchEnds([]byte("abaaabab"))
	if len(ends) != 1 || ends[0] != 7 {
		t.Fatalf("ends = %v, want [7]", ends)
	}
}

func TestTable1NaiveBVExecution(t *testing.T) {
	// Table 1 exercises the naïve (per-edge action) design on
	// a(Σa){3}b over "abaaabab". We verify the bit-vector evolution of
	// the Σ state (STE2, our state 1) and the inner-a state (STE3, our
	// state 2), and that the report fires only at the final b.
	a := MustBuild(regex.MustParse("a(.a){3}b"))
	if a.Size() != 4 {
		t.Fatalf("size = %d, want 4", a.Size())
	}
	r := NewRunner(a)
	input := []byte("abaaabab")
	type row struct {
		sigma string // vector of the Σ state after the step
		inner string // vector of the inner a state after the step
		out   bool
	}
	want := []row{
		{"[0,0,0]", "[0,0,0]", false}, // a: STE1 active only
		{"[1,0,0]", "[0,0,0]", false}, // b: Σ enters with set1
		{"[0,0,0]", "[1,0,0]", false}, // a: inner a copies
		{"[1,1,0]", "[0,0,0]", false}, // a: set1 (restart) | shift(back)
		{"[1,0,0]", "[1,1,0]", false}, // a
		{"[1,1,1]", "[0,0,0]", false}, // b: Σ gets set1|shift of [1,1,0]
		{"[0,0,0]", "[1,1,1]", false}, // a: inner a now holds count 3
		{"", "", true},                // b: report via r(3)
	}
	for i, b := range input {
		got := r.Step(b)
		if got != want[i].out {
			t.Fatalf("step %d (%q): out = %v, want %v", i, b, got, want[i].out)
		}
		if want[i].sigma != "" {
			if s := r.Vector(1).String(); s != want[i].sigma {
				t.Fatalf("step %d (%q): Σ vec = %s, want %s", i, b, s, want[i].sigma)
			}
			if s := r.Vector(2).String(); s != want[i].inner {
				t.Fatalf("step %d (%q): inner vec = %s, want %s", i, b, s, want[i].inner)
			}
		}
	}
}

func TestNBVAEquivalentToNCA(t *testing.T) {
	patterns := []string{
		"ab{3}c",
		"a(bc){2,4}d",
		"a.{5}b",
		"x(ab|c){3}y",
		"a{2,6}",
		"ab{1,3}c{2}",
		"a(b+c){2}d",
		"xa{0,2}y",
		"a(.a){3}b",
	}
	inputs := []string{
		"abbbc", "abcbcd", "axxxxxb", "xababcaby", "aaaa", "xy", "xaay",
		"abbbcabcc", "abcbccd", "aaaaaaaa", "xcababy", "abcc", "",
		"abbcc", "abbccabcc", "abaaabab", "aabbccaabbcc",
	}
	for _, pat := range patterns {
		n := regex.MustParse(pat)
		bva := MustBuild(n)
		ca := nca.MustBuild(n)
		for _, in := range inputs {
			got := bva.MatchEnds([]byte(in))
			want := ca.MatchEnds([]byte(in))
			if !equalInts(got, want) {
				t.Errorf("pattern %q input %q: nbva %v, nca %v", pat, in, got, want)
			}
		}
	}
}

func TestNBVAEquivalentToUnfoldedNFA(t *testing.T) {
	patterns := []string{"ab{4}c", "a(bc){3}", "a{1,5}b", "a.{6}b"}
	inputs := []string{"abbbbc", "abcbcbc", "ab", "aab", "aaaab", "aXXXXXXb", "abbbbcabbbbc"}
	for _, pat := range patterns {
		n := regex.MustParse(pat)
		bva := MustBuild(n)
		nfa := glushkov.MustBuild(regex.FullyUnfold(n))
		for _, in := range inputs {
			got := bva.MatchEnds([]byte(in))
			want := nfa.MatchEnds([]byte(in))
			if !equalInts(got, want) {
				t.Errorf("pattern %q input %q: nbva %v, nfa %v", pat, in, got, want)
			}
		}
	}
}

func TestNestedCountingRejectedNBVA(t *testing.T) {
	if _, err := Build(regex.MustParse("(a{3}b){4}")); err == nil {
		t.Fatal("nested counting accepted")
	}
}

func TestStateSpaceLinearInRegexSize(t *testing.T) {
	// §1: the NBVA state space is linear in the regex size (one state per
	// character class), independent of the bounds.
	small := MustBuild(regex.MustParse("ab{10}c"))
	large := MustBuild(regex.MustParse("ab{10000}c"))
	if small.Size() != large.Size() {
		t.Fatalf("state count depends on bound: %d vs %d", small.Size(), large.Size())
	}
	if large.States[1].Width != 10000 {
		t.Fatalf("width = %d, want 10000", large.States[1].Width)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
