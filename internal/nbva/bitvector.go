// Package nbva implements Nondeterministic Bit Vector Automata (NBVAs) and
// the Action-Homogeneous transformation (AH-NBVA) that is the theoretical
// core of the BVAP paper (§2–§4).
//
// An NBVA state carries a bit vector that is the characteristic function of
// the set of live counter values of the corresponding NCA state: v[i] = 1
// iff i completed iterations of the enclosing bounded repetition are
// possible. All bit-vector operations used are linear with respect to
// bitwise OR — f(v1|v2) = f(v1)|f(v2) — which is what allows incoming
// vectors to be aggregated with OR before (AH form) or after (naïve form)
// applying the operation, and is what the MFCB hardware exploits.
package nbva

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVector is a fixed-width bit vector with 1-based indexing, matching the
// paper's v[1..n] notation. Bit 1 is the least significant bit of word 0.
// The zero value of width 0 is not usable; create vectors with NewBitVector.
type BitVector struct {
	width int
	words []uint64
}

// NewBitVector returns an all-zero bit vector of the given width ≥ 1.
func NewBitVector(width int) BitVector {
	if width < 1 {
		panic(fmt.Sprintf("nbva: invalid bit vector width %d", width))
	}
	return BitVector{width: width, words: make([]uint64, (width+63)/64)}
}

// Width returns the vector's width n.
func (v BitVector) Width() int { return v.width }

// Get returns bit i (1-based). It panics if i is out of [1, width].
func (v BitVector) Get(i int) bool {
	v.check(i)
	return v.words[(i-1)>>6]&(1<<(uint(i-1)&63)) != 0
}

// Set sets bit i (1-based) in place.
func (v BitVector) Set(i int) {
	v.check(i)
	v.words[(i-1)>>6] |= 1 << (uint(i-1) & 63)
}

// Flip inverts bit i (1-based) in place — the soft-error primitive used by
// the fault-injection layer.
func (v BitVector) Flip(i int) {
	v.check(i)
	v.words[(i-1)>>6] ^= 1 << (uint(i-1) & 63)
}

func (v BitVector) check(i int) {
	if i < 1 || i > v.width {
		panic(fmt.Sprintf("nbva: bit index %d out of range [1,%d]", i, v.width))
	}
}

// IsZero reports whether every bit is 0. A counting state whose vector is
// zero is dead: no live counter value remains.
func (v BitVector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits (live counter values).
func (v BitVector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear zeroes the vector in place.
func (v BitVector) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// CopyFrom overwrites v with src. Both must have the same width.
func (v BitVector) CopyFrom(src BitVector) {
	if v.width != src.width {
		panic(fmt.Sprintf("nbva: width mismatch %d vs %d", v.width, src.width))
	}
	copy(v.words, src.words)
}

// Clone returns an independent copy of v.
func (v BitVector) Clone() BitVector {
	c := NewBitVector(v.width)
	copy(c.words, v.words)
	return c
}

// OrFrom ORs src into v in place (the MFCB aggregation step). Both vectors
// must have the same width.
func (v BitVector) OrFrom(src BitVector) {
	if v.width != src.width {
		panic(fmt.Sprintf("nbva: width mismatch %d vs %d", v.width, src.width))
	}
	for i := range v.words {
		v.words[i] |= src.words[i]
	}
}

// SetOnly1 makes v the vector [1, 0, …, 0] (the set1 action) in place.
func (v BitVector) SetOnly1() {
	v.Clear()
	v.words[0] = 1
}

// ShiftFrom writes shft(src) into v in place: shft(v)[1] = 0 and
// shft(v)[i] = v[i-1]. A bit shifted past the width is dropped, which is
// what bounds the repetition count without an explicit guard.
func (v BitVector) ShiftFrom(src BitVector) {
	if v.width != src.width {
		panic(fmt.Sprintf("nbva: width mismatch %d vs %d", v.width, src.width))
	}
	carry := uint64(0)
	for i := range src.words {
		w := src.words[i]
		v.words[i] = w<<1 | carry
		carry = w >> 63
	}
	v.maskTop()
}

// maskTop clears bits beyond the width in the last word.
func (v BitVector) maskTop() {
	rem := uint(v.width & 63)
	if rem != 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// AnyInRange reports whether any of v[lo..hi] is 1 (the paper's r(m,n) read;
// r(1,n) is the hardware's rAll/rHalf/rQuarter family and r(n,n) is r(n)).
func (v BitVector) AnyInRange(lo, hi int) bool {
	v.check(lo)
	v.check(hi)
	if lo > hi {
		return false
	}
	loW, loB := (lo-1)>>6, uint(lo-1)&63
	hiW, hiB := (hi-1)>>6, uint(hi-1)&63
	if loW == hiW {
		mask := (^uint64(0) << loB) & (^uint64(0) >> (63 - hiB))
		return v.words[loW]&mask != 0
	}
	if v.words[loW]&(^uint64(0)<<loB) != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if v.words[w] != 0 {
			return true
		}
	}
	return v.words[hiW]&(^uint64(0)>>(63-hiB)) != 0
}

// Equal reports whether v and u have identical width and contents.
func (v BitVector) Equal(u BitVector) bool {
	if v.width != u.width {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector in the paper's [b1, b2, …, bn] notation.
func (v BitVector) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 1; i <= v.width; i++ {
		if i > 1 {
			sb.WriteByte(',')
		}
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// FromBits builds a vector from explicit bit values, index 1 first.
func FromBits(bits ...int) BitVector {
	v := NewBitVector(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i + 1)
		}
	}
	return v
}
