package nbva

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(100)
	if v.Width() != 100 || !v.IsZero() {
		t.Fatalf("new vector wrong: width=%d zero=%v", v.Width(), v.IsZero())
	}
	v.Set(1)
	v.Set(64)
	v.Set(65)
	v.Set(100)
	for _, i := range []int{1, 64, 65, 100} {
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Get(2) || v.Get(63) || v.Get(99) {
		t.Fatal("unexpected bits set")
	}
	if v.PopCount() != 4 {
		t.Fatalf("popcount = %d, want 4", v.PopCount())
	}
	v.Clear()
	if !v.IsZero() {
		t.Fatal("clear failed")
	}
}

func TestBitVectorBoundsPanic(t *testing.T) {
	v := NewBitVector(8)
	for _, i := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestShiftSemantics(t *testing.T) {
	// shft(v)[1] = 0 and shft(v)[i] = v[i-1]; overflow past the width is
	// dropped (this is what bounds the repetition).
	v := FromBits(1, 0, 1)
	out := NewBitVector(3)
	out.ShiftFrom(v)
	if out.String() != "[0,1,0]" {
		t.Fatalf("shift([1,0,1]) = %s, want [0,1,0]", out)
	}
	// Overflow at the top.
	v = FromBits(0, 0, 1)
	out.ShiftFrom(v)
	if !out.IsZero() {
		t.Fatalf("shift([0,0,1]) = %s, want zero", out)
	}
}

func TestShiftAcrossWords(t *testing.T) {
	v := NewBitVector(130)
	v.Set(64)
	v.Set(128)
	out := NewBitVector(130)
	out.ShiftFrom(v)
	if !out.Get(65) || !out.Get(129) || out.PopCount() != 2 {
		t.Fatalf("cross-word shift wrong: %v", out)
	}
}

func TestShiftInPlace(t *testing.T) {
	v := FromBits(1, 1, 0, 0)
	v.ShiftFrom(v)
	if v.String() != "[0,1,1,0]" {
		t.Fatalf("in-place shift = %s", v)
	}
}

func TestSetOnly1(t *testing.T) {
	v := FromBits(0, 1, 1)
	v.SetOnly1()
	if v.String() != "[1,0,0]" {
		t.Fatalf("set1 = %s", v)
	}
}

func TestAnyInRange(t *testing.T) {
	v := NewBitVector(200)
	v.Set(70)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{1, 69, false},
		{1, 70, true},
		{70, 70, true},
		{71, 200, false},
		{70, 200, true},
		{1, 200, true},
		{69, 71, true},
	}
	for _, tc := range cases {
		if got := v.AnyInRange(tc.lo, tc.hi); got != tc.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestOrFromAndEqual(t *testing.T) {
	a := FromBits(1, 0, 1, 0)
	b := FromBits(0, 1, 1, 0)
	a.OrFrom(b)
	if a.String() != "[1,1,1,0]" {
		t.Fatalf("or = %s", a)
	}
	if !a.Equal(FromBits(1, 1, 1, 0)) {
		t.Fatal("equal failed")
	}
	if a.Equal(FromBits(1, 1, 1)) {
		t.Fatal("width mismatch reported equal")
	}
}

func randVector(r *rand.Rand, width int) BitVector {
	v := NewBitVector(width)
	for i := 1; i <= width; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// TestQuickActionLinearity is the central algebraic property of the paper:
// every BVAP action f satisfies f(v1|v2) = f(v1)|f(v2), which is what makes
// aggregate-then-act (AH hardware) equal to act-then-aggregate (naïve NBVA).
func TestQuickActionLinearity(t *testing.T) {
	actions := []Action{ActSet1, ActCopy, ActShift}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(150)
		v1, v2 := randVector(r, width), randVector(r, width)
		for _, act := range actions {
			// f(v1 | v2)
			u := v1.Clone()
			u.OrFrom(v2)
			left := NewBitVector(width)
			act.Apply(left, u)
			// f(v1) | f(v2)
			r1, r2 := NewBitVector(width), NewBitVector(width)
			act.Apply(r1, v1)
			act.Apply(r2, v2)
			r1.OrFrom(r2)
			if !left.Equal(r1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Shift corresponds to increment on sets of counters: bit i of shft(v) is
// bit i-1 of v, i.e. the set {c+1 : c ∈ S, c+1 ≤ n}.
func TestQuickShiftMatchesSetIncrement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(100)
		v := randVector(r, width)
		out := NewBitVector(width)
		out.ShiftFrom(v)
		for i := 1; i <= width; i++ {
			want := i > 1 && v.Get(i-1)
			if out.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAnyInRangeMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(200)
		v := randVector(r, width)
		lo := 1 + r.Intn(width)
		hi := lo + r.Intn(width-lo+1)
		want := false
		for i := lo; i <= hi; i++ {
			if v.Get(i) {
				want = true
				break
			}
		}
		return v.AnyInRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
