package nbva

// This file gives RunnerSnapshot a wire representation so a streaming scan
// can checkpoint on one process and resume on another (live session
// migration). The format is deliberately minimal and machine-relative:
// per-state vector widths are NOT on the wire — they are derived from the
// AH-NBVA the snapshot is decoded against — and the energy/occupancy
// counters are recomputed from the decoded frontier rather than trusted,
// so a corrupt or hostile byte stream can at worst fail decoding, never
// construct a runner state the machine itself could not reach.
//
// Layout (little-endian):
//
//	u8   started
//	u32  nactive
//	nactive × {
//	    u32 state index q              (frontier order preserved)
//	    [ceil(Width(q)/64) × u64]      (only when Width(q) > 0)
//	}
//
// Frontier order is preserved exactly because replay determinism depends on
// it: the active-list order seeds candidate discovery order on the next
// Step, so a resumed runner must iterate its frontier in the same order the
// checkpointed one would have.

import (
	"encoding/binary"
	"fmt"
)

// AppendWire appends the snapshot's wire encoding to dst and returns the
// extended slice. a must be the machine the snapshot was taken on (it
// supplies the per-state widths).
func (s *RunnerSnapshot) AppendWire(dst []byte, a *AHNBVA) ([]byte, error) {
	if s.started {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.active)))
	for i, q := range s.active {
		if q < 0 || q >= len(a.States) {
			return nil, fmt.Errorf("nbva: snapshot active state %d out of range [0,%d)", q, len(a.States))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q))
		w := a.States[q].Width
		if w == 0 {
			continue
		}
		if s.vecs[i].Width() != w {
			return nil, fmt.Errorf("nbva: snapshot vector width %d for state %d, machine has %d",
				s.vecs[i].Width(), q, w)
		}
		for _, word := range s.vecs[i].words {
			dst = binary.LittleEndian.AppendUint64(dst, word)
		}
	}
	return dst, nil
}

// DecodeRunnerSnapshotWire decodes one snapshot from the front of data
// against machine a, returning the snapshot and the unconsumed remainder.
// Decoding validates everything the machine lets it: state indices in
// range, no duplicate frontier entries, vector payloads exactly the
// machine's width with no bits above it, and no all-zero vector on a BV
// state (an active BV state with a zero vector is dead by construction and
// cannot appear in a real frontier). The occupancy counters are recomputed
// from the decoded frontier, mirroring Step's commit loop.
func DecodeRunnerSnapshotWire(data []byte, a *AHNBVA) (*RunnerSnapshot, []byte, error) {
	if len(data) < 5 {
		return nil, nil, fmt.Errorf("nbva: snapshot wire truncated: %d bytes", len(data))
	}
	if data[0] > 1 {
		return nil, nil, fmt.Errorf("nbva: snapshot started flag %d is not 0 or 1", data[0])
	}
	s := &RunnerSnapshot{started: data[0] == 1}
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	data = data[5:]
	if n > len(a.States) {
		return nil, nil, fmt.Errorf("nbva: snapshot frontier of %d states exceeds machine size %d", n, len(a.States))
	}
	s.active = make([]int, 0, n)
	s.vecs = make([]BitVector, n)
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, nil, fmt.Errorf("nbva: snapshot wire truncated in frontier entry %d", i)
		}
		q := int(binary.LittleEndian.Uint32(data[:4]))
		data = data[4:]
		if q >= len(a.States) {
			return nil, nil, fmt.Errorf("nbva: snapshot active state %d out of range [0,%d)", q, len(a.States))
		}
		if seen[q] {
			return nil, nil, fmt.Errorf("nbva: snapshot frontier repeats state %d", q)
		}
		seen[q] = true
		s.active = append(s.active, q)
		st := &a.States[q]
		s.lastCounters(st)
		if st.Width == 0 {
			continue
		}
		words := (st.Width + 63) / 64
		if len(data) < 8*words {
			return nil, nil, fmt.Errorf("nbva: snapshot wire truncated in vector of state %d", q)
		}
		v := NewBitVector(st.Width)
		zero := true
		for w := 0; w < words; w++ {
			v.words[w] = binary.LittleEndian.Uint64(data[8*w:])
			zero = zero && v.words[w] == 0
		}
		data = data[8*words:]
		if top := st.Width & 63; top != 0 && v.words[words-1]>>uint(top) != 0 {
			return nil, nil, fmt.Errorf("nbva: snapshot vector of state %d has bits above width %d", q, st.Width)
		}
		if zero {
			return nil, nil, fmt.Errorf("nbva: snapshot has all-zero vector on BV state %d", q)
		}
		s.vecs[i] = v
	}
	return s, data, nil
}

// lastCounters accumulates one frontier state into the recomputed occupancy
// counters (the decode-side mirror of Step's commit loop).
func (s *RunnerSnapshot) lastCounters(st *AHState) {
	s.nfaActive++
	if st.Width > 0 {
		s.bvActive++
		if st.Action == ActSet1 {
			s.set1++
		} else {
			s.storage++
		}
	}
}
