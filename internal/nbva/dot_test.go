package nbva

import (
	"strings"
	"testing"

	"bvap/internal/regex"
)

func TestDOTNBVA(t *testing.T) {
	a := MustBuild(regex.MustParse("ab{3}c"))
	out := a.DOT("nbva")
	for _, want := range []string{
		"digraph \"nbva\"", "rankdir=LR", "doublecircle", "shift",
		"set1", "r(3)", "style=dashed", "start0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("NBVA DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTAH(t *testing.T) {
	ah := MustTransform(MustBuild(regex.MustParse("a(.a){3}b")))
	out := ah.DOT("ah")
	for _, want := range []string{"STE2a\\n", "STE2b\\n", "/ shift", "/ set1", "doublecircle"} {
		if !strings.Contains(out, want) {
			t.Errorf("AH DOT missing %q:\n%s", want, out)
		}
	}
	// Every state appears as a node.
	for q := range ah.States {
		if !strings.Contains(out, nodeName(q)) {
			t.Errorf("missing node n%d", q)
		}
	}
}

func nodeName(q int) string { return "n" + string(rune('0'+q%10)) }

func TestDOTFinalReadAnnotation(t *testing.T) {
	// The exact-count final read r(3) must appear as a dotted acceptance
	// annotation.
	a := MustBuild(regex.MustParse("ab{3}"))
	out := a.DOT("g")
	if !strings.Contains(out, "accept0") || !strings.Contains(out, "style=dotted") {
		t.Fatalf("final read annotation missing:\n%s", out)
	}
}
