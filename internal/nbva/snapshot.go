package nbva

// This file adds the execution-state surface the fault-injection and
// resilience layer (internal/faults, internal/hwsim) needs on the AHRunner:
// checkpoint/rollback snapshots for windowed retry, and the narrow mutation
// hooks that model SRAM soft errors — flipping a bit of an active state's
// vector, silently deactivating an active state, or spuriously activating
// an idle one. None of these touch the Step hot path.

// RunnerSnapshot is an immutable checkpoint of an AHRunner's functional
// state: the active frontier, the active BV vectors, and the stream-start
// flag. It stays valid across later Steps and can be restored repeatedly.
type RunnerSnapshot struct {
	started bool
	active  []int
	vecs    []BitVector // parallel to active; zero-width for non-BV states

	bvActive, nfaActive, storage, set1 int
}

// Snapshot captures the runner's current configuration.
func (r *AHRunner) Snapshot() *RunnerSnapshot {
	s := &RunnerSnapshot{
		started:   r.started,
		active:    append([]int(nil), r.activeList...),
		vecs:      make([]BitVector, len(r.activeList)),
		bvActive:  r.lastBVActive,
		nfaActive: r.lastNFAActive,
		storage:   r.lastStorage,
		set1:      r.lastSet1,
	}
	for i, q := range r.activeList {
		if r.ah.States[q].Width > 0 {
			s.vecs[i] = r.vecs[q].Clone()
		}
	}
	return s
}

// Restore rewinds the runner to a snapshot taken on it. The snapshot stays
// valid and may be restored again.
func (r *AHRunner) Restore(s *RunnerSnapshot) {
	r.epoch += 2 // invalidate every active/candidate stamp
	r.started = s.started
	r.activeList = r.activeList[:0]
	r.activeList = append(r.activeList, s.active...)
	for i, q := range s.active {
		r.activeStamp[q] = r.epoch
		if s.vecs[i].Width() > 0 {
			r.vecs[q].CopyFrom(s.vecs[i])
		}
	}
	r.lastBVActive, r.lastNFAActive = s.bvActive, s.nfaActive
	r.lastStorage, r.lastSet1 = s.storage, s.set1
	r.lastReads, r.lastSwaps = 0, 0
}

// ActiveList returns the runner's active-state list in frontier order.
// Callers must not mutate it; it is only valid until the next Step.
func (r *AHRunner) ActiveList() []int { return r.activeList }

// FlipBit inverts bit (1-based) of active BV state q's vector — a modeled
// SRAM soft error. It reports whether the flip was applied (q must be an
// active BV state and bit within its width).
func (r *AHRunner) FlipBit(q, bit int) bool {
	if !r.Active(q) {
		return false
	}
	st := &r.ah.States[q]
	if st.Width == 0 || bit < 1 || bit > st.Width {
		return false
	}
	r.vecs[q].Flip(bit)
	return true
}

// Deactivate silently clears state q's active bit — a latch upset. The
// state's vector is left as-is (it is garbage once inactive, matching the
// hardware, where only the active bit gates participation). It reports
// whether q was active.
func (r *AHRunner) Deactivate(q int) bool {
	if !r.Active(q) {
		return false
	}
	for i, p := range r.activeList {
		if p == q {
			r.activeList = append(r.activeList[:i], r.activeList[i+1:]...)
			break
		}
	}
	r.activeStamp[q] = 0
	r.lastNFAActive--
	if st := &r.ah.States[q]; st.Width > 0 {
		r.lastBVActive--
		if st.Action == ActSet1 {
			r.lastSet1--
		} else {
			r.lastStorage--
		}
	}
	return true
}

// ForceActive spuriously sets state q's active bit — the inverse latch
// upset. A BV state receives the deterministic post-upset vector [1,0,…,0]
// (the set1 pattern a freshly armed BV holds). It reports whether the state
// was newly activated.
func (r *AHRunner) ForceActive(q int) bool {
	if q < 0 || q >= len(r.ah.States) || r.Active(q) {
		return false
	}
	r.activeStamp[q] = r.epoch
	r.activeList = append(r.activeList, q)
	r.lastNFAActive++
	if st := &r.ah.States[q]; st.Width > 0 {
		r.vecs[q].SetOnly1()
		r.lastBVActive++
		if st.Action == ActSet1 {
			r.lastSet1++
		} else {
			r.lastStorage++
		}
	}
	return true
}
