package nbva

import (
	"math/rand"
	"testing"

	"bvap/internal/regex"
)

func BenchmarkBitVectorShift(b *testing.B) {
	src := NewBitVector(64)
	src.Set(1)
	src.Set(33)
	dst := NewBitVector(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.ShiftFrom(src)
	}
}

func BenchmarkBitVectorOr(b *testing.B) {
	x := NewBitVector(64)
	y := NewBitVector(64)
	y.Set(17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OrFrom(y)
	}
}

func BenchmarkAnyInRange(b *testing.B) {
	v := NewBitVector(3072)
	v.Set(3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AnyInRange(1, 3072)
	}
}

func benchInput(n int) []byte {
	r := rand.New(rand.NewSource(5))
	out := make([]byte, n)
	alphabet := "abcx"
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}

func BenchmarkNaiveRunnerStep(b *testing.B) {
	a := MustBuild(regex.MustParse("ab{64}c|x(ab){12}"))
	r := NewRunner(a)
	input := benchInput(4096)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(input[i%len(input)])
	}
}

func BenchmarkAHRunnerStep(b *testing.B) {
	ah := MustTransform(MustBuild(regex.MustParse("ab{64}c|x(ab){12}")))
	r := NewAHRunner(ah)
	input := benchInput(4096)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(input[i%len(input)])
	}
}

func BenchmarkAHRunnerStepLargeMachine(b *testing.B) {
	// A .{3000}-style gap machine: ~47 chunk clusters.
	ah := MustTransform(MustBuild(regex.Rewrite(
		regex.MustParse("attack.{3000}end"),
		regex.Options{UnfoldThreshold: 8, BVSize: 64})))
	r := NewAHRunner(ah)
	input := benchInput(4096)
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(input[i%len(input)])
	}
}

func BenchmarkTransform(b *testing.B) {
	src := MustBuild(regex.Rewrite(regex.MustParse("ab{2,114}c(de){6}f"),
		regex.Options{UnfoldThreshold: 4, BVSize: 64}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(src); err != nil {
			b.Fatal(err)
		}
	}
}
