package nbva

import (
	"fmt"
	"strings"
)

// This file renders automata as Graphviz DOT, reproducing the diagram
// conventions of the paper's figures: double circles for reporting states,
// dashed edges for read-gated transitions, state labels of the form
// "class / action" for BV-STEs (Fig. 2(g)'s simplified AH diagrams), and an
// implicit start arrow into each initial state.

// DOT renders the NBVA (per-edge actions, Fig. 2(e) style).
func (a *NBVA) DOT(name string) string {
	var sb strings.Builder
	header(&sb, name)
	finals := map[int]Read{}
	for _, f := range a.Finals {
		finals[f.State] = f.Read
	}
	for q, st := range a.States {
		label := st.Class.String()
		if st.Width > 0 {
			label += fmt.Sprintf(" : %d", st.Width)
		}
		writeNode(&sb, q, label, isFinalState(finals, q))
	}
	for i, q := range a.Initial {
		fmt.Fprintf(&sb, "  start%d [shape=point];\n  start%d -> n%d;\n", i, i, q)
	}
	for _, e := range a.Edges {
		attrs := []string{}
		parts := []string{}
		if !e.Read.None {
			parts = append(parts, e.Read.String())
			attrs = append(attrs, "style=dashed")
		}
		if e.Action != ActNone {
			parts = append(parts, e.Action.String())
		}
		if len(parts) > 0 {
			attrs = append(attrs, fmt.Sprintf("label=%q", strings.Join(parts, " / ")))
		}
		writeEdge(&sb, e.From, e.To, attrs)
	}
	writeFinalReads(&sb, finals)
	sb.WriteString("}\n")
	return sb.String()
}

// DOT renders the AH-NBVA (state-held actions, Fig. 2(g) style).
func (a *AHNBVA) DOT(name string) string {
	var sb strings.Builder
	header(&sb, name)
	finals := map[int]Read{}
	for _, f := range a.Finals {
		finals[f] = a.States[f].Read
	}
	labels := ahLabels(a)
	for q, st := range a.States {
		label := st.Class.String()
		if st.Width > 0 {
			label += " / " + st.Action.String()
			if !st.Read.None {
				label += " · " + st.Read.String()
			}
			label += fmt.Sprintf(" : %d", st.Width)
		}
		label = labels[q] + "\x00" + label
		writeNode(&sb, q, label, isFinalState(finals, q))
	}
	for i, q := range a.Initial {
		fmt.Fprintf(&sb, "  start%d [shape=point];\n  start%d -> n%d;\n", i, i, q)
	}
	for _, e := range a.Edges {
		var attrs []string
		if e.Gated {
			attrs = append(attrs, "style=dashed")
		}
		writeEdge(&sb, e.From, e.To, attrs)
	}
	writeFinalReads(&sb, finals)
	sb.WriteString("}\n")
	return sb.String()
}

func header(sb *strings.Builder, name string) {
	fmt.Fprintf(sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n", name)
}

func isFinalState(finals map[int]Read, q int) bool {
	_, ok := finals[q]
	return ok
}

func writeNode(sb *strings.Builder, id int, label string, final bool) {
	shape := "circle"
	if final {
		shape = "doublecircle"
	}
	fmt.Fprintf(sb, "  n%d [label=\"%s\", shape=%s];\n", id, escapeDOT(label), shape)
}

// escapeDOT escapes a label for a double-quoted DOT string; the NUL byte is
// the internal marker for an intended Graphviz line break.
func escapeDOT(label string) string {
	label = strings.ReplaceAll(label, `\`, `\\`)
	label = strings.ReplaceAll(label, `"`, `\"`)
	label = strings.ReplaceAll(label, "\x00", `\n`)
	return label
}

func writeEdge(sb *strings.Builder, from, to int, attrs []string) {
	if len(attrs) == 0 {
		fmt.Fprintf(sb, "  n%d -> n%d;\n", from, to)
		return
	}
	fmt.Fprintf(sb, "  n%d -> n%d [%s];\n", from, to, strings.Join(attrs, ", "))
}

// writeFinalReads annotates reporting states whose acceptance is guarded by
// a read predicate, mirroring the paper's arrows out of final states.
func writeFinalReads(sb *strings.Builder, finals map[int]Read) {
	i := 0
	for q, r := range finals {
		if r.None {
			continue
		}
		fmt.Fprintf(sb, "  accept%d [shape=plaintext, label=%q];\n  n%d -> accept%d [style=dotted];\n",
			i, r.String(), q, i)
		i++
	}
}
