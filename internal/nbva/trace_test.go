package nbva

import (
	"strings"
	"testing"

	"bvap/internal/regex"
)

func TestTraceNaiveTable1(t *testing.T) {
	// Regenerate Table 1: the naïve BV design on a(Σa){3}b over
	// "abaaabab".
	a := MustBuild(regex.MustParse("a(.a){3}b"))
	out := TraceNaive(a, []byte("abaaabab"))
	t.Logf("\n%s", out)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 inputs
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "STE1") || !strings.Contains(lines[0], "bv2") {
		t.Fatalf("header = %q", lines[0])
	}
	// The report column must be 1 only on the final row.
	for i, line := range lines[1:] {
		endsWith1 := strings.HasSuffix(strings.TrimRight(line, " "), "1")
		if i == 7 && !endsWith1 {
			t.Fatalf("row %d should report: %q", i, line)
		}
		if i < 7 && endsWith1 {
			// Could be a vector ending in 1]; check the out column
			// specifically by splitting fields.
			fields := strings.Fields(line)
			if fields[len(fields)-1] == "1" {
				t.Fatalf("row %d reported early: %q", i, line)
			}
		}
	}
	// The Σ state's vector reaches [1,1,1] on the 6th input, as in
	// Table 1's [1,1,1] column entry.
	if !strings.Contains(lines[6], "[1,1,1]") {
		t.Fatalf("row 6 missing [1,1,1]: %q", lines[6])
	}
}

func TestTraceAHTable2(t *testing.T) {
	// Regenerate Table 2: the AH design splits the Σ state into STE2a and
	// STE2b.
	ah := MustTransform(MustBuild(regex.MustParse("a(.a){3}b")))
	out := TraceAH(ah, []byte("abaaabab"))
	t.Logf("\n%s", out)
	if !strings.Contains(out, "STE2a") || !strings.Contains(out, "STE2b") {
		t.Fatalf("split labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d", len(lines))
	}
	fields := strings.Fields(lines[8])
	if fields[len(fields)-1] != "1" {
		t.Fatalf("final row must report a match: %q", lines[8])
	}
}

func TestTraceLabelsWithoutSplit(t *testing.T) {
	ah := MustTransform(MustBuild(regex.MustParse("ab")))
	labels := ahLabels(ah)
	for _, l := range labels {
		if strings.ContainsAny(l, "abc") && strings.HasPrefix(l, "STE") && len(l) > 4 {
			t.Fatalf("unsplit state got a copy suffix: %v", labels)
		}
	}
}

func TestPrintable(t *testing.T) {
	if printable('a') != "a" || printable(0x00) != "00" || printable(0xff) != "ff" {
		t.Fatal("printable rendering wrong")
	}
}
