package nbva

import (
	"fmt"

	"bvap/internal/charclass"
	"bvap/internal/regex"
)

// Action is a linear bit-vector operation applied when a transition delivers
// a vector to its destination (§4's operation set, minus the reads, which
// are modeled separately because they gate activation rather than transform
// vectors).
type Action uint8

const (
	// ActNone: the destination has no bit vector; only activity moves.
	ActNone Action = iota
	// ActSet1: v · [1, 0, …, 0] — enter a counting scope with count 1.
	ActSet1
	// ActCopy: v := v — move within an iteration of the scope.
	ActCopy
	// ActShift: shft(v) — the scope's back edge; counts one more
	// completed iteration and drops counts past the bound.
	ActShift
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "-"
	case ActSet1:
		return "set1"
	case ActCopy:
		return "copy"
	case ActShift:
		return "shift"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Apply computes dst = a(src) for vector-valued actions. dst and src must
// have equal widths for copy/shift; set1 ignores src entirely (src may be
// the zero BitVector).
func (a Action) Apply(dst, src BitVector) {
	switch a {
	case ActSet1:
		dst.SetOnly1()
	case ActCopy:
		dst.CopyFrom(src)
	case ActShift:
		dst.ShiftFrom(src)
	default:
		panic(fmt.Sprintf("nbva: Apply on %v", a))
	}
}

// Read is a readout predicate over a source state's bit vector: the paper's
// r(n) (Lo == Hi) and r(m, n) (any of v[m..n]). The zero value (None true)
// is the trivial always-pass read used on edges that carry no guard.
type Read struct {
	None   bool
	Lo, Hi int
}

// NoRead is the trivial read that always passes.
func NoRead() Read { return Read{None: true} }

// ReadBit is the exact read r(n).
func ReadBit(n int) Read { return Read{Lo: n, Hi: n} }

// ReadRange is the range read r(lo, hi).
func ReadRange(lo, hi int) Read { return Read{Lo: lo, Hi: hi} }

// Eval evaluates the read on vector v. The trivial read passes on any state,
// including ones without a vector (callers pass a zero-width placeholder by
// convention of not calling Eval; Eval requires a real vector otherwise).
func (r Read) Eval(v BitVector) bool {
	if r.None {
		return true
	}
	return v.AnyInRange(r.Lo, r.Hi)
}

func (r Read) String() string {
	switch {
	case r.None:
		return "no-read"
	case r.Lo == r.Hi:
		return fmt.Sprintf("r(%d)", r.Lo)
	default:
		return fmt.Sprintf("r(%d,%d)", r.Lo, r.Hi)
	}
}

// State is an NBVA control state. Width 0 means the state carries no bit
// vector (a plain NFA state). As in the Glushkov construction, the character
// class lives on the state (homogeneity of classes); actions, in the plain
// NBVA, still live on edges — making them state properties is exactly the AH
// transformation.
type State struct {
	Class charclass.Class
	Width int
}

// Edge is a transition (p, σ, q, ϑ): σ is the destination's class
// (homogeneous), Read gates the transition on the source vector, and Action
// transforms the source vector into a contribution to the destination
// vector.
type Edge struct {
	From   int
	To     int
	Read   Read
	Action Action
}

// Final marks an accepting state; Read is the finalization function F(q)
// (e.g. v[n] = 1), trivial for plain states.
type Final struct {
	State int
	Read  Read
}

// NBVA is a nondeterministic bit vector automaton with streaming
// partial-match semantics: initial states are available at every input
// position.
type NBVA struct {
	States       []State
	Initial      []int
	Edges        []Edge
	Finals       []Final
	AcceptsEmpty bool
	// Anchored restricts matches to begin at the first input symbol.
	Anchored bool

	byDest [][]int
}

// Size returns the number of control states.
func (a *NBVA) Size() int { return len(a.States) }

func (a *NBVA) finalize() {
	a.byDest = make([][]int, len(a.States))
	for i, e := range a.Edges {
		a.byDest[e.To] = append(a.byDest[e.To], i)
	}
}

// Build constructs an NBVA from a regex using the counting Glushkov
// construction (§3–§4): positions of a bounded repetition's body become
// bit-vector states of width equal to the upper bound; entry edges carry
// set1, intra-iteration edges copy, back edges shift, and exits are gated by
// the range read of completed iterations.
//
// The regex is normalized first. Nested bounded repetitions are rejected —
// the compiler legalizes them by unfolding before this construction.
func Build(n regex.Node) (*NBVA, error) {
	n = regex.Normalize(n)
	b := &builder{}
	info, err := b.build(n, -1)
	if err != nil {
		return nil, err
	}
	a := &NBVA{
		States:       b.states,
		Initial:      info.first,
		AcceptsEmpty: info.nullable,
	}
	for _, e := range b.edges {
		a.Edges = append(a.Edges, b.edgeOf(e))
	}
	for _, p := range info.last {
		a.Finals = append(a.Finals, Final{State: p, Read: b.exitRead(p)})
	}
	a.finalize()
	return a, nil
}

// MustBuild is Build for known-good inputs; it panics on error.
func MustBuild(n regex.Node) *NBVA {
	a, err := Build(n)
	if err != nil {
		panic(err)
	}
	return a
}

type scope struct{ min, max int }

type rawEdge struct {
	from, to int
	back     bool
}

type buildInfo struct {
	nullable bool
	first    []int
	last     []int
}

type builder struct {
	states  []State
	scopes  []scope
	scopeOf []int
	edges   []rawEdge
}

func (b *builder) newPos(c charclass.Class, scopeIdx int) int {
	b.states = append(b.states, State{Class: c})
	b.scopeOf = append(b.scopeOf, scopeIdx)
	return len(b.states) - 1
}

func (b *builder) link(from, to []int, back bool) {
	for _, p := range from {
		for _, q := range to {
			b.edges = append(b.edges, rawEdge{from: p, to: q, back: back})
		}
	}
}

// exitRead is the read gating any transition (or acceptance) leaving state
// p: "some count in [max(1,min), max] is live".
func (b *builder) exitRead(p int) Read {
	si := b.scopeOf[p]
	if si < 0 {
		return NoRead()
	}
	s := b.scopes[si]
	lo := s.min
	if lo < 1 {
		lo = 1
	}
	if lo == s.max {
		return ReadBit(s.max)
	}
	return ReadRange(lo, s.max)
}

func (b *builder) edgeOf(e rawEdge) Edge {
	sp, sq := b.scopeOf[e.from], b.scopeOf[e.to]
	out := Edge{From: e.from, To: e.to}
	switch {
	case sp == sq && sp >= 0 && e.back:
		out.Read = NoRead() // shift drops overflow; no guard needed
		out.Action = ActShift
	case sp == sq && sp >= 0:
		out.Read = NoRead()
		out.Action = ActCopy
	case sq >= 0:
		out.Read = b.exitRead(e.from)
		out.Action = ActSet1
	default:
		out.Read = b.exitRead(e.from)
		out.Action = ActNone
	}
	return out
}

func (b *builder) build(n regex.Node, scopeIdx int) (buildInfo, error) {
	switch n := n.(type) {
	case regex.Empty:
		return buildInfo{nullable: true}, nil
	case regex.Lit:
		p := b.newPos(n.Class, scopeIdx)
		return buildInfo{first: []int{p}, last: []int{p}}, nil
	case *regex.Concat:
		cur := buildInfo{nullable: true}
		for _, f := range n.Factors {
			fi, err := b.build(f, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			b.link(cur.last, fi.first, false)
			next := buildInfo{nullable: cur.nullable && fi.nullable}
			// Positions of cur and fi are disjoint: plain appends.
			next.first = append(next.first, cur.first...)
			if cur.nullable {
				next.first = append(next.first, fi.first...)
			}
			next.last = append(next.last, fi.last...)
			if fi.nullable {
				next.last = append(next.last, cur.last...)
			}
			cur = next
		}
		return cur, nil
	case *regex.Alt:
		var out buildInfo
		for _, alt := range n.Alternatives {
			ai, err := b.build(alt, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out, nil
	case *regex.Star:
		si, err := b.build(n.Sub, scopeIdx)
		if err != nil {
			return buildInfo{}, err
		}
		b.link(si.last, si.first, false)
		return buildInfo{nullable: true, first: si.first, last: si.last}, nil
	case *regex.Repeat:
		if n.Min == 0 && n.Max == 1 {
			ri, err := b.build(n.Sub, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			ri.nullable = true
			return ri, nil
		}
		if n.Max == regex.Unbounded {
			return buildInfo{}, fmt.Errorf("nbva: unbounded repetition %s survived normalization", n)
		}
		if scopeIdx >= 0 || hasCounting(n.Sub) {
			return buildInfo{}, fmt.Errorf("nbva: nested bounded repetition %s must be legalized by unfolding", n)
		}
		if regex.Nullable(n.Sub) {
			return buildInfo{}, fmt.Errorf("nbva: counting over nullable body %s survived normalization", n)
		}
		b.scopes = append(b.scopes, scope{min: n.Min, max: n.Max})
		idx := len(b.scopes) - 1
		ri, err := b.build(n.Sub, idx)
		if err != nil {
			return buildInfo{}, err
		}
		b.link(ri.last, ri.first, true)
		for i := range b.states {
			if b.scopeOf[i] == idx {
				b.states[i].Width = n.Max
			}
		}
		ri.nullable = n.Min == 0
		return ri, nil
	default:
		return buildInfo{}, fmt.Errorf("nbva: unknown node type %T", n)
	}
}

func hasCounting(n regex.Node) bool {
	found := false
	regex.Walk(n, func(m regex.Node) {
		if r, ok := m.(*regex.Repeat); ok && !(r.Min == 0 && r.Max == 1) {
			found = true
		}
	})
	return found
}

func appendUnique(dst []int, src []int) []int {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

// Runner simulates a plain (per-edge action) NBVA — the "naïve solution with
// bit vectors" of §3, where each transition applies its own action before
// the per-destination OR aggregation.
type Runner struct {
	nbva          *NBVA
	started       bool
	active        []bool
	vecs          []BitVector // current vectors (BV states only)
	nextActive    []bool
	nextVecs      []BitVector
	scratch       []BitVector // per-state scratch for action application
	lastBVActive  int
	lastNFAActive int
}

// NewRunner returns a Runner in the start-of-stream configuration.
func NewRunner(a *NBVA) *Runner {
	r := &Runner{
		nbva:       a,
		active:     make([]bool, a.Size()),
		nextActive: make([]bool, a.Size()),
		vecs:       make([]BitVector, a.Size()),
		nextVecs:   make([]BitVector, a.Size()),
		scratch:    make([]BitVector, a.Size()),
	}
	for q, st := range a.States {
		if st.Width > 0 {
			r.vecs[q] = NewBitVector(st.Width)
			r.nextVecs[q] = NewBitVector(st.Width)
			r.scratch[q] = NewBitVector(st.Width)
		}
	}
	return r
}

// Reset returns the runner to the start-of-stream configuration.
func (r *Runner) Reset() {
	r.started = false
	for q := range r.active {
		r.active[q] = false
		if r.nbva.States[q].Width > 0 {
			r.vecs[q].Clear()
		}
	}
}

// Active reports whether state q is active in the current configuration.
func (r *Runner) Active(q int) bool { return r.active[q] }

// Vector returns state q's current bit vector (zero BitVector for plain
// states). The returned vector aliases internal storage; callers must not
// mutate it.
func (r *Runner) Vector(q int) BitVector { return r.vecs[q] }

// ActiveBVStates returns how many bit-vector states were active after the
// most recent step; the cycle simulator uses this for the event-driven BVM
// activation and energy accounting.
func (r *Runner) ActiveBVStates() int { return r.lastBVActive }

// ActiveStates returns the total number of active states after the most
// recent step.
func (r *Runner) ActiveStates() int { return r.lastNFAActive }

// Step consumes one input symbol and reports whether a match ends at it.
func (r *Runner) Step(b byte) bool {
	a := r.nbva
	for q := range a.States {
		r.nextActive[q] = false
		if a.States[q].Width > 0 {
			r.nextVecs[q].Clear()
		}
	}
	for q := range a.States {
		st := &a.States[q]
		if !st.Class.Contains(b) {
			continue
		}
		for _, ei := range a.byDest[q] {
			e := a.Edges[ei]
			if !r.active[e.From] {
				continue
			}
			// Evaluate the read on the source vector.
			if !e.Read.None && !e.Read.Eval(r.vecs[e.From]) {
				continue
			}
			switch e.Action {
			case ActNone:
				r.nextActive[q] = true
			case ActSet1:
				r.nextActive[q] = true
				r.scratch[q].SetOnly1()
				r.nextVecs[q].OrFrom(r.scratch[q])
			case ActCopy:
				r.nextActive[q] = true
				r.nextVecs[q].OrFrom(r.vecs[e.From])
			case ActShift:
				r.nextActive[q] = true
				r.scratch[q].ShiftFrom(r.vecs[e.From])
				r.nextVecs[q].OrFrom(r.scratch[q])
			}
		}
	}
	// Initial availability on every cycle (partial matching), or on the
	// first cycle only for anchored machines.
	if !a.Anchored || !r.started {
		for _, q := range a.Initial {
			st := &a.States[q]
			if !st.Class.Contains(b) {
				continue
			}
			r.nextActive[q] = true
			if st.Width > 0 {
				r.scratch[q].SetOnly1()
				r.nextVecs[q].OrFrom(r.scratch[q])
			}
		}
	}
	r.started = true
	// A BV state with a zero vector is dead.
	r.lastBVActive, r.lastNFAActive = 0, 0
	for q := range a.States {
		if a.States[q].Width > 0 {
			if r.nextVecs[q].IsZero() {
				r.nextActive[q] = false
			} else if r.nextActive[q] {
				r.lastBVActive++
			}
		}
		if r.nextActive[q] {
			r.lastNFAActive++
		}
	}
	r.active, r.nextActive = r.nextActive, r.active
	r.vecs, r.nextVecs = r.nextVecs, r.vecs
	// Output phase.
	for _, f := range a.Finals {
		if !r.active[f.State] {
			continue
		}
		if f.Read.None || f.Read.Eval(r.vecs[f.State]) {
			return true
		}
	}
	return false
}

// MatchEnds runs the NBVA over input and returns every index where a match
// ends.
func (a *NBVA) MatchEnds(input []byte) []int {
	r := NewRunner(a)
	var ends []int
	for i, b := range input {
		if r.Step(b) {
			ends = append(ends, i)
		}
	}
	return ends
}
