package encoding

import (
	"testing"

	"bvap/internal/charclass"
)

func BenchmarkEncodeSingleton(b *testing.B) {
	c := charclass.Single('a')
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(c)
	}
}

func BenchmarkEncodeComplexClass(b *testing.B) {
	c := charclass.Word().Union(charclass.Range(0x80, 0x9b))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(c)
	}
}
