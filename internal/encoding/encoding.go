// Package encoding implements the symbol-encoding schema of the compiler's
// step 2 (§7): "The compiler analyzes input symbols that occur in regexes
// and generates an encoding schema for every input symbol. We use a similar
// encoding algorithm as presented in [CAMA]."
//
// CAMA stores STE predicates in a CAM searched by an *encoded* symbol
// rather than by a 256-bit one-hot row: the 8-bit input is split into two
// 4-bit halves, each decoded to a 16-bit one-hot, giving a 32-bit search
// key. An STE predicate is CAM-compatible when it factors into a product
// σ = H × L of a set of high nibbles and a set of low nibbles, in which
// case it is stored as a 32-bit ternary pattern (16 high-nibble bits and 16
// low-nibble bits, with "don't care" available per half). Predicates that
// do not factor are covered by a union of factorable patterns, each
// occupying one CAM entry — this multiplicity is CAMA's (and therefore
// BVAP's) memory-cost model for complex character classes.
package encoding

import (
	"fmt"
	"math/bits"

	"bvap/internal/charclass"
)

// KeyBits is the encoded search-key width: two 16-bit one-hot halves.
const KeyBits = 32

// Pattern is one CAM entry: a ternary match over the 32-bit encoded key.
// High and Low are bitmasks of accepted nibble values; a symbol b matches
// when High has bit b>>4 set and Low has bit b&15 set.
type Pattern struct {
	High uint16
	Low  uint16
}

// Matches reports whether symbol b satisfies the pattern.
func (p Pattern) Matches(b byte) bool {
	return p.High&(1<<(b>>4)) != 0 && p.Low&(1<<(b&0x0f)) != 0
}

// Class returns the set of symbols the pattern accepts (the product set
// High × Low).
func (p Pattern) Class() charclass.Class {
	c := charclass.Empty()
	for hi := 0; hi < 16; hi++ {
		if p.High&(1<<hi) == 0 {
			continue
		}
		for lo := 0; lo < 16; lo++ {
			if p.Low&(1<<lo) == 0 {
				continue
			}
			c = c.Union(charclass.Single(byte(hi<<4 | lo)))
		}
	}
	return c
}

func (p Pattern) String() string {
	return fmt.Sprintf("hi=%016b lo=%016b", p.High, p.Low)
}

// EncodeSymbol produces the 32-bit one-hot search key for an input symbol:
// the high half in bits 16..31, the low half in bits 0..15.
func EncodeSymbol(b byte) uint32 {
	return 1<<uint(16+(b>>4)) | 1<<uint(b&0x0f)
}

// Encode decomposes a character class into CAM patterns whose union is
// exactly the class. The decomposition is the row-factoring CAMA uses:
// group the class's symbols by high nibble, then merge high nibbles that
// share an identical low-nibble set into a single product pattern.
//
// Factorable classes (singletons, ranges aligned to nibbles, Σ, many
// real-world classes) need one pattern; the worst case needs one pattern
// per distinct low-set (≤ 16).
func Encode(c charclass.Class) []Pattern {
	if c.IsEmpty() {
		return nil
	}
	// lowSet[hi] is the bitmask of low nibbles present for high nibble hi.
	var lowSet [16]uint16
	for _, b := range c.Symbols() {
		lowSet[b>>4] |= 1 << (b & 0x0f)
	}
	// Merge high nibbles with identical low sets.
	byLow := map[uint16]uint16{} // low mask → high mask
	order := []uint16{}
	for hi := 0; hi < 16; hi++ {
		if lowSet[hi] == 0 {
			continue
		}
		if _, seen := byLow[lowSet[hi]]; !seen {
			order = append(order, lowSet[hi])
		}
		byLow[lowSet[hi]] |= 1 << hi
	}
	out := make([]Pattern, 0, len(order))
	for _, low := range order {
		out = append(out, Pattern{High: byLow[low], Low: low})
	}
	return out
}

// Cost returns the number of CAM entries a class occupies under the
// encoding — the per-STE memory multiplier in the CAMA/BVAP cost model.
func Cost(c charclass.Class) int { return len(Encode(c)) }

// Schema is the encoding plan for a compiled pattern set: per-class CAM
// entry counts and the aggregate statistics the mapper uses.
type Schema struct {
	// Entries is the total CAM entries across all analyzed classes.
	Entries int
	// Classes is the number of distinct classes analyzed.
	Classes int
	// Worst is the largest per-class entry count encountered.
	Worst int
}

// Analyze builds a Schema over a set of classes, deduplicating identical
// classes (they share CAM rows across STEs in CAMA's design).
func Analyze(classes []charclass.Class) Schema {
	var s Schema
	seen := map[uint64][]charclass.Class{}
	for _, c := range classes {
		h := c.Hash()
		dup := false
		for _, prev := range seen[h] {
			if prev.Equal(c) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], c)
		s.Classes++
		n := Cost(c)
		s.Entries += n
		if n > s.Worst {
			s.Worst = n
		}
	}
	return s
}

// Verify checks that the union of the patterns reproduces the class
// exactly; it returns an error describing the first mismatching symbol.
// The compiler runs this as a self-check when emitting configurations.
func Verify(c charclass.Class, patterns []Pattern) error {
	got := charclass.Empty()
	for _, p := range patterns {
		got = got.Union(p.Class())
	}
	if !got.Equal(c) {
		for b := 0; b < charclass.AlphabetSize; b++ {
			if got.Contains(byte(b)) != c.Contains(byte(b)) {
				return fmt.Errorf("encoding: symbol %#02x mismatch (class %v, encoded %v)",
					b, c.Contains(byte(b)), got.Contains(byte(b)))
			}
		}
	}
	return nil
}

// PopcountKey counts the set bits of an encoded key; always 2 by
// construction (one per half), kept for fuzzing the invariant.
func PopcountKey(k uint32) int { return bits.OnesCount32(k) }
