package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bvap/internal/charclass"
)

func TestEncodeSingleton(t *testing.T) {
	for _, b := range []byte{0, 15, 16, 0x41, 0xff} {
		ps := Encode(charclass.Single(b))
		if len(ps) != 1 {
			t.Fatalf("singleton %#02x: %d patterns", b, len(ps))
		}
		if !ps[0].Matches(b) {
			t.Fatalf("pattern does not match its symbol")
		}
		if ps[0].Class().Count() != 1 {
			t.Fatalf("singleton pattern covers %d symbols", ps[0].Class().Count())
		}
	}
}

func TestEncodeSigma(t *testing.T) {
	ps := Encode(charclass.Any())
	if len(ps) != 1 {
		t.Fatalf("Σ needs %d patterns, want 1 (all-don't-care)", len(ps))
	}
	if ps[0].High != 0xffff || ps[0].Low != 0xffff {
		t.Fatalf("Σ pattern = %v", ps[0])
	}
}

func TestEncodeAlignedRange(t *testing.T) {
	// 0x40..0x4f is a single high nibble with all lows: one pattern.
	ps := Encode(charclass.Range(0x40, 0x4f))
	if len(ps) != 1 {
		t.Fatalf("aligned range: %d patterns", len(ps))
	}
	// 0x40..0x5f spans two high nibbles with identical low sets: still
	// one pattern (high-nibble merging).
	ps = Encode(charclass.Range(0x40, 0x5f))
	if len(ps) != 1 {
		t.Fatalf("two-nibble range: %d patterns", len(ps))
	}
	// A misaligned range needs more.
	ps = Encode(charclass.Range(0x3a, 0x45))
	if len(ps) != 2 {
		t.Fatalf("misaligned range: %d patterns", len(ps))
	}
}

func TestEncodeEmpty(t *testing.T) {
	if ps := Encode(charclass.Empty()); ps != nil {
		t.Fatalf("empty class: %v", ps)
	}
}

func TestWorstCaseBounded(t *testing.T) {
	// The staircase class {0x00, 0x11, 0x22, …} has 16 distinct low
	// sets — the worst case — and must still verify.
	c := charclass.Empty()
	for i := 0; i < 16; i++ {
		c = c.Union(charclass.Single(byte(i<<4 | i)))
	}
	ps := Encode(c)
	if len(ps) != 16 {
		t.Fatalf("staircase: %d patterns, want 16", len(ps))
	}
	if err := Verify(c, ps); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := charclass.Empty()
		n := 1 + r.Intn(80)
		for i := 0; i < n; i++ {
			c = c.Union(charclass.Single(byte(r.Intn(256))))
		}
		ps := Encode(c)
		if err := Verify(c, ps); err != nil {
			return false
		}
		// Patterns must be disjoint contributions... not required;
		// but every symbol of the class must match ≥1 pattern and no
		// outside symbol any.
		for b := 0; b < 256; b++ {
			m := false
			for _, p := range ps {
				if p.Matches(byte(b)) {
					m = true
					break
				}
			}
			if m != c.Contains(byte(b)) {
				return false
			}
		}
		return len(ps) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSymbolOneHot(t *testing.T) {
	for b := 0; b < 256; b++ {
		k := EncodeSymbol(byte(b))
		if PopcountKey(k) != 2 {
			t.Fatalf("key of %#02x has %d bits set", b, PopcountKey(k))
		}
		// The key must match exactly the patterns that contain b.
		p := Encode(charclass.Single(byte(b)))[0]
		if !p.Matches(byte(b)) {
			t.Fatal("key does not select its own pattern")
		}
	}
}

func TestAnalyzeDedup(t *testing.T) {
	classes := []charclass.Class{
		charclass.Single('a'),
		charclass.Single('a'), // duplicate
		charclass.Digit(),
		charclass.Any(),
	}
	s := Analyze(classes)
	if s.Classes != 3 {
		t.Fatalf("classes = %d, want 3 (dedup)", s.Classes)
	}
	if s.Entries < 3 || s.Worst < 1 {
		t.Fatalf("schema = %+v", s)
	}
}

func TestVerifyCatchesBadEncoding(t *testing.T) {
	c := charclass.Single('a')
	bad := []Pattern{{High: 0xffff, Low: 0xffff}}
	if err := Verify(c, bad); err == nil {
		t.Fatal("Verify accepted an over-covering encoding")
	}
}
