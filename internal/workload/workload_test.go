package workload

import (
	"math"
	"math/rand"
	"testing"

	"bvap/internal/regex"
	"bvap/internal/swmatch"
)

func TestAlphaStreamRatio(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.10, 0.20, 0.50} {
		s := AlphaStream(42, 100000, alpha, 'a', 'b')
		count := 0
		for _, b := range s {
			if b == 'a' {
				count++
			}
		}
		got := float64(count) / float64(len(s))
		if math.Abs(got-alpha) > 0.01 {
			t.Errorf("alpha %.2f: measured %.3f", alpha, got)
		}
	}
}

func TestAlphaStreamDeterministic(t *testing.T) {
	a := AlphaStream(7, 1000, 0.1, 'x', 'y')
	b := AlphaStream(7, 1000, 0.1, 'x', 'y')
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := AlphaStream(8, 1000, 0.1, 'x', 'y')
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWitnessIsInLanguage(t *testing.T) {
	patterns := []string{
		"abc",
		"a|b",
		"ab{3}c",
		"a(bc){2,4}d",
		`\d{5}-\d{4}`,
		"x[a-f]{2}y",
		"a+b?c*d",
	}
	r := rand.New(rand.NewSource(11))
	for _, pat := range patterns {
		ast := regex.MustParse(pat)
		m := swmatch.MustNew(pat)
		for trial := 0; trial < 20; trial++ {
			w := Witness(ast, r)
			ends := m.MatchEnds(w)
			okAtEnd := false
			for _, e := range ends {
				if e == len(w)-1 {
					okAtEnd = true
				}
			}
			if len(w) == 0 {
				if !m.MatchesEmpty() {
					t.Fatalf("%q: empty witness for non-nullable pattern", pat)
				}
				continue
			}
			if !okAtEnd {
				t.Fatalf("%q: witness %q does not match at its end", pat, w)
			}
		}
	}
}

func TestCorpusPlantsMatches(t *testing.T) {
	patterns := []string{"needle", "pin{3}"}
	corpus := Corpus(3, 20000, "abcdefgh", patterns, 0.05)
	if len(corpus) != 20000 {
		t.Fatalf("length = %d", len(corpus))
	}
	total := 0
	for _, pat := range patterns {
		total += swmatch.MustNew(pat).Count(corpus)
	}
	if total == 0 {
		t.Fatal("no planted matches found")
	}
	// Without planting, matches of "needle" over {a..h} are impossible.
	plain := Corpus(3, 20000, "abcdefgh", nil, 0)
	if swmatch.MustNew("needle").Count(plain) != 0 {
		t.Fatal("unplanted corpus contains the needle")
	}
}

func TestActivationRatio(t *testing.T) {
	input := []byte("aXbaXcaX")
	got := ActivationRatio(input, [][]byte{[]byte("aX")})
	want := 3.0 / 8
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ratio = %g, want %g", got, want)
	}
	if ActivationRatio(nil, nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestTextAlphabet(t *testing.T) {
	s := Text(1, 5000, "xyz")
	for _, b := range s {
		if b != 'x' && b != 'y' && b != 'z' {
			t.Fatalf("symbol %q outside alphabet", b)
		}
	}
}
