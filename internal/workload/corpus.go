package workload

// Real-corpus generators for the rebar-style competitive suite. The
// benchmark class the paper targets — bounded repetitions like
// [A-Za-z]{8,13} — behaves very differently on natural-language text,
// source code and machine logs than on the α-controlled micro-benchmark
// streams above: word-length distributions, indentation runs and fixed-width
// fields decide how often a counter arms and how long it survives. These
// generators produce deterministic, seeded streams with those shapes, so a
// benchmark case can pin an exact expected match count against them.

import (
	"fmt"
	"math/rand"
)

// zipfVocabulary builds nWords deterministic pseudo-words, rank 0 being the
// most frequent. Word lengths follow the short-head/long-tail shape of
// English: the frequent ranks are short function-word-like tokens, the tail
// grows toward content-word lengths.
func zipfVocabulary(r *rand.Rand, nWords int) []string {
	const letters = "etaoinshrdlcumwfgypbvkjxqz"
	vocab := make([]string, nWords)
	for i := range vocab {
		// Short words at the head of the distribution, longer in the tail.
		minLen := 2 + i*6/nWords
		wordLen := minLen + r.Intn(6)
		w := make([]byte, wordLen)
		for j := range w {
			// Skew letter choice toward the frequent end of the alphabet.
			w[j] = letters[r.Intn(len(letters))/2+r.Intn(len(letters))/2]
		}
		vocab[i] = string(w)
	}
	return vocab
}

// NaturalText generates n bytes of natural-language-like ASCII text: words
// drawn from a vocabulary of vocab pseudo-words with a Zipfian rank
// distribution (s ≈ 1.1, matching English token frequency), sentence
// capitalization, comma/period punctuation and line breaks every ~70
// columns. vocab ≤ 0 selects the default 4096-word vocabulary. The output
// is deterministic in (seed, n, vocab).
func NaturalText(seed int64, n, vocab int) []byte {
	if vocab <= 0 {
		vocab = 4096
	}
	r := rand.New(rand.NewSource(seed))
	words := zipfVocabulary(r, vocab)
	z := rand.NewZipf(r, 1.1, 1, uint64(vocab-1))

	out := make([]byte, 0, n+16)
	col := 0
	sentenceLen := 0
	capitalize := true
	for len(out) < n {
		w := words[z.Uint64()]
		if capitalize && w[0] >= 'a' && w[0] <= 'z' {
			w = string(w[0]-'a'+'A') + w[1:]
			capitalize = false
		}
		out = append(out, w...)
		col += len(w)
		sentenceLen++
		switch {
		case sentenceLen >= 8+r.Intn(10):
			out = append(out, '.')
			sentenceLen = 0
			capitalize = true
		case r.Intn(12) == 0:
			out = append(out, ',')
		}
		if col >= 70 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
			col++
		}
	}
	return out[:n]
}

// SourceCode generates n bytes of source-code-like ASCII: indented lines
// mixing identifiers, calls, numeric and hex literals, operators, string
// literals and occasional comment lines. Indentation runs and long
// identifiers are what drive bounded-repeat counters on code corpora. The
// output is deterministic in (seed, n).
func SourceCode(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	idents := make([]string, 96)
	for i := range idents {
		idents[i] = codeIdent(r)
	}
	out := make([]byte, 0, n+64)
	depth := 0
	for len(out) < n {
		for i := 0; i < depth; i++ {
			out = append(out, '\t')
		}
		switch r.Intn(10) {
		case 0: // comment line
			out = append(out, "// "...)
			for k := 2 + r.Intn(5); k > 0; k-- {
				out = append(out, idents[r.Intn(len(idents))]...)
				out = append(out, ' ')
			}
		case 1: // block open
			out = append(out, "func "...)
			out = append(out, idents[r.Intn(len(idents))]...)
			out = append(out, "() {"...)
			if depth < 3 {
				depth++
			}
		case 2: // block close
			out = append(out, '}')
			if depth > 0 {
				depth--
			}
		case 3: // string literal assignment
			out = append(out, idents[r.Intn(len(idents))]...)
			out = append(out, ` := "`...)
			for k := 3 + r.Intn(12); k > 0; k-- {
				out = append(out, byte('a'+r.Intn(26)))
			}
			out = append(out, '"')
		case 4: // hex constant
			out = append(out, idents[r.Intn(len(idents))]...)
			out = append(out, " = 0x"...)
			for k := 4 + r.Intn(8); k > 0; k-- {
				out = append(out, "0123456789abcdef"[r.Intn(16)])
			}
		default: // call with arguments
			out = append(out, idents[r.Intn(len(idents))]...)
			out = append(out, '.')
			out = append(out, idents[r.Intn(len(idents))]...)
			out = append(out, '(')
			for k := r.Intn(3); k > 0; k-- {
				out = append(out, idents[r.Intn(len(idents))]...)
				out = append(out, ", "...)
			}
			out = append(out, fmt.Sprintf("%d)", r.Intn(1000))...)
		}
		out = append(out, '\n')
	}
	return out[:n]
}

// codeIdent draws one camelCase-ish identifier.
func codeIdent(r *rand.Rand) string {
	const syllables = "er in re on at or an en ar st te le se ne me de co ma"
	parts := 1 + r.Intn(3)
	w := make([]byte, 0, parts*4)
	for i := 0; i < parts; i++ {
		s := 3 * r.Intn(18)
		syl := syllables[s : s+2]
		if i > 0 {
			w = append(w, syl[0]-'a'+'A')
			w = append(w, syl[1:]...)
		} else {
			w = append(w, syl...)
		}
	}
	return string(w)
}

// LogLines generates n bytes of machine-log-like ASCII: fixed-width
// timestamp fields, a severity, key=value pairs with hex request ids,
// numeric status/latency fields and a short quoted message. Fixed-width
// digit and hex runs make these streams dense in exactly the
// bounded-repetition spans the suite measures. The output is deterministic
// in (seed, n).
func LogLines(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	levels := []string{"DEBUG", "INFO", "WARN", "ERROR"}
	services := []string{"api", "ingest", "scan", "store", "edge"}
	out := make([]byte, 0, n+128)
	// Synthetic wall clock: seconds advance by a seeded jitter per line.
	clock := int64(1700000000) + r.Int63n(1<<20)
	for len(out) < n {
		clock += r.Int63n(30)
		day := clock / 86400 % 28
		sec := clock % 86400
		out = append(out, fmt.Sprintf("2024-01-%02dT%02d:%02d:%02dZ %-5s svc=%s req=",
			day+1, sec/3600, sec/60%60, sec%60,
			levels[r.Intn(len(levels))], services[r.Intn(len(services))])...)
		for k := 0; k < 16; k++ {
			out = append(out, "0123456789abcdef"[r.Intn(16)])
		}
		out = append(out, fmt.Sprintf(" status=%d dur=%dms bytes=%d msg=\"",
			[]int{200, 200, 200, 204, 400, 404, 500}[r.Intn(7)],
			r.Intn(2000), r.Intn(1<<20))...)
		for k := 2 + r.Intn(4); k > 0; k-- {
			for l := 3 + r.Intn(8); l > 0; l-- {
				out = append(out, byte('a'+r.Intn(26)))
			}
			if k > 1 {
				out = append(out, ' ')
			}
		}
		out = append(out, '"', '\n')
	}
	return out[:n]
}
