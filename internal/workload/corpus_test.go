package workload

import (
	"bytes"
	"regexp"
	"testing"
)

// corpusGenerators enumerates the real-corpus generators at a fixed size so
// the shared property tests (determinism, exact length, ASCII cleanliness)
// cover each one.
func corpusGenerators(n int) map[string]func(seed int64) []byte {
	return map[string]func(seed int64) []byte{
		"natural": func(seed int64) []byte { return NaturalText(seed, n, 512) },
		"code":    func(seed int64) []byte { return SourceCode(seed, n) },
		"logs":    func(seed int64) []byte { return LogLines(seed, n) },
	}
}

func TestCorpusGeneratorsDeterministicExactLength(t *testing.T) {
	const n = 20000
	for name, gen := range corpusGenerators(n) {
		a, b := gen(7), gen(7)
		if len(a) != n {
			t.Errorf("%s: length %d, want %d", name, len(a), n)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different streams", name)
		}
		if bytes.Equal(a, gen(8)) {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestCorpusGeneratorsPrintableASCII(t *testing.T) {
	for name, gen := range corpusGenerators(8192) {
		for i, c := range gen(3) {
			if c != '\n' && c != '\t' && (c < 0x20 || c > 0x7e) {
				t.Fatalf("%s: non-printable byte %#x at %d", name, c, i)
			}
		}
	}
}

// TestNaturalTextZipfShape checks the defining property of the vocabulary
// distribution: the most frequent word dominates, and frequency decays with
// rank (the Zipf head is far heavier than the tail).
func TestNaturalTextZipfShape(t *testing.T) {
	text := NaturalText(11, 200000, 512)
	words := regexp.MustCompile(`[A-Za-z]+`).FindAll(text, -1)
	freq := map[string]int{}
	for _, w := range words {
		freq[string(bytes.ToLower(w))]++
	}
	if len(freq) < 50 {
		t.Fatalf("vocabulary too small: %d distinct words", len(freq))
	}
	top, second := 0, 0
	for _, n := range freq {
		if n > top {
			top, second = n, top
		} else if n > second {
			second = n
		}
	}
	mean := len(words) / len(freq)
	if top < 4*mean {
		t.Errorf("head word frequency %d vs mean %d: distribution not Zipf-like", top, mean)
	}
	if second == 0 {
		t.Error("only one word ever drawn")
	}
}

// TestNaturalTextHasBoundedRepeatTargets pins that the corpus actually
// exercises the paper's workload class: words in the [A-Za-z]{8,13} band
// occur, but are a minority against shorter Zipf-head tokens.
func TestNaturalTextHasBoundedRepeatTargets(t *testing.T) {
	text := NaturalText(5, 100000, 1024)
	long := regexp.MustCompile(`[A-Za-z]{8,13}`).FindAll(text, -1)
	all := regexp.MustCompile(`[A-Za-z]+`).FindAll(text, -1)
	if len(long) == 0 {
		t.Fatal("no 8..13-letter words generated")
	}
	if len(long) >= len(all)/2 {
		t.Errorf("long words dominate (%d of %d): head of distribution should be short", len(long), len(all))
	}
}

func TestSourceCodeShape(t *testing.T) {
	src := SourceCode(9, 60000)
	for _, want := range []string{` := "`, " = 0x", "// ", "func "} {
		if !bytes.Contains(src, []byte(want)) {
			t.Errorf("source stream lacks %q", want)
		}
	}
	if n := regexp.MustCompile(`0x[0-9a-f]{4,12}`).FindAll(src, -1); len(n) == 0 {
		t.Error("no hex literals generated")
	}
}

func TestLogLinesShape(t *testing.T) {
	logs := LogLines(13, 60000)
	line := regexp.MustCompile(`2024-01-\d{2}T\d{2}:\d{2}:\d{2}Z (DEBUG|INFO|WARN|ERROR) +svc=\w+ req=[0-9a-f]{16} status=\d{3}`)
	if got := line.FindAll(logs, -1); len(got) < 10 {
		t.Fatalf("only %d well-formed log lines in 60000 bytes", len(got))
	}
}
