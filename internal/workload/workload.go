// Package workload generates the input streams the evaluation runs over.
// The paper's real traces (network captures, protein sequences, email
// corpora) are not redistributable; what the experiments actually depend on
// is the *activation profile* of the stream — the bit-vector activation
// ratio α swept in Fig. 11, the match rate (<10% in the paper's real-world
// benchmarks), and the symbol distribution. These generators produce
// deterministic, seeded streams with those properties controlled.
package workload

import (
	"math/rand"

	"bvap/internal/regex"
)

// AlphaStream builds the Fig. 11 micro-benchmark input: each symbol is the
// trigger with probability alpha and the filler otherwise. For the regex
// r·a{n} with r = a^16, alpha directly controls how often the BV-STEs
// activate.
func AlphaStream(seed int64, n int, alpha float64, trigger, filler byte) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		if r.Float64() < alpha {
			out[i] = trigger
		} else {
			out[i] = filler
		}
	}
	return out
}

// Text builds a random stream over the given alphabet.
func Text(seed int64, n int, alphabet string) []byte {
	if alphabet == "" {
		alphabet = "abcdefghijklmnopqrstuvwxyz "
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}

// Witness produces one string in the language of the regex: the shortest
// choices for repetitions plus a seeded random pick among alternatives.
// It is used to plant genuine matches into generated corpora.
func Witness(n regex.Node, r *rand.Rand) []byte {
	switch n := n.(type) {
	case regex.Empty:
		return nil
	case regex.Lit:
		syms := n.Class.Symbols()
		if len(syms) == 0 {
			return nil
		}
		// Prefer printable members for realism.
		for tries := 0; tries < 4; tries++ {
			s := syms[r.Intn(len(syms))]
			if s >= 0x20 && s < 0x7f {
				return []byte{s}
			}
		}
		return []byte{syms[r.Intn(len(syms))]}
	case *regex.Concat:
		var out []byte
		for _, f := range n.Factors {
			out = append(out, Witness(f, r)...)
		}
		return out
	case *regex.Alt:
		if len(n.Alternatives) == 0 {
			return nil
		}
		return Witness(n.Alternatives[r.Intn(len(n.Alternatives))], r)
	case *regex.Star:
		if r.Intn(2) == 0 {
			return nil
		}
		return Witness(n.Sub, r)
	case *regex.Repeat:
		count := n.Min
		if count == 0 && n.Max != 0 && r.Intn(2) == 0 {
			count = 1
		}
		var out []byte
		for i := 0; i < count; i++ {
			out = append(out, Witness(n.Sub, r)...)
		}
		return out
	default:
		return nil
	}
}

// Corpus builds an input stream of length n over the alphabet, planting
// witnesses of the given patterns so that roughly matchRate × n positions
// carry a pattern fragment. Unparsable patterns are skipped.
func Corpus(seed int64, n int, alphabet string, patterns []string, matchRate float64) []byte {
	r := rand.New(rand.NewSource(seed))
	base := Text(seed+1, n, alphabet)
	if len(patterns) == 0 || matchRate <= 0 {
		return base
	}
	var witnesses [][]byte
	for _, pat := range patterns {
		ast, err := regex.Parse(pat)
		if err != nil {
			continue
		}
		w := Witness(ast, r)
		if len(w) > 0 && len(w) < n/4 {
			witnesses = append(witnesses, w)
		}
	}
	if len(witnesses) == 0 {
		return base
	}
	// Plant witnesses until the budgeted fraction of positions is
	// covered.
	budget := int(matchRate * float64(n))
	for budget > 0 {
		w := witnesses[r.Intn(len(witnesses))]
		if len(w) > n {
			break
		}
		pos := r.Intn(n - len(w) + 1)
		copy(base[pos:], w)
		budget -= len(w)
	}
	return base
}

// ActivationRatio measures the fraction of positions in input at which at
// least one of the given trigger prefixes has just completed — a cheap
// proxy for the BV activation ratio α used when validating generated
// corpora.
func ActivationRatio(input []byte, prefixes [][]byte) float64 {
	if len(input) == 0 || len(prefixes) == 0 {
		return 0
	}
	hits := 0
	for i := range input {
		for _, p := range prefixes {
			if len(p) > 0 && i+1 >= len(p) && bytesEqual(input[i+1-len(p):i+1], p) {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(input))
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
