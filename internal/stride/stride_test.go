package stride

import (
	"fmt"
	"math/rand"
	"testing"

	"bvap/internal/glushkov"
	"bvap/internal/regex"
)

func mustTransform(t *testing.T, a *glushkov.NFA) *NFA2 {
	t.Helper()
	t2, err := Transform(a)
	if err != nil {
		t.Fatal(err)
	}
	return t2
}

func nfaFor(t *testing.T, pattern string) *glushkov.NFA {
	t.Helper()
	return glushkov.MustBuild(regex.FullyUnfold(regex.MustParse(pattern)))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStride2Basic(t *testing.T) {
	base := nfaFor(t, "abc")
	t2 := mustTransform(t, base)
	cases := map[string][]int{
		"abc":     {2},
		"zabc":    {3},
		"abcz":    {2},
		"zzabc":   {4},
		"abcabc":  {2, 5},
		"ab":      nil,
		"":        nil,
		"abcabcz": {2, 5},
	}
	for in, want := range cases {
		got := t2.MatchEnds([]byte(in))
		if !equalInts(got, want) {
			t.Errorf("input %q: 2-stride %v, want %v", in, got, want)
		}
	}
}

func TestStride2SingleSymbolPattern(t *testing.T) {
	t2 := mustTransform(t, nfaFor(t, "a"))
	got := t2.MatchEnds([]byte("aazaz"))
	want := []int{0, 1, 3}
	if !equalInts(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStride2AgainstOneStride(t *testing.T) {
	patterns := []string{
		"abc", "a|bc", "a*b", "(ab)+c", "a?b?c", "[ab]c[^d]",
		"ab{4}c", "a.{5}b", "x(ab|c){3}y", "a",
	}
	r := rand.New(rand.NewSource(31))
	for _, pat := range patterns {
		base := nfaFor(t, pat)
		t2 := mustTransform(t, base)
		for trial := 0; trial < 25; trial++ {
			n := r.Intn(50) // even and odd lengths
			input := make([]byte, n)
			for i := range input {
				input[i] = "abcxyd"[r.Intn(6)]
			}
			got := t2.MatchEnds(input)
			want := base.MatchEnds(input)
			if !equalInts(got, want) {
				t.Fatalf("%q input %q: 2-stride %v, 1-stride %v", pat, input, got, want)
			}
		}
	}
}

func TestQuickStride2Equivalence(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 150; trial++ {
		// Random small classical pattern.
		pat := ""
		for i := 0; i < 2+r.Intn(4); i++ {
			c := string(rune('a' + r.Intn(3)))
			switch r.Intn(4) {
			case 0:
				pat += c + "*"
			case 1:
				pat += "(" + c + "|" + string(rune('a'+r.Intn(3))) + ")"
			case 2:
				pat += c + fmt.Sprintf("{%d}", 2+r.Intn(4))
			default:
				pat += c
			}
		}
		ast, err := regex.Parse(pat)
		if err != nil {
			continue
		}
		base, err := glushkov.Build(regex.FullyUnfold(ast))
		if err != nil || base.Size() == 0 {
			continue
		}
		t2 := mustTransform(t, base)
		input := make([]byte, 1+r.Intn(40))
		for i := range input {
			input[i] = byte('a' + r.Intn(3))
		}
		if !equalInts(t2.MatchEnds(input), base.MatchEnds(input)) {
			t.Fatalf("trial %d %q input %q: mismatch", trial, pat, input)
		}
	}
}

func TestExpansionFactor(t *testing.T) {
	// A linear chain has ~1 edge per state: expansion ≈ 1 (plus the
	// anchors). A dense starred alternation expands quadratically —
	// Impala's memory cost.
	chain := mustTransform(t, nfaFor(t, "abcdefgh"))
	if chain.Expansion() > 1.5 {
		t.Fatalf("chain expansion = %.2f", chain.Expansion())
	}
	dense := mustTransform(t, nfaFor(t, "(ab|cd|ef|gh|ij|kl)*z"))
	if dense.Expansion() < 2 {
		t.Fatalf("dense expansion = %.2f, expected growth", dense.Expansion())
	}
	if dense.Size() <= dense.base.Size() {
		t.Fatal("dense 2-stride should need more states")
	}
}

func TestRunnerResetStride(t *testing.T) {
	t2 := mustTransform(t, nfaFor(t, "abcd"))
	r := NewRunner(t2)
	r.Step2('a', 'b')
	r.Reset()
	if _, end := r.Step2('c', 'd'); end {
		t.Fatal("stale pair state after reset")
	}
	if r.ActiveCount() != 0 {
		t.Fatal("active after non-matching pair")
	}
}
