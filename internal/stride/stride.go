// Package stride implements two-symbol-per-cycle (2-stride) automata
// processing, the throughput-scaling direction of Impala [30], which the
// paper cites as complementary related work. It exists as an extension
// experiment: BVAP accelerates *counting*; multi-stride accelerates *symbol
// rate*, paying for it with state expansion.
//
// The 2-stride transformation squares a homogeneous Glushkov NFA: each pair
// state corresponds to an edge (q1, q2) of the original automaton and
// matches the symbol pair (class(q1), class(q2)). Matches that end on an
// odd stream offset surface through the pair state's mid-final flag; a
// match starting at the second symbol of a pair enters through a
// half-anchored pair state whose first symbol is unconstrained.
//
// The expansion factor |pairs| / |states| is exactly the transition density
// of the automaton — the quantity Impala's encoding works to contain — and
// Expansion reports it for the cost model.
package stride

import (
	"errors"

	"bvap/internal/charclass"
	"bvap/internal/glushkov"
)

// ErrTooDense is returned when squaring would exceed the pair budget:
// unfolded {m,n} ranges have Θ((n-m)²) follow edges, and the pair automaton
// squares that again — exactly the expansion Impala's encoding exists to
// contain, and the regime where 2-stride stops paying off.
var ErrTooDense = errors.New("stride: automaton too dense to square")

// EdgeCount returns the follow-edge count of an NFA (the 2-stride state
// demand before half/mid additions).
func EdgeCount(a *glushkov.NFA) int {
	n := 0
	for p := range a.States {
		n += len(a.Follow[p])
	}
	return n
}

// PairState is one state of the 2-stride automaton: it fires when the
// current symbol pair (b1, b2) satisfies First and Second. A half pair
// (First == Σ with Half set) models a match starting mid-pair.
type PairState struct {
	First  charclass.Class
	Second charclass.Class
	// Q1 and Q2 are the original positions; Q1 == -1 for half pairs.
	Q1, Q2 int
	// MidFinal marks pairs whose first position is final in the original
	// automaton: a match ends on the pair's first symbol.
	MidFinal bool
	// EndFinal marks pairs whose second position is final: a match ends
	// on the pair's second symbol.
	EndFinal bool
	// Half marks a start-of-match pair whose first symbol predates the
	// match (unconstrained).
	Half bool
}

// NFA2 is the squared automaton.
type NFA2 struct {
	base   *glushkov.NFA
	States []PairState
	// Follow[i] lists the pair states reachable from pair i: (q1,q2) →
	// (q3,q4) iff q3 ∈ follow(q2) in the original automaton.
	Follow [][]int
	// Initial lists the pair states a match may begin in (full pairs
	// starting at the pair boundary, and half pairs starting mid-pair).
	Initial []int
	// TailFinal marks original states that are final: used when the
	// stream has an odd trailing symbol.
	base1Final []bool
}

// MaxPairs bounds the squared automaton's state count; Transform returns
// ErrTooDense beyond it.
const MaxPairs = 1 << 17

// Transform squares a Glushkov NFA. The result's state count is
// |edges| + |initial| half pairs + final mid-terminals — the multi-stride
// memory expansion. It returns ErrTooDense when the pair budget is
// exceeded.
func Transform(a *glushkov.NFA) (*NFA2, error) {
	if EdgeCount(a) > MaxPairs {
		return nil, ErrTooDense
	}
	t := &NFA2{base: a}
	// Pair id for each original edge.
	pairID := map[[2]int]int{}
	for p := range a.States {
		for _, q := range a.Follow[p] {
			key := [2]int{p, q}
			if _, ok := pairID[key]; ok {
				continue
			}
			pairID[key] = len(t.States)
			t.States = append(t.States, PairState{
				First:    a.States[p].Class,
				Second:   a.States[q].Class,
				Q1:       p,
				Q2:       q,
				MidFinal: a.States[p].Final,
				EndFinal: a.States[q].Final,
			})
		}
	}
	// Mid-terminal pairs: a match ending on a pair's *first* symbol must
	// be reported even when the second symbol continues no pattern, so
	// every final state gets a (q, Σ) pair with MidFinal set.
	midID := make([]int, a.Size())
	for i := range midID {
		midID[i] = -1
	}
	for q, st := range a.States {
		if !st.Final {
			continue
		}
		midID[q] = len(t.States)
		t.States = append(t.States, PairState{
			First:    st.Class,
			Second:   charclass.Any(),
			Q1:       q,
			Q2:       -1,
			MidFinal: true,
		})
	}
	// Half pairs: a match starting on the second symbol of a pair.
	halfID := make([]int, a.Size())
	for i := range halfID {
		halfID[i] = -1
	}
	for _, q := range a.Initial {
		halfID[q] = len(t.States)
		t.States = append(t.States, PairState{
			First:    charclass.Any(),
			Second:   a.States[q].Class,
			Q1:       -1,
			Q2:       q,
			EndFinal: a.States[q].Final,
			Half:     true,
		})
	}
	// Follow edges between pairs. Mid-terminal pairs (Q2 < 0) are dead
	// ends: the match already ended on their first symbol. Stamp-based
	// dedup keeps this loop linear in the produced edges.
	t.Follow = make([][]int, len(t.States))
	stamp := make([]int, len(t.States))
	for i := range stamp {
		stamp[i] = -1
	}
	for i, ps := range t.States {
		if ps.Q2 < 0 {
			continue
		}
		add := func(id int) {
			if stamp[id] != i {
				stamp[id] = i
				t.Follow[i] = append(t.Follow[i], id)
			}
		}
		for _, q3 := range a.Follow[ps.Q2] {
			if midID[q3] >= 0 {
				add(midID[q3])
			}
			for _, q4 := range a.Follow[q3] {
				if id, ok := pairID[[2]int{q3, q4}]; ok {
					add(id)
				}
			}
		}
	}
	// Initial full pairs: q1 initial, q2 ∈ follow(q1); plus the half
	// pairs (always armed under partial matching).
	for _, q1 := range a.Initial {
		if midID[q1] >= 0 {
			t.Initial = appendUnique(t.Initial, midID[q1])
		}
		for _, q2 := range a.Follow[q1] {
			if id, ok := pairID[[2]int{q1, q2}]; ok {
				t.Initial = appendUnique(t.Initial, id)
			}
		}
	}
	for _, id := range halfID {
		if id >= 0 {
			t.Initial = appendUnique(t.Initial, id)
		}
	}
	// Single-symbol matches need the final flags of the original states.
	t.base1Final = make([]bool, a.Size())
	for q, st := range a.States {
		t.base1Final[q] = st.Final
	}
	return t, nil
}

func appendUnique(dst []int, v ...int) []int {
	for _, s := range v {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

// Size returns the pair-state count (the 2-stride STE demand).
func (t *NFA2) Size() int { return len(t.States) }

// Expansion returns the state expansion factor over the 1-stride automaton.
func (t *NFA2) Expansion() float64 {
	if t.base.Size() == 0 {
		return 0
	}
	return float64(t.Size()) / float64(t.base.Size())
}

// Runner executes the 2-stride automaton, consuming two symbols per step.
type Runner struct {
	t           *NFA2
	activeStamp []uint64
	epoch       uint64
	activeList  []int
}

// NewRunner returns a runner at the start of the stream.
func NewRunner(t *NFA2) *Runner {
	return &Runner{
		t:           t,
		activeStamp: make([]uint64, t.Size()),
		epoch:       1,
	}
}

// Reset returns the runner to the start of the stream.
func (r *Runner) Reset() {
	r.epoch++
	r.activeList = r.activeList[:0]
}

// Step2 consumes a symbol pair and reports whether a match ends at the
// first and/or at the second symbol of the pair.
func (r *Runner) Step2(b1, b2 byte) (matchMid, matchEnd bool) {
	t := r.t
	cur := r.epoch
	r.epoch++
	next := r.epoch
	var newList []int
	fire := func(id int) {
		if r.activeStamp[id] == next {
			return
		}
		ps := &t.States[id]
		if !ps.First.Contains(b1) || !ps.Second.Contains(b2) {
			return
		}
		r.activeStamp[id] = next
		newList = append(newList, id)
		if ps.MidFinal {
			matchMid = true
		}
		if ps.EndFinal {
			matchEnd = true
		}
	}
	for _, p := range r.activeList {
		if r.activeStamp[p] != cur {
			continue
		}
		for _, succ := range t.Follow[p] {
			fire(succ)
		}
	}
	// Partial matching: initial pairs arm on every pair boundary; a
	// match may also start on this pair's first symbol via a full
	// initial pair, or on its second via a half pair.
	for _, id := range t.Initial {
		fire(id)
	}
	// A single-symbol match contained entirely in the first symbol: the
	// full pairs above only see matches that *continue* into b2;
	// MidFinal on fired pairs covers this, and half-pair EndFinal covers
	// a single-symbol match on b2.
	r.activeList = newList
	return matchMid, matchEnd
}

// ActiveCount returns how many pair states fired on the latest step.
func (r *Runner) ActiveCount() int { return len(r.activeList) }

// MatchEnds runs the 2-stride automaton over input (processing ⌊n/2⌋ pairs
// plus a final 1-stride step for an odd trailing symbol, as multi-stride
// hardware does) and returns every index where a match ends.
func (t *NFA2) MatchEnds(input []byte) []int {
	r := NewRunner(t)
	var ends []int
	i := 0
	for ; i+1 < len(input); i += 2 {
		mid, end := r.Step2(input[i], input[i+1])
		if mid {
			ends = append(ends, i)
		}
		if end {
			ends = append(ends, i+1)
		}
	}
	if i < len(input) {
		// Odd tail: finish with the 1-stride base automaton state
		// recovered from the active pairs.
		b := input[i]
		matched := false
		seen := map[int]bool{}
		for _, id := range r.activeList {
			q2 := t.States[id].Q2
			if q2 < 0 || seen[q2] {
				continue
			}
			seen[q2] = true
			for _, succ := range t.base.Follow[q2] {
				if t.base.States[succ].Class.Contains(b) && t.base1Final[succ] {
					matched = true
				}
			}
		}
		for _, q := range t.base.Initial {
			if t.base.States[q].Class.Contains(b) && t.base1Final[q] {
				matched = true
			}
		}
		if matched {
			ends = append(ends, i)
		}
	}
	return ends
}
