// Package obs wires the telemetry subsystem into the command-line tools:
// the -metrics, -trace and -pprof flags shared by bvapsim and bvapbench
// (and the compile-side flags of bvapc/bvapstats) funnel through a Session
// that owns the metrics registry, the trace emitter, and the optional
// debug HTTP server.
//
// Output formats are chosen by file extension:
//
//   - -metrics out.prom (or any non-.json suffix) writes Prometheus text
//     exposition format 0.0.4; out.json writes the registry's JSON snapshot.
//   - -trace out.json (or any non-.jsonl suffix) writes a Chrome
//     trace_event document loadable in chrome://tracing or Perfetto;
//     out.jsonl writes one JSON event per line.
//
// The -pprof address serves net/http/pprof and expvar as usual, plus
// /metrics with the live Prometheus snapshot of the session registry.
package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"strings"
	"sync"

	"bvap/internal/telemetry"
)

// The debug HTTP handlers live on http.DefaultServeMux, which rejects
// duplicate registrations; register once and indirect through a mutable
// registry pointer so repeated Setup calls (tests) stay valid.
var (
	httpOnce sync.Once
	httpMu   sync.Mutex
	httpReg  *telemetry.Registry
)

func currentRegistry() *telemetry.Registry {
	httpMu.Lock()
	defer httpMu.Unlock()
	return httpReg
}

// Session bundles the observability outputs of one CLI invocation. The
// zero Session (from Setup("", "", "")) is fully inert: both fields are
// nil and Close is a no-op.
type Session struct {
	// Registry is non-nil when a metrics output was requested (or a pprof
	// server, which exposes the registry at /metrics).
	Registry *telemetry.Registry
	// Tracer is non-nil when a trace output was requested.
	Tracer *telemetry.Tracer

	metricsPath string
	traceFile   *os.File
	listener    net.Listener
}

// Setup prepares the observability session for the given flag values. Any
// of the three may be empty. The trace file is created (and truncated)
// immediately so flag typos fail fast; the metrics file is written by
// Close, after the run has accrued its counters.
func Setup(metricsPath, tracePath, pprofAddr string) (*Session, error) {
	s := &Session{metricsPath: metricsPath}
	if metricsPath != "" || pprofAddr != "" {
		s.Registry = telemetry.NewRegistry()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("trace output: %w", err)
		}
		s.traceFile = f
		format := telemetry.FormatChrome
		if strings.HasSuffix(tracePath, ".jsonl") {
			format = telemetry.FormatJSONL
		}
		s.Tracer = telemetry.NewTracer(f, format)
	}
	if pprofAddr != "" {
		if err := s.servePprof(pprofAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// servePprof starts the debug HTTP server: net/http/pprof and expvar on
// the default mux plus a /metrics Prometheus endpoint over the session
// registry. The listener is bound synchronously so bad addresses error at
// startup; serving happens in a background goroutine for the life of the
// process.
func (s *Session) servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	s.listener = ln
	httpMu.Lock()
	httpReg = s.Registry
	httpMu.Unlock()
	httpOnce.Do(func() {
		expvar.Publish("bvap_metrics", expvar.Func(func() any {
			if reg := currentRegistry(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if reg := currentRegistry(); reg != nil {
				reg.WritePrometheus(w) //nolint:errcheck // best-effort debug endpoint
			}
		})
	})
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug server
	fmt.Fprintf(os.Stderr, "pprof/expvar/metrics listening on http://%s/debug/pprof\n", ln.Addr())
	return nil
}

// Addr returns the bound address of the debug HTTP server, or "" when no
// -pprof address was configured.
func (s *Session) Addr() string {
	if s == nil || s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close flushes the session: the trace document is finalized and the
// metrics snapshot is written in the format selected by the file
// extension. Close is idempotent and nil-safe.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	if s.Tracer != nil {
		if err := s.Tracer.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trace output: %w", err)
		}
		s.Tracer = nil
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trace output: %w", err)
		}
		s.traceFile = nil
	}
	if s.metricsPath != "" && s.Registry != nil {
		f, err := os.Create(s.metricsPath)
		if err == nil {
			if strings.HasSuffix(s.metricsPath, ".json") {
				err = s.Registry.WriteJSON(f)
			} else {
				err = s.Registry.WritePrometheus(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("metrics output: %w", err)
		}
		s.metricsPath = ""
	}
	if s.listener != nil {
		s.listener.Close() //nolint:errcheck // best-effort debug server
		s.listener = nil
	}
	return firstErr
}
