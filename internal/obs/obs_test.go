package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInertSession(t *testing.T) {
	s, err := Setup("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Registry != nil || s.Tracer != nil {
		t.Fatal("empty setup is not inert")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSession *Session
	if err := nilSession.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		file string
		want string // substring of the output
	}{
		{"out.prom", "# TYPE obs_test_total counter"},
		{"out.json", `"metrics"`},
	} {
		path := filepath.Join(dir, tc.file)
		s, err := Setup(path, "", "")
		if err != nil {
			t.Fatal(err)
		}
		s.Registry.Counter("obs_test_total", "test counter").Add(3)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(raw), tc.want) {
			t.Errorf("%s missing %q:\n%s", tc.file, tc.want, raw)
		}
	}
}

func TestTraceFormats(t *testing.T) {
	dir := t.TempDir()
	// .json → Chrome document, .jsonl → one event per line.
	chrome := filepath.Join(dir, "out.json")
	s, err := Setup("", chrome, "")
	if err != nil {
		t.Fatal(err)
	}
	s.Tracer.Instant("ev", "test", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) || !strings.Contains(string(raw), "traceEvents") {
		t.Fatalf("not a Chrome trace: %s", raw)
	}

	jsonl := filepath.Join(dir, "out.jsonl")
	s, err = Setup("", jsonl, "")
	if err != nil {
		t.Fatal(err)
	}
	s.Tracer.Instant("a", "test", nil)
	s.Tracer.Instant("b", "test", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSONL line %q", line)
		}
	}
}

func TestPprofServer(t *testing.T) {
	s, err := Setup("", "", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Registry == nil {
		t.Fatal("pprof setup should create a registry for /metrics")
	}
	s.Registry.Counter("obs_pprof_test_total", "test counter").Inc()
	for path, want := range map[string]string{
		"/metrics":          "obs_pprof_test_total 1",
		"/debug/vars":       "bvap_metrics",
		"/debug/pprof/":     "profiles",
		"/debug/pprof/heap": "",
	} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Errorf("GET %s: missing %q in body", path, want)
		}
	}
}

func TestTraceBadPath(t *testing.T) {
	if _, err := Setup("", filepath.Join(t.TempDir(), "no/such/dir/out.json"), ""); err == nil {
		t.Fatal("bad trace path accepted")
	}
}
