package profile

import "sort"

// HotState is one entry of the most-active-STE ranking: STE q of machine
// Machine (compiled from Pattern) was active after Activations steps, and —
// when the image carries a provenance table — lives on tile Tile.
type HotState struct {
	Machine     int    `json:"machine"`
	Pattern     string `json:"pattern"`
	STE         int    `json:"ste"`
	Tile        int    `json:"tile"` // -1 when no provenance covers the STE
	Activations uint64 `json:"activations"`
}

// HotStates returns the k most-active STEs across all machines, most
// active first; ties break deterministically by (machine, STE) ascending.
// k ≤ 0 selects the profiler's default (Options.TopK). STEs that never
// activated are omitted, so fewer than k entries may return.
func (p *Profiler) HotStates(k int) []HotState {
	if k <= 0 {
		k = p.opt.TopK
	}
	var all []HotState
	for m, counts := range p.steActivations {
		pattern := ""
		if m < len(p.patterns) {
			pattern = p.patterns[m]
		}
		for q, n := range counts {
			if n == 0 {
				continue
			}
			tile := -1
			if t, ok := p.prov.STETile(m, q); ok {
				tile = t
			}
			all = append(all, HotState{Machine: m, Pattern: pattern, STE: q, Tile: tile, Activations: n})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Activations != b.Activations {
			return a.Activations > b.Activations
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.STE < b.STE
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
