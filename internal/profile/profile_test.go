package profile

import (
	"math"
	"testing"

	"bvap/internal/hwsim"
)

func TestHeatmapRescale(t *testing.T) {
	h := newHeatmap(2, 4)
	if h.Cols() != 4 || h.BucketCycles() != 1 {
		t.Fatalf("fresh heatmap: cols=%d bucket=%d", h.Cols(), h.BucketCycles())
	}
	h.add(0, 0, 1)
	h.add(0, 1, 2)
	h.add(0, 2, 3)
	h.add(0, 3, 4)
	h.add(1, 3, 10)
	// Cycle 4 is out of range: buckets double to 2 cycles each.
	h.add(0, 4, 5)
	if h.BucketCycles() != 2 {
		t.Fatalf("bucket width %d after one rescale, want 2", h.BucketCycles())
	}
	want0 := []float64{3, 7, 5, 0} // (1+2), (3+4), 5, 0
	for c, w := range want0 {
		if got := h.Value(0, c); got != w {
			t.Errorf("row 0 col %d = %v, want %v", c, got, w)
		}
	}
	if got := h.Value(1, 1); got != 10 {
		t.Errorf("row 1 col 1 = %v, want 10", got)
	}
	// A huge jump forces several doublings at once without losing mass.
	h.add(0, 63, 100)
	sum := 0.0
	for c := 0; c < h.Cols(); c++ {
		sum += h.Value(0, c)
	}
	if sum != 1+2+3+4+5+100 {
		t.Fatalf("row 0 mass %v after rescales, want %v", sum, 1+2+3+4+5+100)
	}
	if used := h.UsedCols(); used < 1 || used > h.Cols() {
		t.Fatalf("UsedCols = %d out of range", used)
	}
}

func TestHeatmapEmptyAndOutOfRange(t *testing.T) {
	h := newHeatmap(1, 4)
	if h.UsedCols() != 0 {
		t.Fatalf("empty heatmap UsedCols = %d", h.UsedCols())
	}
	h.add(-1, 0, 1) // ignored
	h.add(5, 0, 1)  // ignored
	if h.Max() != 0 {
		t.Fatalf("out-of-range adds leaked: max %v", h.Max())
	}
	var nilMap *Heatmap
	nilMap.add(0, 0, 1)
	if nilMap.Rows() != 0 || nilMap.UsedCols() != 0 || nilMap.Matrix() != nil {
		t.Fatal("nil heatmap accessors must be zero-valued")
	}
}

func TestSnapSum(t *testing.T) {
	cases := []struct {
		vals   []float64
		target float64
	}{
		{[]float64{0.1, 0.2, 0.3}, 0.7},
		{[]float64{1e-300, 1e300, 1e-300}, 1e300},
		{[]float64{3.3333, 3.3333, 3.3334}, 10},
		{[]float64{0, 0, 0}, 42.5},
	}
	for _, c := range cases {
		vals := append([]float64(nil), c.vals...)
		argmax := 0
		for i, v := range vals {
			if v > vals[argmax] {
				argmax = i
			}
		}
		snapSum(vals, c.target, argmax)
		s := 0.0
		for _, v := range vals {
			s += v
		}
		if s != c.target {
			t.Errorf("snapSum(%v, %v): sum %v (diff %g)", c.vals, c.target, s, s-c.target)
		}
	}
	// Non-finite targets are left alone rather than poisoning the values.
	vals := []float64{1, 2}
	snapSum(vals, math.NaN(), 0)
	if vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("NaN target mutated vals: %v", vals)
	}
}

func TestSplitExact(t *testing.T) {
	weights := []float64{1, 2, 3, 0}
	parts := splitExact(10, weights)
	s := 0.0
	for _, v := range parts {
		s += v
	}
	if s != 10 {
		t.Fatalf("splitExact sum %v, want exactly 10", s)
	}
	if parts[3] != 0 {
		t.Errorf("zero-weight pattern received %v", parts[3])
	}
	if !(parts[2] > parts[1] && parts[1] > parts[0]) {
		t.Errorf("shares not monotone in weights: %v", parts)
	}
	// Zero total and empty inputs.
	for _, v := range splitExact(0, weights) {
		if v != 0 {
			t.Fatalf("zero total produced %v", v)
		}
	}
	if got := splitExact(5, nil); len(got) != 0 {
		t.Fatalf("empty weights produced %v", got)
	}
	// All-zero weights still partition exactly.
	parts = splitExact(7.25, []float64{0, 0})
	if parts[0]+parts[1] != 7.25 {
		t.Fatalf("all-zero weights: %v", parts)
	}
}

// drive feeds the profiler a deterministic synthetic event stream.
func drive(p *Profiler) {
	for step := 0; step < 10; step++ {
		p.MachineStageEnergy(0, hwsim.StageBVMRead, 1.0)
		p.MachineActivity(0, 2, []int{0, 3})
		p.MachineActivity(1, 1, []int{1})
		p.TileActivity(0, 2)
		p.TileActivity(1, 1)
		p.StageEnergy(hwsim.StageMatch, 2.0)
		p.Stall(hwsim.StallBVM, step%2)
		p.Stall(hwsim.StallIOInput, 0)
		p.Stall(hwsim.StallIOOutput, 0)
		p.StepDone(1+step%2, 3, 0)
	}
}

func TestProfilerAccumulation(t *testing.T) {
	p := NewForPatterns([]string{"aaa", "bb"}, Options{Buckets: 8, TopK: 3})
	drive(p)
	if p.Symbols() != 10 {
		t.Fatalf("symbols %d", p.Symbols())
	}
	if p.Cycles() != 15 {
		t.Fatalf("cycles %d, want 15", p.Cycles())
	}
	if got := p.StageEnergyPJ(hwsim.StageMatch); got != 20 {
		t.Fatalf("match stage %v", got)
	}
	if got := p.StallTotal(hwsim.StallBVM); got != 5 {
		t.Fatalf("bvm stalls %d", got)
	}
	if got := p.MachineActivitySteps(0); got != 20 {
		t.Fatalf("machine 0 activity %d", got)
	}
	if p.TileHeatmap() != nil {
		t.Fatal("pattern-only profiler should have no tile heatmap")
	}
	hot := p.HotStates(0) // default TopK = 3
	if len(hot) != 3 {
		t.Fatalf("hot states: %d entries, want 3", len(hot))
	}
	// STEs 0 and 3 of machine 0 and STE 1 of machine 1 all activated 10
	// times; ties break by (machine, ste).
	if hot[0].Machine != 0 || hot[0].STE != 0 || hot[0].Activations != 10 || hot[0].Tile != -1 {
		t.Fatalf("hot[0] = %+v", hot[0])
	}
	if hot[1].STE != 3 || hot[2].Machine != 1 {
		t.Fatalf("tie order: %+v", hot)
	}
}

func TestAttributeZeroPatterns(t *testing.T) {
	p := NewForPatterns(nil, Options{})
	st := &hwsim.Stats{MatchEnergyPJ: 5}
	a := p.Attribute(st)
	if a.TotalPJ != 5 || a.UnattributedPJ != 5 || len(a.Patterns) != 0 {
		t.Fatalf("zero-pattern attribution: %+v", a)
	}
}

func TestAttributeConservesSynthetic(t *testing.T) {
	p := NewForPatterns([]string{"aaa", "bb", "c"}, Options{})
	drive(p)
	st := &hwsim.Stats{
		MatchEnergyPJ:      1.1,
		TransitionEnergyPJ: 2.2,
		BVMEnergyPJ:        3.3,
		CounterEnergyPJ:    0.0,
		WireEnergyPJ:       4.4,
		IOEnergyPJ:         5.5,
		LeakageEnergyPJ:    6.6,
		ParityEnergyPJ:     0.7,
	}
	a := p.Attribute(st)
	if a.TotalPJ != st.TotalEnergyPJ() {
		t.Fatalf("TotalPJ %v != %v", a.TotalPJ, st.TotalEnergyPJ())
	}
	if a.UnattributedPJ != 0 {
		t.Fatalf("unattributed residual %g", a.UnattributedPJ)
	}
	sum := 0.0
	for _, row := range a.Patterns {
		sum += row.EnergyPJ
	}
	if sum != st.TotalEnergyPJ() {
		t.Fatalf("pattern totals sum %v != %v (diff %g)", sum, st.TotalEnergyPJ(), sum-st.TotalEnergyPJ())
	}
	// Component columns are exact too.
	totals := componentTotals(st)
	for c := Component(0); c < NumComponents; c++ {
		colSum := 0.0
		for _, row := range a.Patterns {
			colSum += row.Components[c]
		}
		if colSum != totals[c] {
			t.Errorf("component %v column sum %v != %v", c, colSum, totals[c])
		}
	}
	// Pattern "c" never activated: activity-weighted components must be 0.
	if a.Patterns[2].Components[CompMatch] != 0 {
		t.Errorf("idle pattern received match energy %v", a.Patterns[2].Components[CompMatch])
	}
}

func TestComponentNames(t *testing.T) {
	names := ComponentNames()
	if len(names) != int(NumComponents) {
		t.Fatalf("%d names", len(names))
	}
	want := []string{"match", "transition", "bvm", "counter", "wire", "io", "leakage", "parity"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("component %d = %q, want %q", i, names[i], w)
		}
	}
}
