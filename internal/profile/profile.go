// Package profile implements the hardware activity profiler: a
// hwsim.ProvenanceSink that accumulates per-tile occupancy and stall-cause
// heatmaps, per-STE activation counts with source-regex provenance (hot
// states), and per-machine stage-energy weights from which per-pattern
// energy attribution exactly partitions the terminal Stats.
//
// Attach one with Simulator.SetSink (or combine with other sinks through
// hwsim.FanOut). The profiler is driven from the simulator's goroutine and
// is not safe for concurrent mutation; read it after Finish.
package profile

import (
	"bvap/internal/hwconf"
	"bvap/internal/hwsim"
)

// Options configures a Profiler. The zero value selects the defaults.
type Options struct {
	// Buckets is the number of cycle buckets per heatmap row (default 64,
	// rounded up to even). Memory is O(rows × Buckets) regardless of run
	// length: buckets widen as the run grows.
	Buckets int
	// TopK is the default hot-state ranking depth (default 10).
	TopK int
}

const (
	defaultBuckets = 64
	defaultTopK    = 10
)

func (o Options) withDefaults() Options {
	if o.Buckets <= 0 {
		o.Buckets = defaultBuckets
	}
	if o.TopK <= 0 {
		o.TopK = defaultTopK
	}
	return o
}

// Profiler accumulates activity, stall and energy provenance from one
// simulated run. It implements hwsim.ProvenanceSink.
type Profiler struct {
	opt       Options
	patterns  []string
	supported []bool
	steCount  []int // static STE count per machine (0 when unknown)
	prov      *hwconf.ProvenanceIndex

	cycles  uint64 // virtual clock, advanced by StepDone
	symbols uint64
	matches uint64

	stageEnergy [hwsim.NumStages]float64
	stallTotals [hwsim.NumStallCauses]uint64

	occupancy *Heatmap // 1 row: aggregate active states per step
	tileHeat  *Heatmap // rows = tiles; nil when the image has no placement
	stallHeat *Heatmap // rows = stall causes

	// machineActivity[i] is the accumulated post-step active-state count
	// of machine i ("active-state steps"), the activity-share weight.
	machineActivity []uint64
	// machineStage[i][s] is the energy machine i's events attributed to
	// stage s (BVM, counter, parity...). Weights for attribution, not an
	// exact partition.
	machineStage [][]float64
	// steActivations[i][q] counts how often STE q of machine i was active
	// after a step; rows grow lazily to the highest id seen.
	steActivations [][]uint64
}

var _ hwsim.ProvenanceSink = (*Profiler)(nil)

// New builds a profiler for a compiled configuration: pattern names, static
// STE counts, tile rows and the pattern↔tile provenance decoder all come
// from the image.
func New(cfg *hwconf.Config, opt Options) *Profiler {
	opt = opt.withDefaults()
	p := &Profiler{
		opt:       opt,
		prov:      cfg.ProvenanceIndex(),
		occupancy: newHeatmap(1, opt.Buckets),
		stallHeat: newHeatmap(int(hwsim.NumStallCauses), opt.Buckets),
	}
	for i := range cfg.Machines {
		m := &cfg.Machines[i]
		p.patterns = append(p.patterns, m.Regex)
		p.supported = append(p.supported, m.Unsupported == "")
		p.steCount = append(p.steCount, len(m.STEs))
	}
	if len(cfg.Tiles) > 0 {
		p.tileHeat = newHeatmap(len(cfg.Tiles), opt.Buckets)
	}
	p.grow(len(p.patterns))
	// Pre-size the per-STE activation counters so the hot path never
	// appends for well-formed runs.
	for i, n := range p.steCount {
		if n > 0 {
			p.steActivations[i] = make([]uint64, n)
		}
	}
	return p
}

// NewForPatterns builds a profiler for runs without a hardware image (the
// baseline architectures): pattern provenance only, no tile heatmap and no
// STE→tile resolution.
func NewForPatterns(patterns []string, opt Options) *Profiler {
	opt = opt.withDefaults()
	p := &Profiler{
		opt:       opt,
		occupancy: newHeatmap(1, opt.Buckets),
		stallHeat: newHeatmap(int(hwsim.NumStallCauses), opt.Buckets),
	}
	for _, pat := range patterns {
		p.patterns = append(p.patterns, pat)
		p.supported = append(p.supported, true)
		p.steCount = append(p.steCount, 0)
	}
	p.grow(len(p.patterns))
	return p
}

// grow extends the per-machine accumulators to cover machine index n-1.
func (p *Profiler) grow(n int) {
	for len(p.machineActivity) < n {
		p.machineActivity = append(p.machineActivity, 0)
		p.machineStage = append(p.machineStage, make([]float64, hwsim.NumStages))
		p.steActivations = append(p.steActivations, nil)
	}
	for len(p.patterns) < n {
		p.patterns = append(p.patterns, "")
		p.supported = append(p.supported, true)
		p.steCount = append(p.steCount, 0)
	}
}

// StageEnergy implements hwsim.Sink.
func (p *Profiler) StageEnergy(stage hwsim.Stage, pj float64) {
	if stage < 0 || stage >= hwsim.NumStages {
		return
	}
	p.stageEnergy[stage] += pj
}

// StallCycles implements hwsim.Sink. Per-array stalls are already covered
// by the cause-resolved Stall events, so this is a no-op.
func (p *Profiler) StallCycles(array, cycles int) {}

// StepDone implements hwsim.Sink: it closes the step's accounting and
// advances the profiler's virtual cycle clock. All other events of a step
// arrive before StepDone and are stamped with the pre-step clock.
func (p *Profiler) StepDone(cycles int, activeStates float64, matches int) {
	p.symbols++
	if matches > 0 {
		p.matches += uint64(matches)
	}
	p.occupancy.add(0, p.cycles, activeStates)
	if cycles > 0 {
		p.cycles += uint64(cycles)
	}
}

// MachineStageEnergy implements hwsim.ProvenanceSink.
func (p *Profiler) MachineStageEnergy(m int, stage hwsim.Stage, pj float64) {
	if m < 0 || stage < 0 || stage >= hwsim.NumStages {
		return
	}
	p.grow(m + 1)
	p.machineStage[m][stage] += pj
}

// MachineActivity implements hwsim.ProvenanceSink.
func (p *Profiler) MachineActivity(m int, active int, ids []int) {
	if m < 0 {
		return
	}
	p.grow(m + 1)
	if active > 0 {
		p.machineActivity[m] += uint64(active)
	}
	if len(ids) == 0 {
		return
	}
	counts := p.steActivations[m]
	for _, q := range ids {
		if q < 0 {
			continue
		}
		for q >= len(counts) {
			counts = append(counts, 0)
		}
		counts[q]++
	}
	p.steActivations[m] = counts
}

// TileActivity implements hwsim.ProvenanceSink.
func (p *Profiler) TileActivity(t int, active float64) {
	p.tileHeat.add(t, p.cycles, active)
}

// Stall implements hwsim.ProvenanceSink.
func (p *Profiler) Stall(cause hwsim.StallCause, cycles int) {
	if cause < 0 || cause >= hwsim.NumStallCauses {
		return
	}
	if cycles > 0 {
		p.stallTotals[cause] += uint64(cycles)
	}
	p.stallHeat.add(int(cause), p.cycles, float64(cycles))
}

// Symbols returns the number of steps observed.
func (p *Profiler) Symbols() uint64 { return p.symbols }

// Cycles returns the accumulated cycle clock.
func (p *Profiler) Cycles() uint64 { return p.cycles }

// Matches returns the number of matches observed.
func (p *Profiler) Matches() uint64 { return p.matches }

// StageEnergyPJ returns the energy observed for one pipeline stage.
func (p *Profiler) StageEnergyPJ(stage hwsim.Stage) float64 {
	if stage < 0 || stage >= hwsim.NumStages {
		return 0
	}
	return p.stageEnergy[stage]
}

// StallTotal returns the accumulated cycles lost to one cause (StallBVM in
// system cycles, the I/O causes in array-cycles).
func (p *Profiler) StallTotal(cause hwsim.StallCause) uint64 {
	if cause < 0 || cause >= hwsim.NumStallCauses {
		return 0
	}
	return p.stallTotals[cause]
}

// Patterns returns the pattern list (machine index → source regex).
func (p *Profiler) Patterns() []string { return p.patterns }

// MachineActivitySteps returns machine m's accumulated active-state steps.
func (p *Profiler) MachineActivitySteps(m int) uint64 {
	if m < 0 || m >= len(p.machineActivity) {
		return 0
	}
	return p.machineActivity[m]
}

// TileHeatmap returns the per-tile occupancy heatmap (nil when the run had
// no tile placement, e.g. the baseline architectures).
func (p *Profiler) TileHeatmap() *Heatmap { return p.tileHeat }

// StallHeatmap returns the stall-cause × cycle-bucket matrix; row indices
// are hwsim.StallCause values.
func (p *Profiler) StallHeatmap() *Heatmap { return p.stallHeat }

// OccupancyHeatmap returns the single-row aggregate active-state heatmap.
func (p *Profiler) OccupancyHeatmap() *Heatmap { return p.occupancy }
