package profile

import (
	"fmt"
	"math"

	"bvap/internal/hwsim"
)

// Per-pattern energy attribution. The terminal Stats aggregate is the
// ground truth; the profiler's per-machine observations supply *weights*
// by which each of the eight Stats energy components is partitioned across
// the source patterns. The partition is exact by construction:
//
//   - for every component c, the per-pattern values summed left-to-right
//     in pattern-index order reproduce the component total bit-for-bit;
//   - the per-pattern totals summed left-to-right in pattern-index order
//     reproduce Stats.TotalEnergyPJ() bit-for-bit, with a zero
//     UnattributedPJ residual whenever at least one pattern exists.
//
// Floating-point addition is not associative, so both guarantees cannot
// also force each pattern's total to equal the sum of its components
// exactly; that relation holds up to a few ULPs on at most one pattern
// (the snap target). See DESIGN.md.

// Component identifies one Stats energy component (the summands of
// Stats.TotalEnergyPJ, in its accumulation order).
type Component int

const (
	CompMatch Component = iota
	CompTransition
	CompBVM
	CompCounter
	CompWire
	CompIO
	CompLeakage
	CompParity

	// NumComponents is the number of energy components.
	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompMatch:
		return "match"
	case CompTransition:
		return "transition"
	case CompBVM:
		return "bvm"
	case CompCounter:
		return "counter"
	case CompWire:
		return "wire"
	case CompIO:
		return "io"
	case CompLeakage:
		return "leakage"
	case CompParity:
		return "parity"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// ComponentNames returns the component names in accumulation order.
func ComponentNames() []string {
	out := make([]string, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		out[c] = c.String()
	}
	return out
}

// componentTotals reads the component totals from Stats, in
// TotalEnergyPJ's accumulation order.
func componentTotals(st *hwsim.Stats) [NumComponents]float64 {
	return [NumComponents]float64{
		CompMatch:      st.MatchEnergyPJ,
		CompTransition: st.TransitionEnergyPJ,
		CompBVM:        st.BVMEnergyPJ,
		CompCounter:    st.CounterEnergyPJ,
		CompWire:       st.WireEnergyPJ,
		CompIO:         st.IOEnergyPJ,
		CompLeakage:    st.LeakageEnergyPJ,
		CompParity:     st.ParityEnergyPJ,
	}
}

// PatternEnergy is one pattern's attributed share.
type PatternEnergy struct {
	Index   int    `json:"index"`
	Pattern string `json:"pattern"`
	// EnergyPJ is the pattern's attributed total. Summing EnergyPJ over
	// Patterns in slice order reproduces TotalPJ exactly.
	EnergyPJ float64 `json:"energy_pj"`
	// Share is EnergyPJ / TotalPJ (0 on zero-energy runs).
	Share float64 `json:"share"`
	// Components is the per-component split, indexed by Component. For
	// each component, summing over Patterns in slice order reproduces the
	// Stats component total exactly.
	Components [NumComponents]float64 `json:"components"`
	// ActiveStateSteps is the activity weight basis: accumulated post-step
	// active-state counts of the pattern's machine.
	ActiveStateSteps uint64 `json:"active_state_steps"`
}

// Attribution is the result of partitioning one run's energy across its
// source patterns.
type Attribution struct {
	// TotalPJ equals Stats.TotalEnergyPJ() bit-for-bit.
	TotalPJ float64 `json:"total_pj"`
	// UnattributedPJ is TotalPJ minus the left-to-right sum of the
	// per-pattern totals: 0 whenever at least one pattern exists (the
	// whole run is attributed), TotalPJ when there are no patterns.
	UnattributedPJ float64         `json:"unattributed_pj"`
	Patterns       []PatternEnergy `json:"patterns"`
}

// Attribute partitions st's energy across the profiler's patterns.
// Shared-stage energy (state matching, wires, leakage, I/O) is split by
// activity share where the profiler observed activity, falling back to
// static silicon share (STE counts) and finally an equal split across
// supported patterns, so the partition is total even for idle runs.
func (p *Profiler) Attribute(st *hwsim.Stats) Attribution {
	total := st.TotalEnergyPJ()
	n := len(p.patterns)
	if n == 0 {
		return Attribution{TotalPJ: total, UnattributedPJ: total}
	}

	activity := make([]float64, n)
	silicon := make([]float64, n)
	bvmW := make([]float64, n)
	counterW := make([]float64, n)
	parityW := make([]float64, n)
	equal := make([]float64, n)
	anySupported := false
	for i := 0; i < n; i++ {
		if i < len(p.machineActivity) {
			activity[i] = float64(p.machineActivity[i])
		}
		silicon[i] = float64(p.steCount[i])
		if i < len(p.machineStage) {
			ms := p.machineStage[i]
			bvmW[i] = ms[hwsim.StageBVMRead] + ms[hwsim.StageBVMSwap] +
				ms[hwsim.StageBVMReset] + ms[hwsim.StageBVMIdle] + ms[hwsim.StageRouting]
			counterW[i] = ms[hwsim.StageCounter]
			parityW[i] = ms[hwsim.StageParity]
		}
		if p.supported[i] {
			equal[i] = 1
			anySupported = true
		}
	}
	if !anySupported {
		for i := range equal {
			equal[i] = 1
		}
	}

	chains := [NumComponents][][]float64{
		CompMatch:      {activity, silicon, equal},
		CompTransition: {activity, silicon, equal},
		CompBVM:        {bvmW, activity, silicon, equal},
		CompCounter:    {counterW, activity, silicon, equal},
		CompWire:       {silicon, activity, equal},
		CompIO:         {silicon, activity, equal},
		CompLeakage:    {silicon, activity, equal},
		CompParity:     {parityW, bvmW, silicon, equal},
	}

	rows := make([]PatternEnergy, n)
	for i := range rows {
		rows[i] = PatternEnergy{Index: i, Pattern: p.patterns[i]}
		if i < len(p.machineActivity) {
			rows[i].ActiveStateSteps = p.machineActivity[i]
		}
	}
	for c := Component(0); c < NumComponents; c++ {
		w := chooseWeights(chains[c], equal)
		parts := splitExact(componentTotals(st)[c], w)
		for i := range rows {
			rows[i].Components[c] = parts[i]
		}
	}

	// Per-pattern totals: component sums in TotalEnergyPJ order, then a
	// snap on the largest row so the cross-pattern sum reproduces the
	// grand total bit-for-bit.
	totals := make([]float64, n)
	argmax := 0
	for i := range rows {
		t := 0.0
		for c := Component(0); c < NumComponents; c++ {
			t += rows[i].Components[c]
		}
		totals[i] = t
		if t > totals[argmax] {
			argmax = i
		}
	}
	snapSum(totals, total, argmax)
	for i := range rows {
		rows[i].EnergyPJ = totals[i]
		if total != 0 {
			rows[i].Share = totals[i] / total
		}
	}
	// The residual is 0 by construction of snapSum; recompute it honestly
	// (the same left-to-right sum the guarantee is stated over) rather
	// than asserting.
	seq := 0.0
	for _, t := range totals {
		seq += t
	}
	return Attribution{TotalPJ: total, UnattributedPJ: total - seq, Patterns: rows}
}

// chooseWeights returns the first weight vector in the chain with a
// positive finite sum, falling back to fallback (and finally all-ones).
func chooseWeights(chain [][]float64, fallback []float64) []float64 {
	for _, w := range chain {
		s := 0.0
		for _, v := range w {
			s += v
		}
		if s > 0 && !math.IsInf(s, 0) && !math.IsNaN(s) {
			return w
		}
	}
	s := 0.0
	for _, v := range fallback {
		s += v
	}
	if s > 0 {
		return fallback
	}
	ones := make([]float64, len(fallback))
	for i := range ones {
		ones[i] = 1
	}
	return ones
}

// splitExact partitions total across weights so the left-to-right sum of
// the result reproduces total bit-for-bit. Every share is proportional to
// its weight except the largest-weight entry, which absorbs the float
// rounding (a few ULPs at most).
func splitExact(total float64, weights []float64) []float64 {
	n := len(weights)
	out := make([]float64, n)
	if n == 0 || total == 0 {
		return out
	}
	sumW := 0.0
	for _, w := range weights {
		sumW += w
	}
	argmax := 0
	for i, w := range weights {
		if w > weights[argmax] {
			argmax = i
		}
	}
	if sumW > 0 && !math.IsInf(sumW, 0) && !math.IsNaN(sumW) {
		for i, w := range weights {
			out[i] = total * (w / sumW)
		}
	} else {
		out[argmax] = total
	}
	snapSum(out, total, argmax)
	return out
}

// SnapSum nudges vals[adjust] until the left-to-right sum of vals equals
// target bit-for-bit — the exact-conservation primitive behind Attribute,
// exported so other exact partitions of a Stats total (the tracing layer's
// per-span energy breakdown) share one implementation. See snapSum for the
// convergence and fallback contract.
func SnapSum(vals []float64, target float64, adjust int) { snapSum(vals, target, adjust) }

// snapSum nudges vals[adjust] until the left-to-right sum of vals equals
// target bit-for-bit. The iterative correction converges in one or two
// rounds in practice; if it fails (pathological cancellation) the fallback
// zeroes every other entry and assigns target to vals[adjust], which sums
// exactly because adding zeros preserves IEEE values. Non-finite targets
// are left alone (nothing can sum to NaN reliably).
func snapSum(vals []float64, target float64, adjust int) {
	if len(vals) == 0 || adjust < 0 || adjust >= len(vals) ||
		math.IsNaN(target) || math.IsInf(target, 0) {
		return
	}
	for iter := 0; iter < 32; iter++ {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		if s == target {
			return
		}
		next := vals[adjust] + (target - s)
		if next == vals[adjust] {
			// Too small to move by the difference: nudge one ULP toward
			// the target.
			if s < target {
				next = math.Nextafter(vals[adjust], math.Inf(1))
			} else {
				next = math.Nextafter(vals[adjust], math.Inf(-1))
			}
		}
		if math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		vals[adjust] = next
	}
	// Guaranteed fallback.
	for i := range vals {
		vals[i] = 0
	}
	vals[adjust] = target
}
