package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bvap/internal/hwsim"
	"bvap/internal/telemetry"
)

func TestExportTrace(t *testing.T) {
	p := NewForPatterns([]string{"aa"}, Options{Buckets: 8})
	// Three steps with known occupancy and one stall burst.
	p.StepDone(1, 4, 0)
	p.Stall(hwsim.StallBVM, 2)
	p.StepDone(2, 6, 0) // spans cycles 1-2
	p.StepDone(1, 1, 0)

	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf, telemetry.FormatJSONL)
	p.ExportTrace(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var occ, stall []telemetry.Event
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if ev.Ph != "C" {
			t.Fatalf("non-counter event %+v", ev)
		}
		switch ev.Name {
		case TrackOccupancy:
			occ = append(occ, ev)
		case TrackStalls:
			stall = append(stall, ev)
		case TrackTileOccupancy:
			t.Fatalf("pattern-only profiler emitted a tile track: %+v", ev)
		default:
			t.Fatalf("unknown track %q", ev.Name)
		}
	}
	// Bucket width is 1 cycle: occupancy samples land at their exact
	// cycles with per-cycle scaling = 1.
	if len(occ) != 4 {
		t.Fatalf("occupancy samples: %d, want 4", len(occ))
	}
	wantOcc := []float64{4, 6, 0, 1} // step 2 stamps at its pre-step clock
	for i, ev := range occ {
		if ev.Ts != float64(i) {
			t.Fatalf("occ[%d] at ts %v", i, ev.Ts)
		}
		if got := ev.Args["states"]; got != wantOcc[i] {
			t.Fatalf("occ[%d] = %v, want %v", i, got, wantOcc[i])
		}
	}
	if len(stall) == 0 {
		t.Fatal("no stall samples")
	}
	// The stall burst was stamped at cycle 1 with 2 cycles.
	found := false
	for _, ev := range stall {
		if ev.Ts == 1 && ev.Args["bvm"] == 2.0 {
			found = true
		}
		if _, ok := ev.Args["io_input"]; !ok {
			t.Fatalf("stall sample lacks cause series: %v", ev.Args)
		}
	}
	if !found {
		t.Fatalf("stall burst not exported: %+v", stall)
	}
}

func TestExportTraceNilSafe(t *testing.T) {
	var p *Profiler
	p.ExportTrace(nil) // nil profiler, nil tracer: no panic
	q := NewForPatterns([]string{"a"}, Options{})
	q.ExportTrace(nil) // nil tracer only

	// An empty profiler exports nothing but stays valid.
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf, telemetry.FormatJSONL)
	q.ExportTrace(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "" {
		t.Fatalf("empty profiler exported: %q", buf.String())
	}
}
