package profile

// Heatmap is a fixed-width, cycle-bucketed activity matrix: rows are
// spatial units (tiles, stall causes, or a single aggregate row) and
// columns are consecutive windows of simulated cycles. The column count is
// fixed at construction; when a run outgrows the covered range the bucket
// width doubles and adjacent column pairs merge in place, so memory stays
// O(rows × columns) regardless of run length and no sample is ever
// dropped. Cell values are event sums (active-STE counts, stall cycles)
// over the bucket's cycle window.
type Heatmap struct {
	rows, cols   int
	bucketCycles uint64
	maxCycle     uint64 // highest cycle stamped so far
	stamped      bool
	data         []float64 // rows × cols, row-major
}

// newHeatmap allocates a rows × cols heatmap with 1-cycle buckets. cols is
// rounded up to an even number so pair-merging is exact.
func newHeatmap(rows, cols int) *Heatmap {
	if rows < 1 {
		rows = 1
	}
	if cols < 2 {
		cols = 2
	}
	if cols%2 == 1 {
		cols++
	}
	return &Heatmap{rows: rows, cols: cols, bucketCycles: 1, data: make([]float64, rows*cols)}
}

// add accumulates v into the bucket covering cycle on the given row,
// widening buckets as needed. Out-of-range rows are ignored (defensive:
// a hostile sink driver must not panic the profiler).
func (h *Heatmap) add(row int, cycle uint64, v float64) {
	if h == nil || row < 0 || row >= h.rows {
		return
	}
	for cycle/h.bucketCycles >= uint64(h.cols) {
		h.rescale()
	}
	h.data[row*h.cols+int(cycle/h.bucketCycles)] += v
	if !h.stamped || cycle > h.maxCycle {
		h.maxCycle = cycle
		h.stamped = true
	}
}

// rescale doubles the bucket width, merging adjacent column pairs.
func (h *Heatmap) rescale() {
	half := h.cols / 2
	for r := 0; r < h.rows; r++ {
		base := r * h.cols
		for c := 0; c < half; c++ {
			h.data[base+c] = h.data[base+2*c] + h.data[base+2*c+1]
		}
		for c := half; c < h.cols; c++ {
			h.data[base+c] = 0
		}
	}
	h.bucketCycles *= 2
}

// Rows returns the row count.
func (h *Heatmap) Rows() int {
	if h == nil {
		return 0
	}
	return h.rows
}

// Cols returns the fixed column (bucket) count.
func (h *Heatmap) Cols() int {
	if h == nil {
		return 0
	}
	return h.cols
}

// BucketCycles returns the current width of one column in cycles.
func (h *Heatmap) BucketCycles() uint64 {
	if h == nil {
		return 0
	}
	return h.bucketCycles
}

// UsedCols returns how many leading columns cover stamped cycles — the
// range worth rendering. Zero for an empty heatmap.
func (h *Heatmap) UsedCols() int {
	if h == nil || !h.stamped {
		return 0
	}
	return int(h.maxCycle/h.bucketCycles) + 1
}

// Value returns one cell; out-of-range indices read as 0.
func (h *Heatmap) Value(row, col int) float64 {
	if h == nil || row < 0 || row >= h.rows || col < 0 || col >= h.cols {
		return 0
	}
	return h.data[row*h.cols+col]
}

// Row returns a copy of one row.
func (h *Heatmap) Row(row int) []float64 {
	if h == nil || row < 0 || row >= h.rows {
		return nil
	}
	out := make([]float64, h.cols)
	copy(out, h.data[row*h.cols:(row+1)*h.cols])
	return out
}

// Matrix returns a copy of the full matrix, trimmed to UsedCols columns.
// Rows are preserved even when empty, so row indices stay meaningful.
func (h *Heatmap) Matrix() [][]float64 {
	if h == nil {
		return nil
	}
	used := h.UsedCols()
	out := make([][]float64, h.rows)
	for r := range out {
		out[r] = make([]float64, used)
		copy(out[r], h.data[r*h.cols:r*h.cols+used])
	}
	return out
}

// Max returns the largest cell value (0 for an empty map).
func (h *Heatmap) Max() float64 {
	if h == nil {
		return 0
	}
	max := 0.0
	for _, v := range h.data {
		if v > max {
			max = v
		}
	}
	return max
}
