package profile

import (
	"fmt"

	"bvap/internal/hwsim"
	"bvap/internal/telemetry"
)

// Counter-track names emitted by ExportTrace.
const (
	TrackTileOccupancy = "tile_occupancy"
	TrackStalls        = "stall_cycles"
	TrackOccupancy     = "active_states"
)

// maxTraceTiles caps how many per-tile series ExportTrace emits; the
// Chrome viewer becomes unreadable beyond a few dozen stacked series, and
// hot placements concentrate on low tile indices.
const maxTraceTiles = 32

// ExportTrace converts the profiler's heatmaps into Chrome counter tracks
// on the virtual (cycle-number) time axis: one multi-series track of
// per-tile occupancy, one of stall cycles by cause, and one of aggregate
// active states. Each bucket becomes one counter sample at the bucket's
// start cycle, scaled to a per-cycle average so bucket-width doubling does
// not change the track's magnitude. A nil tracer is a no-op.
func (p *Profiler) ExportTrace(tr *telemetry.Tracer) {
	if tr == nil || p == nil {
		return
	}
	exportHeatmap(tr, TrackOccupancy, p.occupancy, func(int) string { return "states" })
	if p.tileHeat != nil {
		rows := p.tileHeat.Rows()
		if rows > maxTraceTiles {
			rows = maxTraceTiles
		}
		exportRows(tr, TrackTileOccupancy, p.tileHeat, rows, func(r int) string {
			return fmt.Sprintf("tile%d", r)
		})
	}
	exportHeatmap(tr, TrackStalls, p.stallHeat, func(r int) string {
		return hwsim.StallCause(r).String()
	})
}

func exportHeatmap(tr *telemetry.Tracer, name string, h *Heatmap, label func(int) string) {
	exportRows(tr, name, h, h.Rows(), label)
}

func exportRows(tr *telemetry.Tracer, name string, h *Heatmap, rows int, label func(int) string) {
	used := h.UsedCols()
	if used == 0 || rows == 0 {
		return
	}
	keys := make([]string, rows)
	for r := 0; r < rows; r++ {
		keys[r] = label(r)
	}
	perCycle := 1 / float64(h.BucketCycles())
	values := make([]float64, rows)
	for c := 0; c < used; c++ {
		for r := 0; r < rows; r++ {
			values[r] = h.Value(r, c) * perCycle
		}
		tr.CounterSeriesAt(float64(uint64(c)*h.BucketCycles()), name, keys, values)
	}
}
