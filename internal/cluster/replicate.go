package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bvap/internal/telemetry"
)

// ErrReplicationQuorum is the sentinel under every QuorumError: a session
// checkpoint could not be acknowledged by the required number of distinct
// replicas. The driver sees it as a 503 and retries the checkpoint; the
// session's durable position simply does not advance until quorum returns.
var ErrReplicationQuorum = errors.New("cluster: replication quorum not reached")

// QuorumError reports a failed replication round: how many distinct
// replica acks were required, how many arrived, and the per-peer causes.
type QuorumError struct {
	Session string
	Need    int
	Acks    int
	Errs    map[string]error
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("cluster: session %s checkpoint replicated to %d/%d replicas", e.Session, e.Acks, e.Need)
}

func (e *QuorumError) Unwrap() error { return ErrReplicationQuorum }

// CheckpointRecord is one replicated durable unit of a streaming session:
// the BVCK checkpoint bytes at Pos, plus every match the session committed
// in (PrevPos, Pos] — the delta a recovering driver needs when its last
// checkpoint ack was lost. Origin is the node holding the live session
// when the record was written (or, during a handoff, the node custody is
// being transferred to), which is what makes adoption safe: a record is
// only adopted when its origin is self, dead, left, or unknown.
type CheckpointRecord struct {
	SessionID  string  `json:"session_id"`
	Pos        int64   `json:"pos"`
	PrevPos    int64   `json:"prev_pos"`
	Origin     string  `json:"origin"`
	Checkpoint []byte  `json:"checkpoint"`
	Matches    []Match `json:"matches,omitempty"`
	// Interval is the session's checkpoint cadence, so an adopting node
	// resumes with the same commit boundaries.
	Interval int `json:"interval,omitempty"`
}

// replicaStore is a node's local shelf of checkpoint records, version-gated
// by position: a put at a position older than what's held is a no-op, so
// redeliveries and read-repair pushes are idempotent and never roll a
// session's durable state backwards.
type replicaStore struct {
	mu   sync.Mutex
	recs map[string]CheckpointRecord
}

func newReplicaStore() *replicaStore {
	return &replicaStore{recs: map[string]CheckpointRecord{}}
}

// put installs rec unless a same-session record at a newer position is
// already held; it reports whether rec is now (or already was) current.
func (s *replicaStore) put(rec CheckpointRecord) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.recs[rec.SessionID]; ok && cur.Pos > rec.Pos {
		return false
	}
	s.recs[rec.SessionID] = rec
	return true
}

func (s *replicaStore) get(id string) (CheckpointRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	return rec, ok
}

func (s *replicaStore) delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.recs, id)
}

// ids returns the held session ids, sorted.
func (s *replicaStore) ids() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.recs))
	for id := range s.recs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// replicator pushes checkpoint records to the ring's failover chain and
// pulls them back (read-repair) on resume.
type replicator struct {
	self     string
	replicas int
	client   *Client
	ring     func() *Ring
	store    *replicaStore
	cRep     *telemetry.CounterVec
}

func newReplicator(self string, replicas int, client *Client, ring func() *Ring, store *replicaStore, metrics *telemetry.Registry) *replicator {
	r := &replicator{self: self, replicas: replicas, client: client, ring: ring, store: store}
	if metrics != nil {
		r.cRep = metrics.CounterVec("bvap_cluster_replicate_total", "Checkpoint replication rounds by outcome.", "outcome")
	}
	return r
}

// owners returns the record's current failover chain — the first
// min(replicas, ring size) distinct owners of its session key.
func (r *replicator) owners(id string) []string {
	ring := r.ring()
	if ring == nil {
		return nil
	}
	return ring.Owners(id, r.replicas)
}

// replicate stores rec locally and pushes it synchronously to every other
// owner in the failover chain, requiring min(replicas, ring size) distinct
// chain members to hold the bytes. Self only counts toward quorum when it
// is in the chain (a session can briefly live on a non-owner around an
// epoch change; its local copy is then a bonus, not a vote).
func (r *replicator) replicate(ctx context.Context, rec CheckpointRecord) error {
	r.store.put(rec)
	owners := r.owners(rec.SessionID)
	need := r.replicas
	if len(owners) < need {
		need = len(owners)
	}
	if need == 0 {
		return nil
	}
	acks := 0
	for _, owner := range owners {
		if owner == r.self {
			acks++ // before any goroutine: the self vote must not race theirs
		}
	}
	var mu sync.Mutex
	errs := map[string]error{}
	var wg sync.WaitGroup
	for _, owner := range owners {
		if owner == r.self {
			continue
		}
		wg.Add(1)
		go func(owner string) {
			defer wg.Done()
			err := r.client.PostJSON(ctx, owner, "/cluster/checkpoint/put", rec, nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[owner] = err
			} else {
				acks++
			}
		}(owner)
	}
	wg.Wait()
	if acks < need {
		if r.cRep != nil {
			r.cRep.With("quorum_fail").Inc()
		}
		return &QuorumError{Session: rec.SessionID, Need: need, Acks: acks, Errs: errs}
	}
	if r.cRep != nil {
		r.cRep.With("ok").Inc()
	}
	return nil
}

// repair runs read-repair for one session: fetch the record from every
// chain member, keep the newest, install it locally, and push it back to
// any member that was behind (best-effort — a dead peer just stays
// behind). It returns the newest record found anywhere, or false when no
// chain member holds one.
func (r *replicator) repair(ctx context.Context, id string) (CheckpointRecord, bool) {
	best, ok := r.store.get(id)
	type fetched struct {
		owner string
		rec   CheckpointRecord
		ok    bool
	}
	owners := r.owners(id)
	results := make([]fetched, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		if owner == r.self {
			continue
		}
		wg.Add(1)
		go func(i int, owner string) {
			defer wg.Done()
			var rec CheckpointRecord
			if err := r.client.PostJSON(ctx, owner, "/cluster/checkpoint/get", SessionRequest{SessionID: id}, &rec); err == nil {
				results[i] = fetched{owner: owner, rec: rec, ok: true}
			}
		}(i, owner)
	}
	wg.Wait()
	for _, f := range results {
		if f.ok && (!ok || f.rec.Pos > best.Pos) {
			best, ok = f.rec, true
		}
	}
	if !ok {
		return CheckpointRecord{}, false
	}
	r.store.put(best)
	for _, f := range results {
		if f.owner != "" && (!f.ok || f.rec.Pos < best.Pos) {
			r.client.PostJSON(ctx, f.owner, "/cluster/checkpoint/put", best, nil)
		}
	}
	return best, true
}
