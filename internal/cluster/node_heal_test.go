package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"bvap"
	"bvap/internal/serve"
)

// healNode is one self-healing fleet member: service + membership + node,
// with the node handler served over HTTP and the client piggybacking
// gossip both ways.
type healNode struct {
	node *Node
	mem  *Membership
	svc  *bvap.Service
	srv  *httptest.Server
	dead bool
}

func (h *healNode) kill() {
	h.dead = true
	h.srv.CloseClientConnections()
	h.srv.Close()
}

// newHealFleet builds n nodes with replication factor r, joins them into
// one gossip fleet and ticks memberships until every ring view and epoch
// agree.
func newHealFleet(t *testing.T, n, r int) []*healNode {
	t.Helper()
	fleet := make([]*healNode, n)
	for i := range fleet {
		svc, err := bvap.NewService([]string{"ab{2}c"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		var node *Node
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, rq *http.Request) {
			node.Handler().ServeHTTP(w, rq)
		}))
		client := NewClient(ClientConfig{
			MaxAttempts:    1,
			AttemptTimeout: 2 * time.Second,
			Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
			Breaker:        serve.BreakerConfig{Threshold: 1 << 30},
		})
		mem := NewMembership(MembershipConfig{
			Self:           srv.URL,
			ProbeInterval:  5 * time.Millisecond,
			SuspectTimeout: 20 * time.Millisecond,
			Client:         client,
		})
		client.SetMembership(mem)
		node = NewNode(svc, NodeConfig{ID: fmt.Sprintf("n%d", i), Membership: mem, Client: client, Replicas: r})
		mem.SetOnChange(node.WakeRebalance)
		h := &healNode{node: node, mem: mem, svc: svc, srv: srv}
		t.Cleanup(func() {
			if !h.dead {
				srv.Close()
			}
			node.Close()
		})
		fleet[i] = h
	}
	ctx := context.Background()
	for _, h := range fleet[1:] {
		if err := h.mem.Join(ctx, []string{fleet[0].mem.Self()}); err != nil {
			t.Fatalf("join %s: %v", h.mem.Self(), err)
		}
	}
	convergeFleet(t, fleet)
	return fleet
}

// convergeFleet ticks every live member until all live ring views hold
// exactly the live set with equal epochs.
func convergeFleet(t *testing.T, fleet []*healNode) {
	t.Helper()
	ctx := context.Background()
	var want []string
	for _, h := range fleet {
		if !h.dead {
			want = append(want, h.srv.URL)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		ok := true
		var epoch uint64
		for _, h := range fleet {
			if h.dead {
				continue
			}
			h.mem.Tick(ctx)
			set := h.mem.Ring().Nodes()
			if len(set) != len(want) {
				ok = false
				break
			}
			for _, u := range want {
				if st, known := h.mem.State(u); !known || st != StateAlive {
					ok = false
				}
			}
			if epoch == 0 {
				epoch = h.mem.Epoch()
			} else if h.mem.Epoch() != epoch {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			return
		}
		select {
		case <-deadline:
			for _, h := range fleet {
				if !h.dead {
					t.Logf("%s: ring=%v epoch=%d", h.srv.URL, h.mem.Ring().Nodes(), h.mem.Epoch())
				}
			}
			t.Fatal("fleet did not converge")
		case <-time.After(time.Millisecond):
		}
	}
}

// Driver-side wire helpers. The heal driver deliberately uses a
// no-retry client: every failure routes through the sync recovery path.
func healClient() *Client {
	return NewClient(ClientConfig{
		MaxAttempts:    1,
		AttemptTimeout: 2 * time.Second,
		Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
		Breaker:        serve.BreakerConfig{Threshold: 1 << 30},
	})
}

func healFeed(cl *Client, base, id string, chunk []byte) (SessionResponse, error) {
	var resp SessionResponse
	err := cl.PostJSON(context.Background(), base, "/cluster/session/feed", SessionFeedRequest{SessionID: id, Chunk: chunk}, &resp)
	return resp, err
}

func healCheckpoint(cl *Client, base, id string) (SessionResponse, error) {
	var resp SessionResponse
	err := cl.PostJSON(context.Background(), base, "/cluster/session/checkpoint", SessionRequest{SessionID: id}, &resp)
	return resp, err
}

// healOwner resolves id's owner through any live node's ring view.
func healOwner(t *testing.T, cl *Client, base, id string) string {
	t.Helper()
	var view RingView
	if err := cl.GetJSON(context.Background(), base, "/cluster/ring?key="+url.QueryEscape(id), &view); err != nil {
		t.Fatalf("ring view from %s: %v", base, err)
	}
	if view.Owner == "" {
		t.Fatalf("no owner for %s in ring view of %s", id, base)
	}
	return view.Owner
}

// oracleMatches runs the full input through a fresh single engine — the
// ground truth any recovered delivery must equal byte-for-byte.
func oracleMatches(t *testing.T, input []byte) []Match {
	t.Helper()
	svc, err := bvap.NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ms, err := svc.Scan(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Match, 0, len(ms))
	for _, m := range ms {
		out = append(out, Match{Pattern: m.Pattern, End: m.End})
	}
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHealHandoffOnJoin: a join moves a key's ownership; the old owner's
// rebalance scan hands the live session off (replicate → transfer →
// close), the driver's next call 404s, and its sync recovery on the new
// owner re-delivers exactly the matches past its durable position.
func TestHealHandoffOnJoin(t *testing.T) {
	fleet := newHealFleet(t, 3, 2)
	a, b, c := fleet[0], fleet[1], fleet[2]
	_ = b

	// c participates in gossip from birth; carve it back out so we can
	// rehearse its join moving ownership. Simpler: pick the key with the
	// fleet's own rings — owned by a among {a,b}, by c among {a,b,c}.
	ring2 := NewRing(0)
	ring2.Add(a.srv.URL)
	ring2.Add(b.srv.URL)
	ring3 := a.mem.Ring()
	id := ""
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("handoff-%d", i)
		if ring2.Owner(cand) == a.srv.URL && ring3.Owner(cand) == c.srv.URL {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no key moves a→c; vnode layout degenerate")
	}

	// The session lives on a (as it would before c joined); feed one
	// block durably, one provisionally.
	cl := healClient()
	var opened SessionResponse
	if err := cl.PostJSON(context.Background(), a.srv.URL, "/cluster/session/open", SessionOpenRequest{SessionID: id, Interval: 4}, &opened); err != nil {
		t.Fatalf("open: %v", err)
	}
	input := []byte("xabbcxabbcxabbc")
	durable := struct {
		pos     int64
		matches []Match
	}{}
	r1, err := healFeed(cl, a.srv.URL, id, input[:5])
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
	prov := append([]Match(nil), r1.Matches...)
	ck, err := healCheckpoint(cl, a.srv.URL, id)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	prov = append(prov, ck.Matches...)
	durable.pos, durable.matches = ck.Pos, append([]Match(nil), prov...)
	r2, err := healFeed(cl, a.srv.URL, id, input[5:10])
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
	prov = append(prov, r2.Matches...) // provisional: no checkpoint after

	// Ownership is already c's in the joined ring; a's rebalance scan
	// must move the session.
	handoffs, _ := a.node.Rebalance(context.Background())
	if handoffs != 1 {
		t.Fatalf("Rebalance moved %d sessions, want 1", handoffs)
	}
	if h := a.node.Health(); h.Handoffs != 1 {
		t.Fatalf("handoff counter = %d, want 1", h.Handoffs)
	}

	// Old owner answers 404 now — the driver's signal to recover.
	if _, err := healFeed(cl, a.srv.URL, id, input[10:]); err == nil {
		t.Fatal("feed on old owner succeeded after handoff")
	} else {
		var pe *PeerError
		if !errors.As(err, &pe) || pe.Status != http.StatusNotFound {
			t.Fatalf("feed on old owner: %v, want 404", err)
		}
	}

	// Uniform recovery: truncate to durable, resolve owner, sync.
	log := append([]Match(nil), durable.matches...)
	owner := healOwner(t, cl, b.srv.URL, id)
	if owner != c.srv.URL {
		t.Fatalf("owner = %s, want %s", owner, c.srv.URL)
	}
	var sy SessionResponse
	if err := cl.PostJSON(context.Background(), owner, "/cluster/session/sync", SessionSyncRequest{SessionID: id, Have: durable.pos, Interval: 4}, &sy); err != nil {
		t.Fatalf("sync: %v", err)
	}
	log = append(log, sy.Matches...)
	// The handoff checkpointed at the session's full position, so the
	// sync lands past the driver's durable point and re-delivers the
	// provisional matches.
	if sy.Pos != 10 {
		t.Fatalf("sync pos = %d, want 10", sy.Pos)
	}
	r3, err := healFeed(cl, owner, id, input[sy.Pos:])
	if err != nil {
		t.Fatalf("feed after sync: %v", err)
	}
	log = append(log, r3.Matches...)
	var closed SessionResponse
	if err := cl.PostJSON(context.Background(), owner, "/cluster/session/close", SessionRequest{SessionID: id}, &closed); err != nil {
		t.Fatalf("close: %v", err)
	}
	log = append(log, closed.Matches...)

	if want := oracleMatches(t, input); !matchesEqual(log, want) {
		t.Fatalf("delivery diverged:\n got %v\nwant %v", log, want)
	}

	// The replicated close retired the records: no node may adopt the
	// finished stream back to life.
	for _, h := range fleet {
		if _, adoptions := h.node.Rebalance(context.Background()); adoptions != 0 {
			t.Fatalf("node %s resurrected a closed session", h.srv.URL)
		}
	}
}

// TestHealAdoptionAfterKill: the owner dies without ceremony mid-stream;
// survivors converge, the new ring owner adopts the session from its
// replicated checkpoint, and the driver — whose last checkpoint ack was
// lost — recovers the missing delta through sync. Exactly-once delivery
// is asserted against the single-engine oracle.
func TestHealAdoptionAfterKill(t *testing.T) {
	fleet := newHealFleet(t, 3, 2)
	cl := healClient()

	// Any key works; use the fleet's ring to find its owner.
	id := "adopt-0"
	owner := healOwner(t, cl, fleet[0].srv.URL, id)
	var victim *healNode
	for _, h := range fleet {
		if h.srv.URL == owner {
			victim = h
		}
	}
	input := []byte("xabbcxabbcxabbcxabbc")

	var opened SessionResponse
	if err := cl.PostJSON(context.Background(), owner, "/cluster/session/open", SessionOpenRequest{SessionID: id, Interval: 4}, &opened); err != nil {
		t.Fatalf("open: %v", err)
	}
	var log []Match
	var durablePos int64
	var durableLen int
	feedCk := func(lo, hi int, ackLost bool) {
		t.Helper()
		r, err := healFeed(cl, owner, id, input[lo:hi])
		if err != nil {
			t.Fatalf("feed[%d:%d]: %v", lo, hi, err)
		}
		log = append(log, r.Matches...)
		ck, err := healCheckpoint(cl, owner, id)
		if err != nil {
			t.Fatalf("checkpoint@%d: %v", hi, err)
		}
		log = append(log, ck.Matches...)
		if !ackLost {
			durablePos, durableLen = ck.Pos, len(log)
		}
	}
	feedCk(0, 5, false)
	// Second checkpoint replicates but its ack is "lost" — the driver's
	// durable state stays at the first checkpoint, so recovery must
	// re-deliver (5, 10] from the record's delta.
	feedCk(5, 10, true)

	victim.kill()
	convergeFleet(t, fleet)

	// Survivors' rebalance scans: the new owner adopts from its replica.
	adoptions := 0
	for _, h := range fleet {
		if h.dead {
			continue
		}
		_, a := h.node.Rebalance(context.Background())
		adoptions += a
	}
	if adoptions != 1 {
		t.Fatalf("adoptions = %d, want 1", adoptions)
	}

	// Driver recovery: truncate to durable state, re-resolve, sync.
	log = log[:durableLen]
	liveBase := ""
	for _, h := range fleet {
		if !h.dead {
			liveBase = h.srv.URL
			break
		}
	}
	newOwner := healOwner(t, cl, liveBase, id)
	if newOwner == owner {
		t.Fatal("ring still routes to the dead owner")
	}
	var sy SessionResponse
	if err := cl.PostJSON(context.Background(), newOwner, "/cluster/session/sync", SessionSyncRequest{SessionID: id, Have: durablePos, Interval: 4}, &sy); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if sy.Pos != 10 {
		t.Fatalf("sync pos = %d, want 10 (the lost-ack record)", sy.Pos)
	}
	log = append(log, sy.Matches...)
	r, err := healFeed(cl, newOwner, id, input[sy.Pos:])
	if err != nil {
		t.Fatalf("feed after sync: %v", err)
	}
	log = append(log, r.Matches...)
	var closed SessionResponse
	if err := cl.PostJSON(context.Background(), newOwner, "/cluster/session/close", SessionRequest{SessionID: id}, &closed); err != nil {
		t.Fatalf("close: %v", err)
	}
	log = append(log, closed.Matches...)

	if want := oracleMatches(t, input); !matchesEqual(log, want) {
		t.Fatalf("delivery diverged:\n got %v\nwant %v", log, want)
	}
}

// TestHealQuorumDegradeAndRecover: with R=2 on a two-node fleet, a
// checkpoint taken while the replica peer is unreachable-but-not-yet-dead
// fails loudly with 503 (quorum), and succeeds again once membership
// declares the peer dead and the chain shrinks to the survivor.
func TestHealQuorumDegradeAndRecover(t *testing.T) {
	fleet := newHealFleet(t, 2, 2)
	cl := healClient()
	id := "quorum-0"
	owner := healOwner(t, cl, fleet[0].srv.URL, id)
	var holder, peer *healNode
	for _, h := range fleet {
		if h.srv.URL == owner {
			holder = h
		} else {
			peer = h
		}
	}
	if err := cl.PostJSON(context.Background(), owner, "/cluster/session/open", SessionOpenRequest{SessionID: id, Interval: 4}, nil); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := healFeed(cl, owner, id, []byte("xabbc")); err != nil {
		t.Fatalf("feed: %v", err)
	}
	if _, err := healCheckpoint(cl, owner, id); err != nil {
		t.Fatalf("checkpoint with both replicas up: %v", err)
	}

	// Peer down but still alive in the ring: R=2 is unsatisfiable and the
	// checkpoint must refuse rather than silently under-replicate.
	peer.kill()
	if _, err := healFeed(cl, owner, id, []byte("xabbc")); err != nil {
		t.Fatalf("feed: %v", err)
	}
	_, err := healCheckpoint(cl, owner, id)
	var pe *PeerError
	if err == nil || !errors.As(err, &pe) || pe.Status != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint during partition: %v, want 503 quorum refusal", err)
	}

	// Once the peer is declared dead the chain is just the survivor and
	// min(R, chain) = 1: durability degrades explicitly with the fleet.
	convergeFleet(t, fleet)
	ck, err := healCheckpoint(cl, owner, id)
	if err != nil {
		t.Fatalf("checkpoint after convergence: %v", err)
	}
	// The refused round kept accumulating: the eventual record must span
	// the whole range and carry both blocks' matches.
	if ck.Pos != 10 {
		t.Fatalf("checkpoint pos = %d, want 10", ck.Pos)
	}
	if h := holder.node.Health(); h.Epoch == 1 {
		t.Fatal("epoch did not advance across the failure")
	}
}
