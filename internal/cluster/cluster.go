package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PublishError is a failed fleet-wide publish, annotated with the phase
// that stopped the round and the per-peer causes. After a "prepare" or
// "fingerprint" failure no node published anything (rollback by
// non-publication); after a "commit" failure the fleet may be split —
// re-run Publish with a fresh ticket to converge (prepare/commit are
// idempotent per ticket on every node).
type PublishError struct {
	// Phase is "prepare", "fingerprint" or "commit".
	Phase string
	// Ticket is the round's ticket.
	Ticket string
	// Errs maps peer → cause for the peers that failed the phase.
	Errs map[string]error
}

func (e *PublishError) Error() string {
	peers := make([]string, 0, len(e.Errs))
	for p := range e.Errs {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: publish %s failed in %s phase on %d peer(s)", e.Ticket, e.Phase, len(peers))
	for _, p := range peers {
		fmt.Fprintf(&b, "; %s: %v", p, e.Errs[p])
	}
	return b.String()
}

// Coordinator drives fleet-wide operations over a peer set: the two-phase
// coordinated reload, and fleet introspection. It holds no durable state —
// any process (a deploy script, a node, a test driver) can coordinate, and
// a coordinator dying mid-round is safe: an unfinished prepare is rolled
// back by non-publication on every node, and a re-run with the same or a
// fresh ticket converges.
type Coordinator struct {
	client *Client
	peers  []string // base URLs
}

// NewCoordinator builds a coordinator over peers (base URLs).
func NewCoordinator(client *Client, peers []string) *Coordinator {
	return &Coordinator{client: client, peers: append([]string(nil), peers...)}
}

// Peers returns the coordinated peer set.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.peers...) }

// Publish runs the fleet-wide two-phase reload: prepare patterns on every
// peer in parallel (each node compiles, validates and calibrates but does
// not publish), verify every node staged the same engine fingerprint, and
// only then commit everywhere. Any prepare failure — one node refusing the
// candidate fails the round for all — aborts the ticket fleet-wide and no
// node publishes: the rolling upgrade cannot leave the fleet serving two
// different rule sets because one box had a bad day. Commit returns the
// per-peer generation sequences on success.
func (c *Coordinator) Publish(ctx context.Context, ticket string, patterns []string) (map[string]uint64, error) {
	return c.PublishTo(ctx, c.peers, ticket, patterns)
}

// PublishTo is Publish against an explicit peer set — for callers whose
// fleet membership changes between rounds (a ring shrinking under node
// kills) while the coordinator itself stays put.
func (c *Coordinator) PublishTo(ctx context.Context, peers []string, ticket string, patterns []string) (map[string]uint64, error) {
	round := &Coordinator{client: c.client, peers: append([]string(nil), peers...)}
	return round.publish(ctx, ticket, patterns)
}

func (c *Coordinator) publish(ctx context.Context, ticket string, patterns []string) (map[string]uint64, error) {
	if len(c.peers) == 0 {
		return nil, fmt.Errorf("cluster: publish %s: no peers", ticket)
	}

	// Phase 1: prepare everywhere, in parallel.
	prints := make([]string, len(c.peers))
	errs := c.fanout(func(i int) error {
		var resp PrepareResponse
		err := c.client.PostJSON(ctx, c.peers[i], "/cluster/prepare",
			PrepareRequest{Ticket: ticket, Patterns: patterns}, &resp)
		if err == nil {
			prints[i] = resp.Fingerprint
		}
		return err
	})
	if len(errs) > 0 {
		c.abort(ctx, ticket)
		return nil, &PublishError{Phase: "prepare", Ticket: ticket, Errs: errs}
	}

	// Phase 1b: every node must have staged a semantically identical
	// engine — equal fingerprints — before any node may publish.
	mismatches := map[string]error{}
	for i, fp := range prints {
		if fp != prints[0] {
			mismatches[c.peers[i]] = fmt.Errorf("staged fingerprint %s, peer %s staged %s", fp, c.peers[0], prints[0])
		}
	}
	if len(mismatches) > 0 {
		c.abort(ctx, ticket)
		return nil, &PublishError{Phase: "fingerprint", Ticket: ticket, Errs: mismatches}
	}

	// Phase 2: commit everywhere.
	gens := make([]uint64, len(c.peers))
	errs = c.fanout(func(i int) error {
		var resp CommitResponse
		err := c.client.PostJSON(ctx, c.peers[i], "/cluster/commit", TicketRequest{Ticket: ticket}, &resp)
		if err == nil {
			gens[i] = resp.Generation
		}
		return err
	})
	if len(errs) > 0 {
		// Peers that committed stay committed (publication is atomic per
		// node); the caller re-runs Publish to converge the rest.
		return nil, &PublishError{Phase: "commit", Ticket: ticket, Errs: errs}
	}
	out := make(map[string]uint64, len(c.peers))
	for i, p := range c.peers {
		out[p] = gens[i]
	}
	return out, nil
}

// abort tells every peer to drop the ticket; best-effort (an unreachable
// peer's staged candidate is garbage that can never publish — commit
// requires the coordinator to return to it, which this round never will).
func (c *Coordinator) abort(ctx context.Context, ticket string) {
	c.fanout(func(i int) error {
		return c.client.PostJSON(ctx, c.peers[i], "/cluster/abort", TicketRequest{Ticket: ticket}, nil)
	})
}

// fanout runs fn(i) for every peer concurrently and returns the non-nil
// errors keyed by peer URL.
func (c *Coordinator) fanout(fn func(i int) error) map[string]error {
	var wg sync.WaitGroup
	errList := make([]error, len(c.peers))
	for i := range c.peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errList[i] = fn(i)
		}(i)
	}
	wg.Wait()
	errs := map[string]error{}
	for i, err := range errList {
		if err != nil {
			errs[c.peers[i]] = err
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}
