package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bvap"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// testFleet is an in-process ring of fully observable nodes: every node
// carries a recorder and a metrics registry and knows the ring, so keyed
// scans hop to their owner and every hop leaves a span fragment behind.
type testFleet struct {
	nodes []*Node
	regs  []*telemetry.Registry
	recs  []*tracing.Recorder
	srvs  []*httptest.Server
	peers []string
	ring  *Ring
}

func newTestFleet(t *testing.T, size int, patterns []string) *testFleet {
	t.Helper()
	f := &testFleet{nodes: make([]*Node, size)}
	// Servers first: the ring is keyed by base URL, which the node configs
	// need, and which httptest only assigns at start. The handler closes
	// over the node slot so the node can be built afterwards.
	for i := 0; i < size; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.nodes[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		f.srvs = append(f.srvs, srv)
		f.peers = append(f.peers, srv.URL)
	}
	f.ring = NewRing(64)
	for _, p := range f.peers {
		f.ring.Add(p)
	}
	client := testClusterClient()
	for i := 0; i < size; i++ {
		reg := telemetry.NewRegistry()
		rec := tracing.NewRecorder(tracing.Config{Capacity: 128})
		svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{Metrics: reg})
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		n := NewNode(svc, NodeConfig{
			ID:       fmt.Sprintf("node-%d", i),
			Recorder: rec,
			Metrics:  reg,
			Self:     f.peers[i],
			Ring:     f.ring,
			Client:   client,
		})
		t.Cleanup(func() { n.Close(); svc.Close() })
		f.nodes[i] = n
		f.regs = append(f.regs, reg)
		f.recs = append(f.recs, rec)
	}
	return f
}

// keyOwnedBy finds a routing key whose ring owner is peer index want.
func (f *testFleet) keyOwnedBy(t *testing.T, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("stream-%d", i)
		if f.ring.Owner(key) == f.peers[want] {
			return key
		}
	}
	t.Fatal("no key found for owner")
	return ""
}

func TestRingRoutedScanStitchesAcrossNodes(t *testing.T) {
	f := newTestFleet(t, 3, []string{"ab{2}c"})
	client := testClusterClient()

	// Drive like bvapd's coordinator would: a root trace whose context the
	// cluster client propagates. The scan lands on node 0 but its key is
	// owned by node 2, forcing the forwarding hop.
	driver := tracing.NewRecorder(tracing.Config{Capacity: 16})
	ctx, root := driver.StartTrace(context.Background(), "http.scan")
	key := f.keyOwnedBy(t, 2)
	var resp ScanResponse
	if err := client.PostJSON(ctx, f.peers[0], "/cluster/scan",
		ScanRequest{Input: []byte("xabbc"), Key: key}, &resp); err != nil {
		t.Fatalf("scan: %v", err)
	}
	driver.Record(root)
	if resp.Node != "node-2" {
		t.Fatalf("scan executed on %q, want ring owner node-2", resp.Node)
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("matches = %v, want 1", resp.Matches)
	}

	// Assemble the fleet trace the way /debug/fleet/trace/{id} does.
	fed := NewFederator(client, f.peers, FederatorConfig{
		LocalID: "driver", Local: telemetry.NewRegistry(), LocalRecorder: driver,
	})
	st, err := fed.FleetTrace(context.Background(), root.ID())
	if err != nil {
		t.Fatalf("FleetTrace: %v", err)
	}
	if st.Orphans != 0 {
		out, _ := stitchedJSON(st)
		t.Fatalf("stitched trace has %d orphans:\n%s", st.Orphans, out)
	}
	if len(st.Roots) != 1 || st.Roots[0].Node != "driver" {
		t.Fatalf("roots = %+v, want single root on driver", st.Roots)
	}
	// Exactly one fragment per hop: driver, entry node, owner node.
	if st.Fragments != 3 {
		t.Fatalf("fragments = %d, want 3 (driver + node-0 + node-2)", st.Fragments)
	}
	wantNodes := map[string]bool{"driver": true, "node-0": true, "node-2": true}
	for _, n := range st.Nodes {
		if !wantNodes[n] {
			t.Fatalf("unexpected node %q in stitched trace (nodes %v)", n, st.Nodes)
		}
		delete(wantNodes, n)
	}
	if len(wantNodes) != 0 {
		t.Fatalf("hops missing from stitched trace: %v (got %v)", wantNodes, st.Nodes)
	}
	// The causal chain: driver root → driver client span → node-0 fragment
	// → node-0 forward span → node-0 client span → node-2 fragment.
	cur := st.Roots[0]
	depthNodes := []string{}
	for cur != nil {
		if cur.SpanID == "" {
			depthNodes = append(depthNodes, cur.Node)
		}
		if len(cur.Children) == 0 {
			cur = nil
		} else {
			cur = cur.Children[0]
		}
	}
	if len(depthNodes) != 3 || depthNodes[0] != "driver" || depthNodes[1] != "node-0" || depthNodes[2] != "node-2" {
		t.Fatalf("causal chain of fragments = %v, want [driver node-0 node-2]", depthNodes)
	}
}

func stitchedJSON(st *tracing.StitchedTrace) (string, error) {
	var sb strings.Builder
	err := st.WriteChrome(&sb)
	return sb.String(), err
}

func TestFederatorScrapeSumsExactly(t *testing.T) {
	f := newTestFleet(t, 3, []string{"ab{2}c"})
	client := testClusterClient()

	// Uneven load per node, applied directly through the service API.
	loads := []int{5, 17, 31}
	var want uint64
	for i, n := range loads {
		want += uint64(n)
		for j := 0; j < n; j++ {
			if _, err := f.nodes[i].svc.Scan(context.Background(), []byte("xabbc")); err != nil {
				t.Fatalf("scan node %d: %v", i, err)
			}
		}
	}

	fed := NewFederator(client, f.peers, FederatorConfig{})
	snap := fed.Scrape(context.Background())
	if snap.MergeErr != nil {
		t.Fatalf("merge: %v", snap.MergeErr)
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("scraped %d nodes, want 3", len(snap.Nodes))
	}
	for _, n := range snap.Nodes {
		if n.Err != nil {
			t.Fatalf("node %s scrape failed: %v", n.Node, n.Err)
		}
	}
	var got float64
	var found bool
	var gotCount, wantCount uint64
	for _, s := range snap.Fleet {
		if s.Name == "bvap_serve_scans_total" && s.Labels["outcome"] == "ok" {
			got, found = s.Value, true
		}
		if s.Name == "bvap_serve_scan_duration_ms" {
			gotCount = s.Count
		}
	}
	if !found || got != float64(want) {
		t.Fatalf("fleet scans_total{outcome=ok} = %v (found=%v), want exactly %d", got, found, want)
	}
	// Cross-check against the per-node registries: the fleet histogram
	// count is exactly the sum of per-node counts.
	for _, reg := range f.regs {
		for _, s := range reg.Snapshot() {
			if s.Name == "bvap_serve_scan_duration_ms" {
				wantCount += s.Count
			}
		}
	}
	if gotCount != wantCount {
		t.Fatalf("fleet duration count = %d, want %d", gotCount, wantCount)
	}
	if fed.Last() != snap {
		t.Fatal("Last() does not return the scrape")
	}
}

func TestFederatorToleratesDeadNode(t *testing.T) {
	f := newTestFleet(t, 2, []string{"ab{2}c"})
	dead := "http://127.0.0.1:1" // nothing listens there
	peers := append(append([]string(nil), f.peers...), dead)
	fed := NewFederator(testClusterClient(), peers, FederatorConfig{})

	snap := fed.Scrape(context.Background())
	if snap.MergeErr != nil {
		t.Fatalf("merge: %v", snap.MergeErr)
	}
	var failed int
	for _, n := range snap.Nodes {
		if n.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d nodes failed, want exactly the dead one", failed)
	}
	if len(snap.Fleet) == 0 {
		t.Fatal("fleet view empty despite two live nodes")
	}
}

// TestFederatorSelfScrapeNotDoubleCounted covers the bvapd convention of a
// -peers list that includes the coordinator's own URL: the local registry
// and recorder must not be counted a second time through the self-scrape.
func TestFederatorSelfScrapeNotDoubleCounted(t *testing.T) {
	f := newTestFleet(t, 2, []string{"ab{2}c"})
	client := testClusterClient()

	// node-0 is the coordinator: its registry/recorder are the federator's
	// Local side AND reachable through the peer list.
	fed := NewFederator(client, f.peers, FederatorConfig{
		Local: f.regs[0], LocalID: "node-0", LocalRecorder: f.recs[0],
	})

	loads := []int{4, 7}
	var want uint64
	for i, n := range loads {
		want += uint64(n)
		for j := 0; j < n; j++ {
			if _, err := f.nodes[i].svc.Scan(context.Background(), []byte("xabbc")); err != nil {
				t.Fatalf("scan node %d: %v", i, err)
			}
		}
	}
	snap := fed.Scrape(context.Background())
	if snap.MergeErr != nil {
		t.Fatalf("merge: %v", snap.MergeErr)
	}
	if len(snap.Nodes) != 2 {
		t.Fatalf("snapshot lists %d nodes, want 2 (self-scrape deduped)", len(snap.Nodes))
	}
	for _, s := range snap.Fleet {
		if s.Name == "bvap_serve_scans_total" && s.Labels["outcome"] == "ok" {
			if s.Value != float64(want) {
				t.Fatalf("fleet scans_total = %v, want %d (coordinator counted once)", s.Value, want)
			}
		}
	}

	// A trace recorded on the coordinator must stitch from exactly one
	// fragment, not the local copy plus its self-scraped duplicate.
	_, root := f.recs[0].StartTrace(context.Background(), "self.trace")
	f.recs[0].Record(root)
	st, err := fed.FleetTrace(context.Background(), root.ID())
	if err != nil {
		t.Fatalf("FleetTrace: %v", err)
	}
	if st.Fragments != 1 || st.Orphans != 0 {
		t.Fatalf("fragments = %d orphans = %d, want 1 fragment, 0 orphans", st.Fragments, st.Orphans)
	}
}

func TestFleetTraceNoFragments(t *testing.T) {
	f := newTestFleet(t, 2, []string{"ab{2}c"})
	fed := NewFederator(testClusterClient(), f.peers, FederatorConfig{})
	_, err := fed.FleetTrace(context.Background(), tracing.TraceID(0x1234))
	if !errors.Is(err, ErrNoFragments) {
		t.Fatalf("unknown trace: err = %v, want ErrNoFragments", err)
	}
}

func TestFleetHealthReport(t *testing.T) {
	f := newTestFleet(t, 3, []string{"ab{2}c"})
	fed := NewFederator(testClusterClient(), f.peers, FederatorConfig{})

	report := fed.Health(context.Background())
	if len(report.Nodes) != 3 {
		t.Fatalf("probed %d nodes, want 3", len(report.Nodes))
	}
	seenRing := map[int]bool{}
	for _, n := range report.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s probe failed: %s", n.Peer, n.Err)
		}
		if n.Health.Generation != 1 || n.Health.Fingerprint == "" {
			t.Fatalf("node health incomplete: %+v", n.Health)
		}
		seenRing[n.RingIndex] = true
	}
	if len(seenRing) != 3 {
		t.Fatalf("ring indexes not distinct: %v", seenRing)
	}
	// A homogeneous fleet has exactly one generation fingerprint.
	if len(report.Generations) != 1 {
		t.Fatalf("generations = %v, want one fingerprint", report.Generations)
	}

	// Tear the fleet: reload one node only; the report must show two
	// fingerprint groups.
	if _, err := f.nodes[0].svc.Reload(context.Background(), []string{"c{3}"}); err != nil {
		t.Fatalf("reload: %v", err)
	}
	report = fed.Health(context.Background())
	if len(report.Generations) != 2 {
		t.Fatalf("torn fleet not detected: generations = %v", report.Generations)
	}
}

// TestFederatorConcurrentScrapeAndTrace exercises the federator under
// concurrent use — meaningful under -race.
func TestFederatorConcurrentScrapeAndTrace(t *testing.T) {
	f := newTestFleet(t, 3, []string{"ab{2}c"})
	client := testClusterClient()
	fed := NewFederator(client, f.peers, FederatorConfig{})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var resp ScanResponse
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := client.PostJSON(context.Background(), f.peers[w%3], "/cluster/scan",
					ScanRequest{Input: []byte("xabbc"), Key: key}, &resp); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				snap := fed.Scrape(context.Background())
				if snap.MergeErr != nil {
					t.Errorf("merge: %v", snap.MergeErr)
					return
				}
				fed.Last()
				fed.Health(context.Background())
			}
		}()
	}
	wg.Wait()
}
