package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bvap"
	"bvap/internal/serve"
)

// testNode is one in-process cluster node: service + node surface + HTTP
// server.
type testNode struct {
	node *Node
	svc  *bvap.Service
	srv  *httptest.Server
}

func newTestNode(t *testing.T, id string, patterns []string, cfg *bvap.ServiceConfig) *testNode {
	t.Helper()
	svc, err := bvap.NewService(patterns, cfg)
	if err != nil {
		t.Fatalf("NewService(%s): %v", id, err)
	}
	n := NewNode(svc, NodeConfig{ID: id})
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(func() {
		srv.Close()
		n.Close()
		svc.Close()
	})
	return &testNode{node: n, svc: svc, srv: srv}
}

func testClusterClient() *Client {
	return NewClient(ClientConfig{
		MaxAttempts:    3,
		AttemptTimeout: 10 * time.Second,
		Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
	})
}

func TestCoordinatedPublishAllOrNothing(t *testing.T) {
	initial := []string{"ab{2}c"}
	var nodes []*testNode
	var peers []string
	for i := 0; i < 3; i++ {
		n := newTestNode(t, fmt.Sprintf("n%d", i), initial, nil)
		nodes = append(nodes, n)
		peers = append(peers, n.srv.URL)
	}
	coord := NewCoordinator(testClusterClient(), peers)

	// Healthy round: every node advances one generation, same fingerprint.
	gens, err := coord.Publish(context.Background(), "round-1", []string{"ab{2}c", "c{3}"})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	for _, n := range nodes {
		if got := n.svc.Generation(); got != 2 {
			t.Fatalf("node %s at generation %d after publish, want 2", n.node.cfg.ID, got)
		}
		if gens[n.srv.URL] != 2 {
			t.Fatalf("publish reported generation %d for %s", gens[n.srv.URL], n.srv.URL)
		}
	}
	fp := nodes[0].svc.Engine().Fingerprint()
	for _, n := range nodes[1:] {
		if n.svc.Engine().Fingerprint() != fp {
			t.Fatal("fleet serving different fingerprints after coordinated publish")
		}
	}

	// Failed round: a candidate that cannot compile anywhere is rejected in
	// prepare on every node, and NO node advances — rollback by
	// non-publication.
	_, err = coord.Publish(context.Background(), "round-2", []string{"((("})
	var pub *PublishError
	if !errors.As(err, &pub) || pub.Phase != "prepare" {
		t.Fatalf("bad-candidate publish = %v, want *PublishError{Phase: prepare}", err)
	}
	for _, n := range nodes {
		if got := n.svc.Generation(); got != 2 {
			t.Fatalf("node %s moved to generation %d after a failed round", n.node.cfg.ID, got)
		}
	}

	// Idempotent replay: re-running a committed ticket converges without
	// double-applying.
	if _, err := coord.Publish(context.Background(), "round-1", []string{"ab{2}c", "c{3}"}); err != nil {
		t.Fatalf("replaying committed round: %v", err)
	}
	for _, n := range nodes {
		if got := n.svc.Generation(); got != 2 {
			t.Fatalf("replayed commit advanced node %s to %d", n.node.cfg.ID, got)
		}
	}
}

func TestCoordinatedPublishAbortsWhenOneNodeFails(t *testing.T) {
	good := newTestNode(t, "good", []string{"ab{2}c"}, nil)
	// The bad node refuses every prepare.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"disk full"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()

	coord := NewCoordinator(testClusterClient(), []string{good.srv.URL, bad.URL})
	_, err := coord.Publish(context.Background(), "t1", []string{"c{3}"})
	var pub *PublishError
	if !errors.As(err, &pub) || pub.Phase != "prepare" {
		t.Fatalf("publish with one failing node = %v, want prepare-phase PublishError", err)
	}
	if _, ok := pub.Errs[bad.URL]; !ok {
		t.Fatalf("PublishError does not name the failing peer: %v", pub.Errs)
	}
	// The healthy node must NOT have published (two-phase property), and
	// its staged candidate must be gone (abort reached it).
	if got := good.svc.Generation(); got != 1 {
		t.Fatalf("healthy node advanced to generation %d though the round failed", got)
	}
	good.node.mu.Lock()
	staged := len(good.node.staged)
	good.node.mu.Unlock()
	if staged != 0 {
		t.Fatalf("%d staged tickets left on the healthy node after abort", staged)
	}
}

// TestRepublishOldSetAfterNewerPublish is the rollback scenario: publish
// A, publish B, then publish A again under A's original (deterministic)
// ticket. The committed ticket from the first round must not replay — the
// fleet has moved since — so the re-publish opens a fresh round and every
// node actually serves A again.
func TestRepublishOldSetAfterNewerPublish(t *testing.T) {
	setA := []string{"ab{2}c", "c{3}"}
	setB := []string{"zz{4}q"}
	var nodes []*testNode
	var peers []string
	for i := 0; i < 3; i++ {
		n := newTestNode(t, fmt.Sprintf("n%d", i), []string{"ab{2}c"}, nil)
		nodes = append(nodes, n)
		peers = append(peers, n.srv.URL)
	}
	coord := NewCoordinator(testClusterClient(), peers)
	ctx := context.Background()

	if _, err := coord.Publish(ctx, "ticket-A", setA); err != nil {
		t.Fatalf("publish A: %v", err)
	}
	fpA := nodes[0].svc.Engine().Fingerprint()
	if _, err := coord.Publish(ctx, "ticket-B", setB); err != nil {
		t.Fatalf("publish B: %v", err)
	}
	// Roll back: same set, same ticket as the first round.
	gens, err := coord.Publish(ctx, "ticket-A", setA)
	if err != nil {
		t.Fatalf("re-publish A: %v", err)
	}
	for _, n := range nodes {
		if got := n.svc.Generation(); got != 4 {
			t.Fatalf("node %s at generation %d after rollback, want 4 (fresh round, not a stale-ticket replay)", n.node.cfg.ID, got)
		}
		if gens[n.srv.URL] != 4 {
			t.Fatalf("rollback reported generation %d for %s, want 4", gens[n.srv.URL], n.srv.URL)
		}
		if got := n.svc.Engine().Fingerprint(); got != fpA {
			t.Fatalf("node %s serving fingerprint %016x after rollback, want A's %016x", n.node.cfg.ID, got, fpA)
		}
	}
}

// TestCommittedTicketDropsPreparedEngine checks the staged map does not
// pin compiled engines (or grow) across repeated coordinated reloads: a
// resolved ticket keeps only {committed, gen} and superseded tickets are
// swept at the next prepare.
func TestCommittedTicketDropsPreparedEngine(t *testing.T) {
	n := newTestNode(t, "m", []string{"ab{2}c"}, nil)
	coord := NewCoordinator(testClusterClient(), []string{n.srv.URL})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := coord.Publish(ctx, fmt.Sprintf("round-%d", i), []string{fmt.Sprintf("ab{%d}c", i+2)}); err != nil {
			t.Fatalf("publish round %d: %v", i, err)
		}
	}
	n.node.mu.Lock()
	defer n.node.mu.Unlock()
	if len(n.node.staged) > 1 {
		t.Fatalf("%d tickets retained after 8 rounds, want ≤ 1 (the current generation's)", len(n.node.staged))
	}
	for id, tk := range n.node.staged {
		if tk.prep != nil {
			t.Fatalf("committed ticket %s still holds its PreparedReload", id)
		}
	}
}

// TestConcurrentPrepareSameTicket hammers one ticket with concurrent
// prepares: every caller must get 200 with the winner's fingerprint (the
// loser path must not re-read the consumed request body), and exactly one
// candidate may stay staged.
func TestConcurrentPrepareSameTicket(t *testing.T) {
	n := newTestNode(t, "p", []string{"ab{2}c"}, nil)
	client := testClusterClient()
	ctx := context.Background()

	const workers = 8
	resps := make([]PrepareResponse, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = client.PostJSON(ctx, n.srv.URL, "/cluster/prepare",
				PrepareRequest{Ticket: "shared", Patterns: []string{"c{3}"}}, &resps[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent prepare %d: %v", i, errs[i])
		}
		if resps[i].Fingerprint != resps[0].Fingerprint {
			t.Fatalf("prepare %d staged fingerprint %s, prepare 0 staged %s", i, resps[i].Fingerprint, resps[0].Fingerprint)
		}
	}
	n.node.mu.Lock()
	staged := len(n.node.staged)
	n.node.mu.Unlock()
	if staged != 1 {
		t.Fatalf("%d tickets staged after concurrent prepares of one ticket, want 1", staged)
	}
}

// TestConcurrentCommitSameTicket: concurrent commits of one prepared
// ticket must all succeed with the same generation — one publication, the
// rest replays — never a spurious stale refusal.
func TestConcurrentCommitSameTicket(t *testing.T) {
	n := newTestNode(t, "c", []string{"ab{2}c"}, nil)
	client := testClusterClient()
	ctx := context.Background()

	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/prepare",
		PrepareRequest{Ticket: "t", Patterns: []string{"c{3}"}}, nil); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	const workers = 8
	resps := make([]CommitResponse, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = client.PostJSON(ctx, n.srv.URL, "/cluster/commit",
				TicketRequest{Ticket: "t"}, &resps[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent commit %d: %v", i, errs[i])
		}
		if resps[i].Generation != 2 {
			t.Fatalf("concurrent commit %d returned generation %d, want 2", i, resps[i].Generation)
		}
	}
	if got := n.svc.Generation(); got != 2 {
		t.Fatalf("node at generation %d after concurrent commits, want 2 (exactly one publication)", got)
	}
}

// TestDuplicateSessionOpenDoesNotLeak: the losing open must close its
// freshly opened session instead of abandoning the checked-out stream,
// and must not disturb the established one.
func TestDuplicateSessionOpenDoesNotLeak(t *testing.T) {
	n := newTestNode(t, "d", []string{"ab{2}c"}, nil)
	client := testClusterClient()
	ctx := context.Background()

	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/session/open",
		SessionOpenRequest{SessionID: "dup"}, nil); err != nil {
		t.Fatalf("first open: %v", err)
	}
	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/session/open",
		SessionOpenRequest{SessionID: "dup"}, nil); err == nil {
		t.Fatal("duplicate open succeeded, want refusal")
	}
	// The original session still works, and closing it frees the id.
	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/session/feed",
		SessionFeedRequest{SessionID: "dup", Chunk: []byte("xabbcx")}, nil); err != nil {
		t.Fatalf("feed after duplicate open: %v", err)
	}
	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/session/close",
		SessionRequest{SessionID: "dup"}, nil); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := client.PostJSON(ctx, n.srv.URL, "/cluster/session/open",
		SessionOpenRequest{SessionID: "dup"}, nil); err != nil {
		t.Fatalf("re-open after close: %v", err)
	}
}

func TestSessionMigratesBetweenNodes(t *testing.T) {
	patterns := []string{"ab{2}c"}
	a := newTestNode(t, "a", patterns, nil)
	b := newTestNode(t, "b", patterns, nil)
	client := testClusterClient()
	ctx := context.Background()

	input := bytes.Repeat([]byte("xabbcx"), 300) // 1800 bytes, matches at every "abbc"
	wantEngine := bvap.MustCompile(patterns)
	want := wantEngine.FindAll(input)

	const sid = "stream-42"
	var open SessionResponse
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/open",
		SessionOpenRequest{SessionID: sid, Interval: 256}, &open); err != nil {
		t.Fatalf("open: %v", err)
	}

	var got []Match
	// First half on node a.
	half := len(input) / 2
	var feed SessionResponse
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/feed",
		SessionFeedRequest{SessionID: sid, Chunk: input[:half]}, &feed); err != nil {
		t.Fatalf("feed on a: %v", err)
	}
	got = append(got, feed.Matches...)

	// Checkpoint on a, resume on b — the migration.
	var ck SessionResponse
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/checkpoint",
		SessionRequest{SessionID: sid}, &ck); err != nil {
		t.Fatalf("checkpoint on a: %v", err)
	}
	got = append(got, ck.Matches...)
	if ck.Pos != int64(half) {
		t.Fatalf("checkpoint pos = %d, want %d", ck.Pos, half)
	}
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/close",
		SessionRequest{SessionID: sid}, nil); err != nil {
		t.Fatalf("close on a: %v", err)
	}
	var res SessionResponse
	if err := client.PostJSON(ctx, b.srv.URL, "/cluster/session/resume",
		SessionResumeRequest{SessionID: sid, Checkpoint: ck.Checkpoint, Interval: 256}, &res); err != nil {
		t.Fatalf("resume on b: %v", err)
	}
	if res.Pos != int64(half) {
		t.Fatalf("resumed pos = %d, want %d", res.Pos, half)
	}

	// Second half on node b, then close to flush the tail.
	if err := client.PostJSON(ctx, b.srv.URL, "/cluster/session/feed",
		SessionFeedRequest{SessionID: sid, Chunk: input[half:]}, &feed); err != nil {
		t.Fatalf("feed on b: %v", err)
	}
	got = append(got, feed.Matches...)
	var cl SessionResponse
	if err := client.PostJSON(ctx, b.srv.URL, "/cluster/session/close",
		SessionRequest{SessionID: sid}, &cl); err != nil {
		t.Fatalf("close on b: %v", err)
	}
	got = append(got, cl.Matches...)

	if len(got) != len(want) {
		t.Fatalf("migrated session delivered %d matches, oracle has %d", len(got), len(want))
	}
	for i, m := range got {
		if m.Pattern != want[i].Pattern || m.End != want[i].End {
			t.Fatalf("match %d = %+v, oracle %+v — migration broke report identity", i, m, want[i])
		}
	}
}

func TestSessionResumeRejectsForeignFingerprint(t *testing.T) {
	a := newTestNode(t, "a", []string{"ab{2}c"}, nil)
	b := newTestNode(t, "b", []string{"zz{4}q"}, nil) // different pattern set
	client := testClusterClient()
	ctx := context.Background()

	var open SessionResponse
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/open",
		SessionOpenRequest{SessionID: "s", Interval: 64}, &open); err != nil {
		t.Fatalf("open: %v", err)
	}
	var ck SessionResponse
	if err := client.PostJSON(ctx, a.srv.URL, "/cluster/session/checkpoint",
		SessionRequest{SessionID: "s"}, &ck); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	err := client.PostJSON(ctx, b.srv.URL, "/cluster/session/resume",
		SessionResumeRequest{SessionID: "s", Checkpoint: ck.Checkpoint}, nil)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Status != http.StatusConflict {
		t.Fatalf("foreign-fingerprint resume = %v, want 409 PeerError", err)
	}
}

func TestNodeScanRoutesTenantQuota(t *testing.T) {
	n := newTestNode(t, "q", []string{"ab{2}c"}, &bvap.ServiceConfig{
		TenantQuotas: map[string]bvap.QuotaConfig{"limited": {RatePerSec: 0.001, Burst: 2}},
	})
	hc := n.srv.Client()
	post := func(tenant string) int {
		req, _ := http.NewRequest(http.MethodPost, n.srv.URL+"/cluster/scan",
			bytes.NewReader([]byte(`{"input":"eGFiYmN4"}`))) // "xabbcx"
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if post("limited") != http.StatusOK || post("limited") != http.StatusOK {
		t.Fatal("limited tenant's burst refused")
	}
	if got := post("limited"); got != http.StatusTooManyRequests {
		t.Fatalf("over-quota scan returned %d, want 429", got)
	}
	for i := 0; i < 5; i++ {
		if got := post("other"); got != http.StatusOK {
			t.Fatalf("unmetered tenant refused with %d; quotas must be per tenant", got)
		}
	}
}
