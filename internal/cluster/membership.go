package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"bvap/internal/telemetry"
)

// MembershipConfig tunes the gossip membership layer.
type MembershipConfig struct {
	// Self is this node's own base URL — its identity in the ring and in
	// gossip. Required.
	Self string
	// ProbeInterval is the period of the direct-probe loop; values <= 0
	// select 1 second.
	ProbeInterval time.Duration
	// SuspectTimeout is how long a suspect member has to refute before
	// being declared dead; values <= 0 select 3×ProbeInterval.
	SuspectTimeout time.Duration
	// VirtualNodes is the ring's virtual-node count; values < 1 select the
	// NewRing default.
	VirtualNodes int
	// Client carries probes and the join/leave exchanges. Required for
	// Run/Join/Leave; a probe-less membership (tests) may omit it.
	Client *Client
	// Logger, when non-nil, receives state-transition and probe logs.
	Logger *slog.Logger
	// Metrics, when non-nil, exports the bvap_cluster_member_* gauges, the
	// epoch gauge and the probe counter.
	Metrics *telemetry.Registry
	// OnChange, when non-nil, is called (without internal locks held) after
	// every ring-set change with the new epoch. Callbacks may be invoked
	// concurrently from probe and handler goroutines; keep them cheap —
	// typically a non-blocking channel send that wakes a rebalancer.
	OnChange func(epoch uint64)
}

// Membership is a SWIM-style gossip membership table: every member carries
// a state (alive → suspect → dead, or left) and an incarnation number, a
// periodic probe loop detects failures first-hand, and full tables ride
// the BVGS wire form on probes, joins and piggybacked inter-node traffic.
// Merging is a per-member join (higher incarnation wins; at equal
// incarnation the higher state wins), so any gossip exchange pattern
// converges; a member clears its own suspicion by re-announcing itself at
// a higher incarnation (refutation).
//
// The alive+suspect subset forms the live consistent-hash ring, rebuilt on
// every set change under a monotonically increasing epoch: merges that
// change the set adopt max(local, remote)+1, merges that don't adopt
// max(local, remote) — so converged tables agree on both the set and the
// epoch. Safe for concurrent use.
type Membership struct {
	cfg MembershipConfig

	mu       sync.Mutex
	members  map[string]*memberEntry
	selfInc  uint64
	left     bool
	epoch    uint64
	ring     *Ring
	probeIdx int

	gAlive, gSuspect, gDead, gEpoch *telemetry.Gauge
	cProbe                          *telemetry.CounterVec
}

type memberEntry struct {
	state       MemberState
	incarnation uint64
	suspectedAt time.Time
}

// NewMembership builds a membership containing only self, alive, at epoch 1.
func NewMembership(cfg MembershipConfig) *Membership {
	if cfg.Self == "" {
		panic("cluster: MembershipConfig.Self is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 3 * cfg.ProbeInterval
	}
	m := &Membership{
		cfg:     cfg,
		members: map[string]*memberEntry{cfg.Self: {state: StateAlive}},
		epoch:   1,
	}
	if r := cfg.Metrics; r != nil {
		m.gAlive = r.Gauge("bvap_cluster_member_alive", "Members this node sees as alive.")
		m.gSuspect = r.Gauge("bvap_cluster_member_suspect", "Members this node sees as suspect.")
		m.gDead = r.Gauge("bvap_cluster_member_dead", "Members this node sees as dead or left.")
		m.gEpoch = r.Gauge("bvap_cluster_epoch", "This node's membership epoch.")
		m.cProbe = r.CounterVec("bvap_cluster_probe_total", "Direct membership probes by outcome.", "outcome")
	}
	m.mu.Lock()
	m.rebuildLocked()
	m.mu.Unlock()
	return m
}

// Self returns this node's ring identity.
func (m *Membership) Self() string { return m.cfg.Self }

// SetOnChange installs (or replaces) the ring-change callback — the
// membership is typically built before the Node whose rebalancer it must
// wake, so the wiring happens after construction.
func (m *Membership) SetOnChange(f func(epoch uint64)) {
	m.mu.Lock()
	m.cfg.OnChange = f
	m.mu.Unlock()
}

// Epoch returns the current membership epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Ring returns the current live ring (alive + suspect members). The
// returned ring is immutable from the membership's side — every set change
// installs a fresh one — so callers may hold it across calls.
func (m *Membership) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Members returns the full table, sorted by URL.
func (m *Membership) Members() []MemberRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.membersLocked()
}

func (m *Membership) membersLocked() []MemberRecord {
	out := make([]MemberRecord, 0, len(m.members))
	for url, e := range m.members {
		out = append(out, MemberRecord{URL: url, State: e.state, Incarnation: e.incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Snapshot returns this node's gossip payload: its full table and epoch.
func (m *Membership) Snapshot() []byte {
	m.mu.Lock()
	g := Gossip{From: m.cfg.Self, Epoch: m.epoch, Members: m.membersLocked()}
	m.mu.Unlock()
	return EncodeGossip(g)
}

// statePriority orders states for equal-incarnation ties: a claim of death
// outranks suspicion outranks life, so bad news sticks until refuted.
func statePriority(s MemberState) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	default: // StateLeft
		return 3
	}
}

func supersedes(rec MemberRecord, cur *memberEntry) bool {
	if rec.Incarnation != cur.incarnation {
		return rec.Incarnation > cur.incarnation
	}
	return statePriority(rec.State) > statePriority(cur.state)
}

// Merge folds a decoded gossip payload into the table, returning the epoch
// after the merge. Remote claims about self never stick: a non-alive claim
// at incarnation ≥ ours triggers refutation (self re-announced alive at a
// higher incarnation), which the next gossip exchange propagates.
func (m *Membership) Merge(g Gossip) uint64 {
	m.mu.Lock()
	oldSet := m.ringSetLocked()
	for _, rec := range g.Members {
		if rec.URL == m.cfg.Self {
			if rec.State != StateAlive && rec.Incarnation >= m.selfInc && !m.left {
				m.selfInc = rec.Incarnation + 1
				m.members[m.cfg.Self] = &memberEntry{state: StateAlive, incarnation: m.selfInc}
				m.logLocked("membership refuted remote claim", "claimed", rec.State.String(), "incarnation", m.selfInc)
			}
			continue
		}
		cur, ok := m.members[rec.URL]
		if !ok {
			m.members[rec.URL] = &memberEntry{state: rec.State, incarnation: rec.Incarnation, suspectedAt: time.Now()}
			m.logLocked("membership learned member", "member", rec.URL, "state", rec.State.String())
			continue
		}
		if supersedes(rec, cur) {
			if rec.State == StateSuspect && cur.state != StateSuspect {
				cur.suspectedAt = time.Now()
			}
			cur.state, cur.incarnation = rec.State, rec.Incarnation
		}
	}
	epoch := m.settleLocked(oldSet, g.Epoch)
	m.mu.Unlock()
	return epoch
}

// ringSetLocked returns the sorted alive+suspect member URLs.
func (m *Membership) ringSetLocked() []string {
	set := make([]string, 0, len(m.members))
	for url, e := range m.members {
		if e.state == StateAlive || e.state == StateSuspect {
			set = append(set, url)
		}
	}
	sort.Strings(set)
	return set
}

// settleLocked advances the epoch after a mutation — max(local, remote)
// when the ring set is unchanged, max+1 when it changed — rebuilds the
// ring and updates gauges; it returns the new epoch and arranges the
// OnChange callback (fired after the caller releases m.mu via the
// returned-to pattern: settleLocked temporarily drops the lock around the
// callback to keep callbacks lock-free).
func (m *Membership) settleLocked(oldSet []string, remoteEpoch uint64) uint64 {
	if remoteEpoch > m.epoch {
		m.epoch = remoteEpoch
	}
	newSet := m.ringSetLocked()
	changed := !equalStrings(oldSet, newSet)
	if changed {
		m.epoch++
		m.rebuildLocked()
		m.logLocked("membership ring changed", "members", len(newSet), "epoch", m.epoch)
	}
	m.updateGaugesLocked()
	epoch := m.epoch
	if changed && m.cfg.OnChange != nil {
		cb := m.cfg.OnChange
		m.mu.Unlock()
		cb(epoch)
		m.mu.Lock()
	}
	return epoch
}

func (m *Membership) rebuildLocked() {
	r := NewRing(m.cfg.VirtualNodes)
	for _, url := range m.ringSetLocked() {
		r.Add(url)
	}
	m.ring = r
	m.updateGaugesLocked()
}

func (m *Membership) updateGaugesLocked() {
	if m.gAlive == nil {
		return
	}
	var alive, suspect, dead int
	for _, e := range m.members {
		switch e.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		default:
			dead++
		}
	}
	m.gAlive.Set(float64(alive))
	m.gSuspect.Set(float64(suspect))
	m.gDead.Set(float64(dead))
	m.gEpoch.Set(float64(m.epoch))
}

func (m *Membership) logLocked(msg string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info(msg, append([]any{"self", m.cfg.Self}, args...)...)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HandleGossip merges a raw BVGS payload and returns this node's snapshot
// — the request/response halves of one gossip exchange (the body of the
// /cluster/gossip and /cluster/join handlers and of the piggyback headers).
func (m *Membership) HandleGossip(payload []byte) ([]byte, error) {
	g, err := DecodeGossip(payload)
	if err != nil {
		return nil, err
	}
	m.Merge(g)
	return m.Snapshot(), nil
}

// markSuspect records a first-hand probe failure: an alive member becomes
// suspect at its current incarnation and the timeout clock starts.
func (m *Membership) markSuspect(url string) {
	m.mu.Lock()
	e, ok := m.members[url]
	if !ok || e.state != StateAlive {
		m.mu.Unlock()
		return
	}
	oldSet := m.ringSetLocked()
	e.state = StateSuspect
	e.suspectedAt = time.Now()
	m.logLocked("membership suspects member", "member", url, "incarnation", e.incarnation)
	m.settleLocked(oldSet, 0) // suspect stays in the ring; no set change
	m.mu.Unlock()
}

// expireSuspects declares members dead whose suspicion outlived
// SuspectTimeout. Called from the probe loop; exported to tests via Tick.
func (m *Membership) expireSuspects(now time.Time) {
	m.mu.Lock()
	oldSet := m.ringSetLocked()
	expired := false
	for url, e := range m.members {
		if e.state == StateSuspect && now.Sub(e.suspectedAt) >= m.cfg.SuspectTimeout {
			e.state = StateDead
			expired = true
			m.logLocked("membership declares member dead", "member", url, "incarnation", e.incarnation)
		}
	}
	if expired {
		m.settleLocked(oldSet, 0)
	}
	m.mu.Unlock()
}

// probeTarget picks the next round-robin probe target among members that
// are alive or suspect (suspects are re-probed so a transient blip clears
// on the next exchange instead of waiting for refutation).
func (m *Membership) probeTarget() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var eligible []string
	for url, e := range m.members {
		if url != m.cfg.Self && (e.state == StateAlive || e.state == StateSuspect) {
			eligible = append(eligible, url)
		}
	}
	if len(eligible) == 0 {
		return ""
	}
	sort.Strings(eligible)
	m.probeIdx = (m.probeIdx + 1) % len(eligible)
	return eligible[m.probeIdx]
}

// GossipRequest carries one BVGS payload in a JSON body (POST
// /cluster/gossip, /cluster/join, /cluster/leave); GossipResponse returns
// the receiver's snapshot.
type (
	GossipRequest struct {
		Payload []byte `json:"payload"`
	}
	GossipResponse struct {
		Payload []byte `json:"payload"`
	}
)

// Tick runs one probe round: direct-probe the next target, merge its
// response (or mark it suspect on failure), then expire overdue suspects.
// Run calls this on ProbeInterval; tests call it directly for determinism.
func (m *Membership) Tick(ctx context.Context) {
	if target := m.probeTarget(); target != "" && m.cfg.Client != nil {
		var resp GossipResponse
		err := m.cfg.Client.PostJSON(ctx, target, "/cluster/gossip", GossipRequest{Payload: m.Snapshot()}, &resp)
		if err == nil {
			if g, derr := DecodeGossip(resp.Payload); derr == nil {
				m.Merge(g)
			} else {
				err = derr
			}
		}
		if err != nil {
			m.markSuspect(target)
			if m.cProbe != nil {
				m.cProbe.With("fail").Inc()
			}
			if m.cfg.Logger != nil {
				m.cfg.Logger.Debug("membership probe failed", "self", m.cfg.Self, "target", target, "err", err)
			}
		} else if m.cProbe != nil {
			m.cProbe.With("ok").Inc()
		}
	}
	m.expireSuspects(time.Now())
}

// Run drives the probe loop until ctx is canceled.
func (m *Membership) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Tick(ctx)
		}
	}
}

// Join announces this node to the fleet through any of the seed URLs,
// merging the first successful response (the seed's full table, which the
// next probe rounds spread everywhere else). If this node was previously
// declared dead under an older incarnation, the merge triggers refutation
// automatically.
func (m *Membership) Join(ctx context.Context, seeds []string) error {
	if m.cfg.Client == nil {
		return errors.New("cluster: membership has no client")
	}
	var errs []error
	for _, seed := range seeds {
		if seed == "" || seed == m.cfg.Self {
			continue
		}
		var resp GossipResponse
		if err := m.cfg.Client.PostJSON(ctx, seed, "/cluster/join", GossipRequest{Payload: m.Snapshot()}, &resp); err != nil {
			errs = append(errs, err)
			continue
		}
		g, err := DecodeGossip(resp.Payload)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		m.Merge(g)
		return nil
	}
	if len(errs) == 0 {
		return errors.New("cluster: no usable join seeds")
	}
	return fmt.Errorf("cluster: join failed against all %d seed(s): %w", len(errs), errors.Join(errs...))
}

// Leave performs the graceful half of shutdown: self transitions to left
// at a bumped incarnation (so the announcement supersedes any concurrent
// alive/suspect record) and the final table is pushed best-effort to every
// live member. After Leave the node stops refuting.
func (m *Membership) Leave(ctx context.Context) {
	m.mu.Lock()
	oldSet := m.ringSetLocked()
	m.left = true
	m.selfInc++
	m.members[m.cfg.Self] = &memberEntry{state: StateLeft, incarnation: m.selfInc}
	m.logLocked("membership leaving", "incarnation", m.selfInc)
	m.settleLocked(oldSet, 0)
	var peers []string
	for url, e := range m.members {
		if url != m.cfg.Self && (e.state == StateAlive || e.state == StateSuspect) {
			peers = append(peers, url)
		}
	}
	m.mu.Unlock()
	if m.cfg.Client == nil {
		return
	}
	payload := m.Snapshot()
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			m.cfg.Client.PostJSON(ctx, peer, "/cluster/leave", GossipRequest{Payload: payload}, nil)
		}(peer)
	}
	wg.Wait()
}

// State returns the table's view of one member (StateDead, false when
// unknown — an unknown peer is treated like a dead one by adoption and
// scrape-skip logic).
func (m *Membership) State(url string) (MemberState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if url == m.cfg.Self {
		if m.left {
			return StateLeft, true
		}
		return StateAlive, true
	}
	e, ok := m.members[url]
	if !ok {
		return StateDead, false
	}
	return e.state, true
}
