package cluster

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bvap"
	"bvap/internal/serve"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// NodeConfig tunes a cluster node.
type NodeConfig struct {
	// ID names the node in the ring and in /cluster/info.
	ID string
	// Recorder, when non-nil, adopts remote trace ids from TraceHeader so
	// the node's half of a cross-node request records (and is looked up)
	// under the coordinator's id, and serves span fragments at
	// /cluster/trace/{id} for the fleet stitcher.
	Recorder *tracing.Recorder
	// Metrics, when non-nil, is the node's registry, exported as a
	// serialized snapshot at /cluster/metrics for the federation scrape
	// loop.
	Metrics *telemetry.Registry
	// SessionInterval is the default checkpoint interval of sessions
	// opened without one; values < 1 select the service default.
	SessionInterval int
	// Self, Ring and Client enable ring-routed scans: a scan request
	// carrying a routing key that hashes to another ring member is
	// forwarded there (once — the forwarded request is marked, so
	// disagreeing ring views degrade to serving locally rather than
	// looping). Self is this node's own base URL as it appears in the
	// ring; all three must be set for forwarding to engage.
	Self   string
	Ring   *Ring
	Client *Client
	// Membership, when non-nil, replaces the static Ring with the gossip
	// membership's live ring and enables the self-healing surface: the
	// gossip/join/leave endpoints, /cluster/ring, checkpoint replication,
	// session sync and automatic re-placement. Wire the membership's
	// OnChange to WakeRebalance so epoch changes trigger a hand-off scan.
	Membership *Membership
	// Replicas is the checkpoint replication factor R when Membership is
	// set: every session checkpoint must be held by min(R, ring size)
	// distinct chain owners before it acks. Values < 1 select 1 (local
	// only — no remote durability).
	Replicas int
	// RebalanceInterval is the background hand-off/adoption scan cadence
	// (a belt under the epoch-change trigger); values <= 0 select 2s.
	RebalanceInterval time.Duration
	// Logger, when non-nil, receives hand-off/adoption/replication logs.
	Logger *slog.Logger
}

// Node is the cluster-facing surface of one bvapd process: HTTP handlers
// for the two-phase reload protocol (prepare/commit/abort), live session
// migration (open/feed/checkpoint/resume/close) and routed scans, all over
// the embedded *bvap.Service. Mount Handler under /cluster/. All handlers
// are safe for concurrent use.
type Node struct {
	cfg NodeConfig
	svc *bvap.Service

	mu       sync.Mutex
	staged   map[string]*stagedTicket
	sessions map[string]*nodeSession

	// Self-healing state (nil/inert without cfg.Membership).
	store       *replicaStore
	rep         *replicator
	rebalanceCh chan struct{}
	// placeMu serializes session placement transitions (sync rebuilds,
	// transfers, adoptions, replicated closes) so two recovery paths never
	// race to install the same session. Ordering: placeMu > ns.mu > n.mu.
	placeMu sync.Mutex

	handoffs  atomic.Uint64
	adoptions atomic.Uint64

	cHandoff, cAdopt, cDegraded *telemetry.Counter
	cSync                       *telemetry.CounterVec
}

// stagedTicket is one prepare round's node-local state, kept so prepare
// and commit are idempotent per ticket: a coordinator that dies and
// re-runs its round converges instead of double-applying.
//
// Locking: fingerprint and base are immutable after staging. prep is
// guarded by mu, which also serializes the Commit/Abort operation so
// concurrent commits of one ticket resolve to one publication plus
// replays. committed and gen are written with BOTH mu and the node mutex
// held (mu first), so readers holding either lock see a consistent pair —
// sweepStagedLocked reads them under the node mutex alone. prep is dropped
// the moment the ticket resolves (committed or dead), so a retained ticket
// no longer pins a compiled engine.
type stagedTicket struct {
	fingerprint uint64
	base        uint64

	mu        sync.Mutex
	prep      *bvap.PreparedReload // nil once committed or dead
	committed bool
	gen       uint64
}

// nodeSession is one migrated-able streaming session. Committed matches
// buffer here until the driver collects them in a feed/checkpoint/close
// response; the driver treats them as provisional until it persists a wire
// checkpoint taken at or after their positions (the exactly-once
// protocol — see the soak driver in internal/experiments).
type nodeSession struct {
	mu  sync.Mutex
	ss  *bvap.StreamSession
	buf []Match
	// delta accumulates every match committed since the last durable
	// (replicated) checkpoint record, independent of buf's collection
	// cycle — it becomes the next CheckpointRecord's match delta, the
	// range a recovering driver re-learns when a checkpoint ack was lost.
	delta []Match
	// lastDurable is the position of the session's last replicated record
	// (the next record's PrevPos).
	lastDurable int64
	// interval is the session's checkpoint interval, carried into records
	// so re-placement resumes with the same cadence.
	interval int
	// gone marks a session that was closed or handed off while a handler
	// still held its pointer; such handlers answer 404 so the driver
	// re-resolves ownership instead of feeding a corpse.
	gone bool
}

// NewNode wraps svc with the cluster surface.
func NewNode(svc *bvap.Service, cfg NodeConfig) *Node {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.RebalanceInterval <= 0 {
		cfg.RebalanceInterval = 2 * time.Second
	}
	if cfg.Membership != nil && cfg.Self == "" {
		cfg.Self = cfg.Membership.Self()
	}
	n := &Node{
		cfg:         cfg,
		svc:         svc,
		staged:      map[string]*stagedTicket{},
		sessions:    map[string]*nodeSession{},
		store:       newReplicaStore(),
		rebalanceCh: make(chan struct{}, 1),
	}
	if cfg.Membership != nil && cfg.Client != nil {
		n.rep = newReplicator(cfg.Self, cfg.Replicas, cfg.Client, n.ring, n.store, cfg.Metrics)
	}
	if r := cfg.Metrics; r != nil {
		n.cHandoff = r.Counter("bvap_cluster_handoff_total", "Sessions proactively handed off to their new ring owner.")
		n.cAdopt = r.Counter("bvap_cluster_adopt_total", "Orphaned sessions adopted from replicated checkpoints.")
		n.cDegraded = r.Counter("bvap_cluster_scan_degraded_total", "Keyed scans served locally because the ring owner was unreachable.")
		n.cSync = r.CounterVec("bvap_cluster_sync_total", "Session sync requests by outcome.", "outcome")
	}
	return n
}

// ring returns the live routing ring: the membership's when gossip is
// enabled, else the statically configured one (possibly nil).
func (n *Node) ring() *Ring {
	if n.cfg.Membership != nil {
		return n.cfg.Membership.Ring()
	}
	return n.cfg.Ring
}

// Match is the wire form of one committed match report.
type Match struct {
	// Pattern is the index of the matching pattern in the served set.
	Pattern int `json:"pattern"`
	// End is the absolute stream offset the match ends at.
	End int `json:"end"`
}

// Wire request/response bodies of the node endpoints. Exported so the
// coordinator, bvapd and the soak driver share one definition.
type (
	PrepareRequest struct {
		Ticket   string   `json:"ticket"`
		Patterns []string `json:"patterns"`
	}
	PrepareResponse struct {
		Fingerprint string `json:"fingerprint"` // hex engine fingerprint
		Base        uint64 `json:"base"`        // generation validated against
	}
	TicketRequest struct {
		Ticket string `json:"ticket"`
	}
	CommitResponse struct {
		Generation uint64 `json:"generation"`
	}
	SessionOpenRequest struct {
		SessionID string `json:"session_id"`
		Interval  int    `json:"interval,omitempty"`
	}
	SessionFeedRequest struct {
		SessionID string `json:"session_id"`
		Chunk     []byte `json:"chunk"`
	}
	SessionRequest struct {
		SessionID string `json:"session_id"`
	}
	SessionResumeRequest struct {
		SessionID  string `json:"session_id"`
		Checkpoint []byte `json:"checkpoint"`
		Interval   int    `json:"interval,omitempty"`
	}
	// SessionSyncRequest is the uniform driver recovery call: "my last
	// durable position is Have — land the session at its newest durable
	// checkpoint and hand me whatever I'm missing." The node read-repairs
	// the record across the failover chain, rebuilds the session from the
	// durable bytes, and answers with the durable position plus the match
	// delta covering (Have, Pos]. 404 means no chain member holds a record
	// at or past Have: with Have 0 the node instead opens a fresh session,
	// with Have > 0 it is a checkpoint-loss report.
	SessionSyncRequest struct {
		SessionID string `json:"session_id"`
		Have      int64  `json:"have"`
		Interval  int    `json:"interval,omitempty"`
	}
	// TransferRequest hands a session's custody to its new ring owner
	// during a re-placement: the durable record plus the session's
	// checkpoint cadence. The receiver stores the record and, when it is
	// the designated origin, resumes the session immediately.
	TransferRequest struct {
		Record   CheckpointRecord `json:"record"`
		Interval int              `json:"interval,omitempty"`
	}
	// RingView is one node's current view of the fleet (GET
	// /cluster/ring): the full member table, the membership epoch, and —
	// when the request carries ?key= — the key's owner under that view.
	// Operators diff views across nodes; drivers use Owner for placement.
	RingView struct {
		Node         string         `json:"node"`
		Self         string         `json:"self"`
		Epoch        uint64         `json:"epoch"`
		VirtualNodes int            `json:"virtual_nodes"`
		Replicas     int            `json:"replicas"`
		Members      []MemberRecord `json:"members"`
		Key          string         `json:"key,omitempty"`
		Owner        string         `json:"owner,omitempty"`
	}
	SessionResponse struct {
		// Pos is the committed stream position (the offset feeding resumes
		// from after a failure).
		Pos int64 `json:"pos"`
		// Checkpoint is the wire checkpoint (checkpoint endpoint only).
		Checkpoint []byte `json:"checkpoint,omitempty"`
		// Matches are the reports committed since the last collection.
		Matches []Match `json:"matches,omitempty"`
	}
	ScanRequest struct {
		Input []byte `json:"input"`
		// Tenant attributes the scan for quota accounting; the
		// TenantHeader, when set, takes precedence.
		Tenant string `json:"tenant,omitempty"`
		// Key, when set on a ring-enabled node, routes the scan to the
		// ring member owning the key (stream affinity); an empty key scans
		// locally.
		Key string `json:"key,omitempty"`
		// Forwarded marks a scan that already took its one routing hop;
		// the receiving node serves it locally regardless of ring view.
		Forwarded bool `json:"forwarded,omitempty"`
	}
	ScanResponse struct {
		// Node is the node that executed the scan (the ring owner when the
		// request was forwarded).
		Node    string  `json:"node,omitempty"`
		Matches []Match `json:"matches,omitempty"`
		// Degraded marks a keyed scan that was served locally because the
		// ring owner was unreachable — the partition degrade policy: a scan
		// from the local generation beats an error while membership
		// converges on the failure.
		Degraded bool `json:"degraded,omitempty"`
	}
	// MetricsResponse is one node's serialized registry snapshot
	// (GET /cluster/metrics). Metrics is the telemetry.MarshalSamples
	// payload, kept raw so the node needn't re-decode what it just
	// encoded.
	MetricsResponse struct {
		Node    string          `json:"node"`
		Metrics json.RawMessage `json:"metrics"`
	}
	// NodeHealth is one node's self-reported status (GET /cluster/health),
	// collected by the fleet prober into /debug/fleet/health.
	NodeHealth struct {
		Node        string `json:"node"`
		Generation  uint64 `json:"generation"`
		Fingerprint string `json:"fingerprint"`
		Sessions    int    `json:"sessions"`
		Staged      int    `json:"staged_tickets"`
		// Quarantined lists scan keys the service breaker has quarantined.
		Quarantined []string `json:"quarantined,omitempty"`
		// QuotaSaturation is per-tenant quota consumption (0 idle → 1
		// exhausted); nil when quotas are disabled.
		QuotaSaturation map[string]float64 `json:"quota_saturation,omitempty"`
		// FlightRecorded / FlightPinned are flight-recorder lifetime
		// totals; Pinned growth means scans are blowing latency or energy
		// budgets.
		FlightRecorded uint64 `json:"flight_recorded"`
		FlightPinned   uint64 `json:"flight_pinned"`
		// Epoch is the node's membership epoch (0 when gossip membership is
		// disabled); survivors of a failure agree on it once converged.
		Epoch uint64 `json:"epoch,omitempty"`
		// Handoffs / Adoptions are lifetime re-placement totals.
		Handoffs  uint64 `json:"handoffs,omitempty"`
		Adoptions uint64 `json:"adoptions,omitempty"`
	}
	InfoResponse struct {
		Node        string   `json:"node"`
		Generation  uint64   `json:"generation"`
		Fingerprint string   `json:"fingerprint"`
		Sessions    []string `json:"sessions,omitempty"`
	}
)

// Handler returns the node's endpoint set, rooted at /cluster/.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/prepare", n.withTrace("cluster.prepare", n.handlePrepare))
	mux.HandleFunc("/cluster/commit", n.withTrace("cluster.commit", n.handleCommit))
	mux.HandleFunc("/cluster/abort", n.withTrace("cluster.abort", n.handleAbort))
	mux.HandleFunc("/cluster/session/open", n.withTrace("cluster.session.open", n.handleSessionOpen))
	mux.HandleFunc("/cluster/session/feed", n.withTrace("cluster.session.feed", n.handleSessionFeed))
	mux.HandleFunc("/cluster/session/checkpoint", n.withTrace("cluster.session.checkpoint", n.handleSessionCheckpoint))
	mux.HandleFunc("/cluster/session/resume", n.withTrace("cluster.session.resume", n.handleSessionResume))
	mux.HandleFunc("/cluster/session/close", n.withTrace("cluster.session.close", n.handleSessionClose))
	mux.HandleFunc("/cluster/scan", n.withTrace("cluster.scan", n.handleScan))
	mux.HandleFunc("/cluster/info", n.withTrace("cluster.info", n.handleInfo))
	mux.HandleFunc("/cluster/join", n.withTrace("cluster.join", n.handleGossipExchange))
	mux.HandleFunc("/cluster/gossip", n.withTrace("cluster.gossip", n.handleGossipExchange))
	mux.HandleFunc("/cluster/leave", n.withTrace("cluster.leave", n.handleGossipExchange))
	mux.HandleFunc("/cluster/checkpoint/put", n.withTrace("cluster.checkpoint.put", n.handleCheckpointPut))
	mux.HandleFunc("/cluster/checkpoint/get", n.withTrace("cluster.checkpoint.get", n.handleCheckpointGet))
	mux.HandleFunc("/cluster/checkpoint/delete", n.withTrace("cluster.checkpoint.delete", n.handleCheckpointDelete))
	mux.HandleFunc("/cluster/session/sync", n.withTrace("cluster.session.sync", n.handleSessionSync))
	mux.HandleFunc("/cluster/session/transfer", n.withTrace("cluster.session.transfer", n.handleSessionTransfer))
	mux.HandleFunc("GET /cluster/ring", n.handleRing)
	mux.HandleFunc("GET /cluster/trace/{id}", n.handleTraceExport)
	mux.HandleFunc("GET /cluster/metrics", n.handleMetrics)
	mux.HandleFunc("GET /cluster/health", n.handleHealth)
	return mux
}

// withTrace adopts the remote trace id riding TraceHeader (when the node
// has a recorder), so the handler's spans land under the caller's id. The
// caller's span id (SpanHeader) is adopted as the remote parent, which is
// what lets the fleet stitcher graft this node's fragment under the exact
// client span that caused the request.
func (n *Node) withTrace(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Gossip piggyback: membership tables ride ordinary inter-node
		// traffic, so every cross-node call doubles as a gossip exchange and
		// the dedicated probe loop is only the floor on dissemination rate.
		if m := n.cfg.Membership; m != nil {
			if raw := r.Header.Get(GossipHeader); raw != "" {
				if payload, err := base64.StdEncoding.DecodeString(raw); err == nil {
					if g, err := DecodeGossip(payload); err == nil {
						m.Merge(g)
					}
				}
			}
			w.Header().Set(GossipHeader, base64.StdEncoding.EncodeToString(m.Snapshot()))
		}
		if n.cfg.Recorder != nil {
			var remote tracing.TraceID
			var parent tracing.SpanID
			if raw := r.Header.Get(TraceHeader); raw != "" {
				if id, err := tracing.ParseTraceID(raw); err == nil {
					remote = id
				}
			}
			if remote != 0 {
				if raw := r.Header.Get(SpanHeader); raw != "" {
					if id, err := tracing.ParseSpanID(raw); err == nil {
						parent = id
					}
				}
			}
			ctx, tr := n.cfg.Recorder.StartTraceRemoteSpan(r.Context(), name, remote, parent)
			tr.SetStr("node", n.cfg.ID)
			defer n.cfg.Recorder.Record(tr)
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps a service error onto a status the client-side retry
// policy understands: transient refusals (overload, drain, quota,
// quarantine) are 503/429 and retried; protocol conflicts (stale
// generation, stale checkpoint) are 409 and surfaced; structural damage
// is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, bvap.ErrQuotaExceeded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, bvap.ErrOverloaded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, bvap.ErrDraining), errors.Is(err, bvap.ErrQuarantined):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, ErrReplicationQuorum):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, serve.ErrStaleGeneration), errors.Is(err, bvap.ErrCheckpointStale):
		status = http.StatusConflict
	case errors.Is(err, bvap.ErrCheckpointCorrupt):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// sweepStagedLocked evicts committed tickets whose generation has been
// superseded. Such a ticket can only mislead: replaying its prepare would
// hand the coordinator a fingerprint the node no longer serves, and its
// commit would report an old generation without publishing — so a
// re-publish of a previously published set (rolling back A after B, with
// the ticket derived deterministically from the set) would "succeed"
// while the fleet keeps serving B. Evicting forces a fresh round instead.
// At most one committed ticket (the one whose gen is current) survives,
// which also bounds retained tickets across repeated reloads. Callers
// hold n.mu.
func (n *Node) sweepStagedLocked() {
	cur := n.svc.Generation()
	for id, t := range n.staged {
		if t.committed && t.gen != cur {
			delete(n.staged, id)
		}
	}
}

func (n *Node) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Ticket == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ticket"})
		return
	}
	n.mu.Lock()
	n.sweepStagedLocked()
	if t, ok := n.staged[req.Ticket]; ok {
		// Idempotent replay: a coordinator retrying its prepare gets the
		// fingerprint of the already-staged candidate.
		resp := PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base}
		n.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n.mu.Unlock()
	prep, err := n.svc.PrepareReload(r.Context(), req.Patterns)
	if err != nil {
		writeError(w, err)
		return
	}
	n.mu.Lock()
	if t, ok := n.staged[req.Ticket]; ok {
		// Lost a concurrent race on the same ticket; keep the first and
		// answer with its staging directly (the request body is already
		// consumed, so re-entering the handler would misread EOF as a bad
		// request and spuriously fail the round).
		resp := PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base}
		n.mu.Unlock()
		prep.Abort()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	t := &stagedTicket{prep: prep, fingerprint: prep.Fingerprint(), base: prep.Base()}
	n.staged[req.Ticket] = t
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base})
}

func (n *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req TicketRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.mu.Lock()
	t, ok := n.staged[req.Ticket]
	n.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown ticket " + req.Ticket})
		return
	}
	// t.mu serializes the whole commit: concurrent commits of one ticket
	// resolve to one publication, and every later caller replays the
	// recorded generation instead of racing into a spurious stale refusal.
	t.mu.Lock()
	if t.committed {
		gen := t.gen
		t.mu.Unlock()
		writeJSON(w, http.StatusOK, CommitResponse{Generation: gen})
		return
	}
	if t.prep == nil {
		// Resolved dead (a previous commit hit a superseded base) but still
		// reachable through a raced lookup; same refusal as that commit.
		t.mu.Unlock()
		writeError(w, serve.ErrStaleGeneration)
		return
	}
	gen, err := t.prep.Commit()
	if err != nil {
		if errors.Is(err, serve.ErrStaleGeneration) {
			// The candidate can never publish — its base generation is gone.
			// Drop it so the ticket stops pinning a compiled engine and a
			// fresh round under the same ticket can re-stage.
			t.prep.Abort()
			t.prep = nil
			n.mu.Lock()
			if n.staged[req.Ticket] == t {
				delete(n.staged, req.Ticket)
			}
			n.mu.Unlock()
		}
		t.mu.Unlock()
		writeError(w, err)
		return
	}
	t.prep = nil
	n.mu.Lock()
	t.committed, t.gen = true, gen
	// This publication superseded whatever committed ticket was current.
	n.sweepStagedLocked()
	n.mu.Unlock()
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, CommitResponse{Generation: gen})
}

func (n *Node) handleAbort(w http.ResponseWriter, r *http.Request) {
	var req TicketRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.mu.Lock()
	t, ok := n.staged[req.Ticket]
	delete(n.staged, req.Ticket)
	n.mu.Unlock()
	if ok {
		t.mu.Lock()
		if t.prep != nil {
			t.prep.Abort()
			t.prep = nil
		}
		t.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]bool{"aborted": ok})
}

// session returns the named session or writes a 404.
func (n *Node) session(w http.ResponseWriter, id string) *nodeSession {
	n.mu.Lock()
	defer n.mu.Unlock()
	ns := n.sessions[id]
	if ns == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
	}
	return ns
}

// installSession registers a new session under id, wiring its OnMatch into
// the collection buffer and the durable delta. It fails when id is taken.
func (n *Node) installSession(id string, interval int, open func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error)) (*nodeSession, error) {
	ns := &nodeSession{}
	cfg := &bvap.SessionConfig{
		CheckpointInterval: n.cfg.SessionInterval,
		OnMatch: func(m bvap.Match) {
			// Called from within feed/checkpoint while ns.mu is held by the
			// same goroutine's handler — append without locking would race
			// only if sessions were shared; they are handler-serialized via
			// ns.mu, so buffering here is ordered with collection.
			ns.buf = append(ns.buf, Match{Pattern: m.Pattern, End: m.End})
			ns.delta = append(ns.delta, Match{Pattern: m.Pattern, End: m.End})
		},
	}
	if interval > 0 {
		cfg.CheckpointInterval = interval
	}
	ss, err := open(cfg)
	if err != nil {
		return nil, err
	}
	ns.ss = ss
	ns.interval = cfg.CheckpointInterval
	n.mu.Lock()
	if _, taken := n.sessions[id]; taken {
		n.mu.Unlock()
		// Release the freshly opened session — leaving it unclosed would
		// leak its checked-out stream for the process lifetime.
		ss.Close()
		return nil, fmt.Errorf("session %s already open on node %s", id, n.cfg.ID)
	}
	n.sessions[id] = ns
	n.mu.Unlock()
	return ns, nil
}

// evictSession removes id and closes its session (marking the nodeSession
// gone so handlers that captured its pointer answer 404). Callers hold
// placeMu when the eviction is part of a placement transition.
func (n *Node) evictSession(id string) {
	n.mu.Lock()
	ns := n.sessions[id]
	delete(n.sessions, id)
	n.mu.Unlock()
	if ns == nil {
		return
	}
	ns.mu.Lock()
	ns.gone = true
	ns.ss.Close()
	ns.mu.Unlock()
}

func (n *Node) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionOpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns, err := n.installSession(req.SessionID, req.Interval, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		return n.svc.NewSession(cfg)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos()})
}

func (n *Node) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	var req SessionResumeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns, err := n.installSession(req.SessionID, req.Interval, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		return n.svc.ResumeSessionBytes(req.Checkpoint, cfg)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos()})
}

func (n *Node) handleSessionFeed(w http.ResponseWriter, r *http.Request) {
	var req SessionFeedRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns := n.session(w, req.SessionID)
	if ns == nil {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.gone {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "session " + req.SessionID + " was re-placed"})
		return
	}
	if err := ns.ss.Feed(r.Context(), req.Chunk); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos(), Matches: ns.collectLocked()})
}

func (n *Node) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns := n.session(w, req.SessionID)
	if ns == nil {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.gone {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "session " + req.SessionID + " was re-placed"})
		return
	}
	ck := ns.ss.Checkpoint()
	wire, err := ck.MarshalBinary()
	if err != nil {
		writeError(w, err)
		return
	}
	// Replication: the checkpoint only acks once min(R, ring) distinct
	// chain owners hold the record. The delta is NOT reset on a failed
	// round — it keeps accumulating from the last durable record, so the
	// next successful record still covers the whole (PrevPos, Pos] range.
	if n.rep != nil {
		rec := CheckpointRecord{
			SessionID:  req.SessionID,
			Pos:        ck.Pos(),
			PrevPos:    ns.lastDurable,
			Origin:     n.cfg.Self,
			Checkpoint: wire,
			Matches:    append([]Match(nil), ns.delta...),
			Interval:   ns.interval,
		}
		if err := n.rep.replicate(r.Context(), rec); err != nil {
			writeError(w, err)
			return
		}
		ns.delta = nil
		ns.lastDurable = rec.Pos
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ck.Pos(), Checkpoint: wire, Matches: ns.collectLocked()})
}

func (n *Node) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// A replicated close must also retire the session's records, or a later
	// epoch change would "adopt" the finished stream back to life. placeMu
	// orders the record delete against any concurrent adoption scan.
	n.placeMu.Lock()
	n.mu.Lock()
	ns := n.sessions[req.SessionID]
	delete(n.sessions, req.SessionID)
	n.mu.Unlock()
	if ns == nil {
		n.placeMu.Unlock()
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + req.SessionID})
		return
	}
	n.store.delete(req.SessionID)
	n.placeMu.Unlock()
	if n.rep != nil {
		// Best-effort fan-out: a chain member that misses the delete keeps
		// stale bytes but never resurrects the session here (the local
		// record is gone before the session is).
		for _, owner := range n.rep.owners(req.SessionID) {
			if owner != n.cfg.Self {
				n.cfg.Client.PostJSON(r.Context(), owner, "/cluster/checkpoint/delete", SessionRequest{SessionID: req.SessionID}, nil)
			}
		}
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.gone = true
	ns.ss.Close()
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos(), Matches: ns.collectLocked()})
}

// collectLocked drains the committed-match buffer. Callers hold ns.mu.
func (ns *nodeSession) collectLocked() []Match {
	out := ns.buf
	ns.buf = nil
	return out
}

func (n *Node) handleScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx := r.Context()
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = req.Tenant
	}
	// Ring routing: a keyed scan landing on a non-owner takes exactly one
	// hop to the owner. The hop is a traced client call, so the stitched
	// fleet trace shows driver → this node → owner as one causal chain.
	degraded := false
	if owner, ok := n.routeScan(&req); ok {
		fwd := req
		fwd.Tenant, fwd.Forwarded = tenant, true
		ctx, sp := tracing.StartSpan(ctx, "cluster.forward")
		sp.SetStr("owner", owner)
		sp.SetStr("key", req.Key)
		var resp ScanResponse
		err := n.cfg.Client.PostJSON(ctx, owner, "/cluster/scan", fwd, &resp)
		sp.End()
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Partition degrade policy: when the owner is unreachable (or its
		// breaker is open), serve the scan from the local generation rather
		// than failing it — affinity is an optimization, correctness is not
		// at stake, and the response is marked so callers can tell. Refusals
		// from an owner that answered (quota, quarantine) still propagate.
		var pe *PeerError
		if errors.As(err, &pe) && pe.Status != 0 && !errors.Is(err, serve.ErrQuarantined) {
			writeError(w, err)
			return
		}
		degraded = true
		if n.cDegraded != nil {
			n.cDegraded.Inc()
		}
		if n.cfg.Logger != nil {
			n.cfg.Logger.Warn("scan owner unreachable; serving locally", "owner", owner, "key", req.Key, "err", err)
		}
	}
	if tenant != "" {
		ctx = bvap.WithTenant(ctx, tenant)
	}
	ms, err := n.svc.Scan(ctx, req.Input)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := ScanResponse{Node: n.cfg.ID, Degraded: degraded}
	for _, m := range ms {
		resp.Matches = append(resp.Matches, Match{Pattern: m.Pattern, End: m.End})
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeScan decides whether a scan request must hop to another ring
// member, returning the owner's base URL. Forwarded or keyless requests,
// nodes without ring configuration, and keys this node owns all stay
// local.
func (n *Node) routeScan(req *ScanRequest) (string, bool) {
	ring := n.ring()
	if req.Forwarded || req.Key == "" || ring == nil || n.cfg.Client == nil || n.cfg.Self == "" {
		return "", false
	}
	owner := ring.Owner(req.Key)
	if owner == "" || owner == n.cfg.Self {
		return "", false
	}
	return owner, true
}

// handleGossipExchange is one half of a gossip round, shared by
// /cluster/join, /cluster/gossip and /cluster/leave (the three differ only
// in who initiates and why): merge the sender's table, answer with ours.
func (n *Node) handleGossipExchange(w http.ResponseWriter, r *http.Request) {
	var req GossipRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m := n.cfg.Membership
	if m == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "gossip membership disabled on node " + n.cfg.ID})
		return
	}
	snap, err := m.HandleGossip(req.Payload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, GossipResponse{Payload: snap})
}

// handleRing serves this node's ring view; ?key= additionally resolves the
// key's owner under that view (the driver's placement oracle).
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	m := n.cfg.Membership
	if m == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "gossip membership disabled on node " + n.cfg.ID})
		return
	}
	view := RingView{
		Node:         n.cfg.ID,
		Self:         n.cfg.Self,
		Epoch:        m.Epoch(),
		VirtualNodes: m.Ring().VirtualNodes(),
		Replicas:     n.cfg.Replicas,
		Members:      m.Members(),
	}
	if key := r.URL.Query().Get("key"); key != "" {
		view.Key, view.Owner = key, m.Ring().Owner(key)
	}
	writeJSON(w, http.StatusOK, view)
}

func (n *Node) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	var rec CheckpointRecord
	if !decodeBody(w, r, &rec) {
		return
	}
	if rec.SessionID == "" || len(rec.Checkpoint) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "incomplete checkpoint record"})
		return
	}
	stored := n.store.put(rec)
	writeJSON(w, http.StatusOK, map[string]bool{"stored": stored})
}

func (n *Node) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rec, ok := n.store.get(req.SessionID)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no checkpoint record for session " + req.SessionID})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (n *Node) handleCheckpointDelete(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.store.delete(req.SessionID)
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// handleSessionSync lands a session at its newest durable checkpoint and
// tells the driver what it missed — the single recovery call that covers
// node death, hand-off and a lost checkpoint ack uniformly. The session is
// always rebuilt from the durable bytes: a live session may sit past its
// last record (interval commits between wire checkpoints), and the driver
// is about to replay from the durable position, so only that exact state
// is admissible.
func (n *Node) handleSessionSync(w http.ResponseWriter, r *http.Request) {
	var req SessionSyncRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if n.rep == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "checkpoint replication disabled on node " + n.cfg.ID})
		return
	}
	syncOutcome := func(outcome string) {
		if n.cSync != nil {
			n.cSync.With(outcome).Inc()
		}
	}
	if owner := n.ring().Owner(req.SessionID); owner != "" && owner != n.cfg.Self {
		syncOutcome("not_owner")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "session " + req.SessionID + " is owned by " + owner})
		return
	}
	n.placeMu.Lock()
	defer n.placeMu.Unlock()
	rec, ok := n.rep.repair(r.Context(), req.SessionID)
	if !ok {
		if req.Have > 0 {
			// The driver persisted an ack for a record no surviving chain
			// member holds: genuine checkpoint loss (replication factor too
			// low for the failures suffered). 404 is terminal for the driver.
			syncOutcome("lost")
			writeJSON(w, http.StatusNotFound, map[string]string{
				"error": fmt.Sprintf("checkpoint lost: no durable record for session %s at or past %d", req.SessionID, req.Have)})
			return
		}
		// Never checkpointed: restart the stream from zero.
		n.evictSession(req.SessionID)
		_, err := n.installSession(req.SessionID, req.Interval, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
			return n.svc.NewSession(cfg)
		})
		if err != nil {
			syncOutcome("error")
			writeError(w, err)
			return
		}
		syncOutcome("fresh")
		writeJSON(w, http.StatusOK, SessionResponse{Pos: 0})
		return
	}
	if rec.Pos < req.Have {
		syncOutcome("behind")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": fmt.Sprintf("replica behind driver for session %s: have %d, durable %d", req.SessionID, rec.Pos, req.Have)})
		return
	}
	if req.Have != rec.Pos && req.Have != rec.PrevPos {
		// The driver is more than one checkpoint behind the chain — its
		// delta cannot be reconstructed from one record. Unreachable while
		// at most one ack is lost per failure; 409 makes the violation loud
		// rather than silently dropping matches.
		syncOutcome("gap")
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("delivery gap for session %s: driver at %d, record spans (%d,%d]", req.SessionID, req.Have, rec.PrevPos, rec.Pos)})
		return
	}
	interval := req.Interval
	if interval <= 0 {
		interval = rec.Interval
	}
	n.evictSession(req.SessionID)
	ns, err := n.installSession(req.SessionID, interval, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		return n.svc.ResumeSessionBytes(rec.Checkpoint, cfg)
	})
	if err != nil {
		syncOutcome("error")
		writeError(w, err)
		return
	}
	ns.mu.Lock()
	ns.lastDurable = rec.Pos
	ns.buf, ns.delta = nil, nil
	ns.mu.Unlock()
	var delta []Match
	if rec.Pos > req.Have {
		delta = rec.Matches
	}
	syncOutcome("ok")
	writeJSON(w, http.StatusOK, SessionResponse{Pos: rec.Pos, Matches: delta})
}

// handleSessionTransfer receives a session's custody during a hand-off:
// the record is stored, and when this node is the record's designated
// origin and doesn't already hold the session live, it resumes it
// immediately (adoption-by-transfer).
func (n *Node) handleSessionTransfer(w http.ResponseWriter, r *http.Request) {
	var req TransferRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Record.SessionID == "" || len(req.Record.Checkpoint) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "incomplete transfer record"})
		return
	}
	n.placeMu.Lock()
	defer n.placeMu.Unlock()
	n.store.put(req.Record)
	id := req.Record.SessionID
	if req.Record.Origin != n.cfg.Self {
		writeJSON(w, http.StatusOK, SessionResponse{Pos: req.Record.Pos})
		return
	}
	n.mu.Lock()
	_, live := n.sessions[id]
	n.mu.Unlock()
	if !live {
		if err := n.adoptLocked(req.Record, req.Interval); err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: req.Record.Pos})
}

// handleTraceExport serves this node's span fragments for one trace id in
// the BVTF wire form — the raw material of cross-node stitching. A
// malformed id is 400; a well-formed id with no retained fragments is 404
// (the trace never touched this node, or its rings have since evicted it).
func (n *Node) handleTraceExport(w http.ResponseWriter, r *http.Request) {
	id, err := tracing.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad trace id: %v", err)})
		return
	}
	frags := n.cfg.Recorder.Fragments(id, n.cfg.ID)
	if len(frags) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no fragments for trace " + id.String()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(tracing.EncodeFragments(frags))
}

// handleMetrics serves this node's registry snapshot for the federation
// scrape loop.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if n.cfg.Metrics == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "node has no metrics registry"})
		return
	}
	raw, err := telemetry.MarshalSamples(n.cfg.Metrics.Snapshot())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, MetricsResponse{Node: n.cfg.ID, Metrics: raw})
}

// Health reports the node's self-observed status (also served at
// GET /cluster/health for the fleet prober).
func (n *Node) Health() NodeHealth {
	n.mu.Lock()
	sessions, staged := len(n.sessions), len(n.staged)
	n.mu.Unlock()
	h := NodeHealth{
		Node:            n.cfg.ID,
		Generation:      n.svc.Generation(),
		Fingerprint:     fmt.Sprintf("%016x", n.svc.Engine().Fingerprint()),
		Sessions:        sessions,
		Staged:          staged,
		Quarantined:     n.svc.Quarantined(),
		QuotaSaturation: n.svc.QuotaSaturation(),
		FlightRecorded:  n.cfg.Recorder.Recorded(),
		FlightPinned:    n.cfg.Recorder.PinnedTotal(),
		Handoffs:        n.handoffs.Load(),
		Adoptions:       n.adoptions.Load(),
	}
	if n.cfg.Membership != nil {
		h.Epoch = n.cfg.Membership.Epoch()
	}
	return h
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Health())
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	ids := make([]string, 0, len(n.sessions))
	for id := range n.sessions {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, InfoResponse{
		Node:        n.cfg.ID,
		Generation:  n.svc.Generation(),
		Fingerprint: fmt.Sprintf("%016x", n.svc.Engine().Fingerprint()),
		Sessions:    ids,
	})
}

// Close closes every open session (committing pending reports into their
// buffers, which are then dropped) — the node-local half of shutdown; the
// service itself is drained by its owner.
func (n *Node) Close() {
	n.mu.Lock()
	sessions := n.sessions
	n.sessions = map[string]*nodeSession{}
	n.mu.Unlock()
	for _, ns := range sessions {
		ns.mu.Lock()
		ns.gone = true
		ns.ss.Close()
		ns.mu.Unlock()
	}
}
