package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"bvap"
	"bvap/internal/serve"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// NodeConfig tunes a cluster node.
type NodeConfig struct {
	// ID names the node in the ring and in /cluster/info.
	ID string
	// Recorder, when non-nil, adopts remote trace ids from TraceHeader so
	// the node's half of a cross-node request records (and is looked up)
	// under the coordinator's id, and serves span fragments at
	// /cluster/trace/{id} for the fleet stitcher.
	Recorder *tracing.Recorder
	// Metrics, when non-nil, is the node's registry, exported as a
	// serialized snapshot at /cluster/metrics for the federation scrape
	// loop.
	Metrics *telemetry.Registry
	// SessionInterval is the default checkpoint interval of sessions
	// opened without one; values < 1 select the service default.
	SessionInterval int
	// Self, Ring and Client enable ring-routed scans: a scan request
	// carrying a routing key that hashes to another ring member is
	// forwarded there (once — the forwarded request is marked, so
	// disagreeing ring views degrade to serving locally rather than
	// looping). Self is this node's own base URL as it appears in the
	// ring; all three must be set for forwarding to engage.
	Self   string
	Ring   *Ring
	Client *Client
}

// Node is the cluster-facing surface of one bvapd process: HTTP handlers
// for the two-phase reload protocol (prepare/commit/abort), live session
// migration (open/feed/checkpoint/resume/close) and routed scans, all over
// the embedded *bvap.Service. Mount Handler under /cluster/. All handlers
// are safe for concurrent use.
type Node struct {
	cfg NodeConfig
	svc *bvap.Service

	mu       sync.Mutex
	staged   map[string]*stagedTicket
	sessions map[string]*nodeSession
}

// stagedTicket is one prepare round's node-local state, kept so prepare
// and commit are idempotent per ticket: a coordinator that dies and
// re-runs its round converges instead of double-applying.
//
// Locking: fingerprint and base are immutable after staging. prep is
// guarded by mu, which also serializes the Commit/Abort operation so
// concurrent commits of one ticket resolve to one publication plus
// replays. committed and gen are written with BOTH mu and the node mutex
// held (mu first), so readers holding either lock see a consistent pair —
// sweepStagedLocked reads them under the node mutex alone. prep is dropped
// the moment the ticket resolves (committed or dead), so a retained ticket
// no longer pins a compiled engine.
type stagedTicket struct {
	fingerprint uint64
	base        uint64

	mu        sync.Mutex
	prep      *bvap.PreparedReload // nil once committed or dead
	committed bool
	gen       uint64
}

// nodeSession is one migrated-able streaming session. Committed matches
// buffer here until the driver collects them in a feed/checkpoint/close
// response; the driver treats them as provisional until it persists a wire
// checkpoint taken at or after their positions (the exactly-once
// protocol — see the soak driver in internal/experiments).
type nodeSession struct {
	mu  sync.Mutex
	ss  *bvap.StreamSession
	buf []Match
}

// NewNode wraps svc with the cluster surface.
func NewNode(svc *bvap.Service, cfg NodeConfig) *Node {
	return &Node{
		cfg:      cfg,
		svc:      svc,
		staged:   map[string]*stagedTicket{},
		sessions: map[string]*nodeSession{},
	}
}

// Match is the wire form of one committed match report.
type Match struct {
	// Pattern is the index of the matching pattern in the served set.
	Pattern int `json:"pattern"`
	// End is the absolute stream offset the match ends at.
	End int `json:"end"`
}

// Wire request/response bodies of the node endpoints. Exported so the
// coordinator, bvapd and the soak driver share one definition.
type (
	PrepareRequest struct {
		Ticket   string   `json:"ticket"`
		Patterns []string `json:"patterns"`
	}
	PrepareResponse struct {
		Fingerprint string `json:"fingerprint"` // hex engine fingerprint
		Base        uint64 `json:"base"`        // generation validated against
	}
	TicketRequest struct {
		Ticket string `json:"ticket"`
	}
	CommitResponse struct {
		Generation uint64 `json:"generation"`
	}
	SessionOpenRequest struct {
		SessionID string `json:"session_id"`
		Interval  int    `json:"interval,omitempty"`
	}
	SessionFeedRequest struct {
		SessionID string `json:"session_id"`
		Chunk     []byte `json:"chunk"`
	}
	SessionRequest struct {
		SessionID string `json:"session_id"`
	}
	SessionResumeRequest struct {
		SessionID  string `json:"session_id"`
		Checkpoint []byte `json:"checkpoint"`
		Interval   int    `json:"interval,omitempty"`
	}
	SessionResponse struct {
		// Pos is the committed stream position (the offset feeding resumes
		// from after a failure).
		Pos int64 `json:"pos"`
		// Checkpoint is the wire checkpoint (checkpoint endpoint only).
		Checkpoint []byte `json:"checkpoint,omitempty"`
		// Matches are the reports committed since the last collection.
		Matches []Match `json:"matches,omitempty"`
	}
	ScanRequest struct {
		Input []byte `json:"input"`
		// Tenant attributes the scan for quota accounting; the
		// TenantHeader, when set, takes precedence.
		Tenant string `json:"tenant,omitempty"`
		// Key, when set on a ring-enabled node, routes the scan to the
		// ring member owning the key (stream affinity); an empty key scans
		// locally.
		Key string `json:"key,omitempty"`
		// Forwarded marks a scan that already took its one routing hop;
		// the receiving node serves it locally regardless of ring view.
		Forwarded bool `json:"forwarded,omitempty"`
	}
	ScanResponse struct {
		// Node is the node that executed the scan (the ring owner when the
		// request was forwarded).
		Node    string  `json:"node,omitempty"`
		Matches []Match `json:"matches,omitempty"`
	}
	// MetricsResponse is one node's serialized registry snapshot
	// (GET /cluster/metrics). Metrics is the telemetry.MarshalSamples
	// payload, kept raw so the node needn't re-decode what it just
	// encoded.
	MetricsResponse struct {
		Node    string          `json:"node"`
		Metrics json.RawMessage `json:"metrics"`
	}
	// NodeHealth is one node's self-reported status (GET /cluster/health),
	// collected by the fleet prober into /debug/fleet/health.
	NodeHealth struct {
		Node        string `json:"node"`
		Generation  uint64 `json:"generation"`
		Fingerprint string `json:"fingerprint"`
		Sessions    int    `json:"sessions"`
		Staged      int    `json:"staged_tickets"`
		// Quarantined lists scan keys the service breaker has quarantined.
		Quarantined []string `json:"quarantined,omitempty"`
		// QuotaSaturation is per-tenant quota consumption (0 idle → 1
		// exhausted); nil when quotas are disabled.
		QuotaSaturation map[string]float64 `json:"quota_saturation,omitempty"`
		// FlightRecorded / FlightPinned are flight-recorder lifetime
		// totals; Pinned growth means scans are blowing latency or energy
		// budgets.
		FlightRecorded uint64 `json:"flight_recorded"`
		FlightPinned   uint64 `json:"flight_pinned"`
	}
	InfoResponse struct {
		Node        string   `json:"node"`
		Generation  uint64   `json:"generation"`
		Fingerprint string   `json:"fingerprint"`
		Sessions    []string `json:"sessions,omitempty"`
	}
)

// Handler returns the node's endpoint set, rooted at /cluster/.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/prepare", n.withTrace("cluster.prepare", n.handlePrepare))
	mux.HandleFunc("/cluster/commit", n.withTrace("cluster.commit", n.handleCommit))
	mux.HandleFunc("/cluster/abort", n.withTrace("cluster.abort", n.handleAbort))
	mux.HandleFunc("/cluster/session/open", n.withTrace("cluster.session.open", n.handleSessionOpen))
	mux.HandleFunc("/cluster/session/feed", n.withTrace("cluster.session.feed", n.handleSessionFeed))
	mux.HandleFunc("/cluster/session/checkpoint", n.withTrace("cluster.session.checkpoint", n.handleSessionCheckpoint))
	mux.HandleFunc("/cluster/session/resume", n.withTrace("cluster.session.resume", n.handleSessionResume))
	mux.HandleFunc("/cluster/session/close", n.withTrace("cluster.session.close", n.handleSessionClose))
	mux.HandleFunc("/cluster/scan", n.withTrace("cluster.scan", n.handleScan))
	mux.HandleFunc("/cluster/info", n.withTrace("cluster.info", n.handleInfo))
	mux.HandleFunc("GET /cluster/trace/{id}", n.handleTraceExport)
	mux.HandleFunc("GET /cluster/metrics", n.handleMetrics)
	mux.HandleFunc("GET /cluster/health", n.handleHealth)
	return mux
}

// withTrace adopts the remote trace id riding TraceHeader (when the node
// has a recorder), so the handler's spans land under the caller's id. The
// caller's span id (SpanHeader) is adopted as the remote parent, which is
// what lets the fleet stitcher graft this node's fragment under the exact
// client span that caused the request.
func (n *Node) withTrace(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.cfg.Recorder != nil {
			var remote tracing.TraceID
			var parent tracing.SpanID
			if raw := r.Header.Get(TraceHeader); raw != "" {
				if id, err := tracing.ParseTraceID(raw); err == nil {
					remote = id
				}
			}
			if remote != 0 {
				if raw := r.Header.Get(SpanHeader); raw != "" {
					if id, err := tracing.ParseSpanID(raw); err == nil {
						parent = id
					}
				}
			}
			ctx, tr := n.cfg.Recorder.StartTraceRemoteSpan(r.Context(), name, remote, parent)
			tr.SetStr("node", n.cfg.ID)
			defer n.cfg.Recorder.Record(tr)
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps a service error onto a status the client-side retry
// policy understands: transient refusals (overload, drain, quota,
// quarantine) are 503/429 and retried; protocol conflicts (stale
// generation, stale checkpoint) are 409 and surfaced; structural damage
// is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, bvap.ErrQuotaExceeded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, bvap.ErrOverloaded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, bvap.ErrDraining), errors.Is(err, bvap.ErrQuarantined):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, serve.ErrStaleGeneration), errors.Is(err, bvap.ErrCheckpointStale):
		status = http.StatusConflict
	case errors.Is(err, bvap.ErrCheckpointCorrupt):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// sweepStagedLocked evicts committed tickets whose generation has been
// superseded. Such a ticket can only mislead: replaying its prepare would
// hand the coordinator a fingerprint the node no longer serves, and its
// commit would report an old generation without publishing — so a
// re-publish of a previously published set (rolling back A after B, with
// the ticket derived deterministically from the set) would "succeed"
// while the fleet keeps serving B. Evicting forces a fresh round instead.
// At most one committed ticket (the one whose gen is current) survives,
// which also bounds retained tickets across repeated reloads. Callers
// hold n.mu.
func (n *Node) sweepStagedLocked() {
	cur := n.svc.Generation()
	for id, t := range n.staged {
		if t.committed && t.gen != cur {
			delete(n.staged, id)
		}
	}
}

func (n *Node) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Ticket == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ticket"})
		return
	}
	n.mu.Lock()
	n.sweepStagedLocked()
	if t, ok := n.staged[req.Ticket]; ok {
		// Idempotent replay: a coordinator retrying its prepare gets the
		// fingerprint of the already-staged candidate.
		resp := PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base}
		n.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n.mu.Unlock()
	prep, err := n.svc.PrepareReload(r.Context(), req.Patterns)
	if err != nil {
		writeError(w, err)
		return
	}
	n.mu.Lock()
	if t, ok := n.staged[req.Ticket]; ok {
		// Lost a concurrent race on the same ticket; keep the first and
		// answer with its staging directly (the request body is already
		// consumed, so re-entering the handler would misread EOF as a bad
		// request and spuriously fail the round).
		resp := PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base}
		n.mu.Unlock()
		prep.Abort()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	t := &stagedTicket{prep: prep, fingerprint: prep.Fingerprint(), base: prep.Base()}
	n.staged[req.Ticket] = t
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, PrepareResponse{Fingerprint: fmt.Sprintf("%016x", t.fingerprint), Base: t.base})
}

func (n *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req TicketRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.mu.Lock()
	t, ok := n.staged[req.Ticket]
	n.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown ticket " + req.Ticket})
		return
	}
	// t.mu serializes the whole commit: concurrent commits of one ticket
	// resolve to one publication, and every later caller replays the
	// recorded generation instead of racing into a spurious stale refusal.
	t.mu.Lock()
	if t.committed {
		gen := t.gen
		t.mu.Unlock()
		writeJSON(w, http.StatusOK, CommitResponse{Generation: gen})
		return
	}
	if t.prep == nil {
		// Resolved dead (a previous commit hit a superseded base) but still
		// reachable through a raced lookup; same refusal as that commit.
		t.mu.Unlock()
		writeError(w, serve.ErrStaleGeneration)
		return
	}
	gen, err := t.prep.Commit()
	if err != nil {
		if errors.Is(err, serve.ErrStaleGeneration) {
			// The candidate can never publish — its base generation is gone.
			// Drop it so the ticket stops pinning a compiled engine and a
			// fresh round under the same ticket can re-stage.
			t.prep.Abort()
			t.prep = nil
			n.mu.Lock()
			if n.staged[req.Ticket] == t {
				delete(n.staged, req.Ticket)
			}
			n.mu.Unlock()
		}
		t.mu.Unlock()
		writeError(w, err)
		return
	}
	t.prep = nil
	n.mu.Lock()
	t.committed, t.gen = true, gen
	// This publication superseded whatever committed ticket was current.
	n.sweepStagedLocked()
	n.mu.Unlock()
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, CommitResponse{Generation: gen})
}

func (n *Node) handleAbort(w http.ResponseWriter, r *http.Request) {
	var req TicketRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.mu.Lock()
	t, ok := n.staged[req.Ticket]
	delete(n.staged, req.Ticket)
	n.mu.Unlock()
	if ok {
		t.mu.Lock()
		if t.prep != nil {
			t.prep.Abort()
			t.prep = nil
		}
		t.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]bool{"aborted": ok})
}

// session returns the named session or writes a 404.
func (n *Node) session(w http.ResponseWriter, id string) *nodeSession {
	n.mu.Lock()
	defer n.mu.Unlock()
	ns := n.sessions[id]
	if ns == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
	}
	return ns
}

// installSession registers a new session under id, wiring its OnMatch into
// the collection buffer. It fails when id is taken.
func (n *Node) installSession(id string, open func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error)) (*nodeSession, error) {
	ns := &nodeSession{}
	cfg := &bvap.SessionConfig{
		CheckpointInterval: n.cfg.SessionInterval,
		OnMatch: func(m bvap.Match) {
			// Called from within feed/checkpoint while ns.mu is held by the
			// same goroutine's handler — append without locking would race
			// only if sessions were shared; they are handler-serialized via
			// ns.mu, so buffering here is ordered with collection.
			ns.buf = append(ns.buf, Match{Pattern: m.Pattern, End: m.End})
		},
	}
	ss, err := open(cfg)
	if err != nil {
		return nil, err
	}
	ns.ss = ss
	n.mu.Lock()
	if _, taken := n.sessions[id]; taken {
		n.mu.Unlock()
		// Release the freshly opened session — leaving it unclosed would
		// leak its checked-out stream for the process lifetime.
		ss.Close()
		return nil, fmt.Errorf("session %s already open on node %s", id, n.cfg.ID)
	}
	n.sessions[id] = ns
	n.mu.Unlock()
	return ns, nil
}

func (n *Node) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionOpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	interval := req.Interval
	ns, err := n.installSession(req.SessionID, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		if interval > 0 {
			cfg.CheckpointInterval = interval
		}
		return n.svc.NewSession(cfg)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos()})
}

func (n *Node) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	var req SessionResumeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	interval := req.Interval
	ns, err := n.installSession(req.SessionID, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		if interval > 0 {
			cfg.CheckpointInterval = interval
		}
		return n.svc.ResumeSessionBytes(req.Checkpoint, cfg)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos()})
}

func (n *Node) handleSessionFeed(w http.ResponseWriter, r *http.Request) {
	var req SessionFeedRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns := n.session(w, req.SessionID)
	if ns == nil {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if err := ns.ss.Feed(r.Context(), req.Chunk); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos(), Matches: ns.collectLocked()})
}

func (n *Node) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ns := n.session(w, req.SessionID)
	if ns == nil {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ck := ns.ss.Checkpoint()
	wire, err := ck.MarshalBinary()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ck.Pos(), Checkpoint: wire, Matches: ns.collectLocked()})
}

func (n *Node) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n.mu.Lock()
	ns := n.sessions[req.SessionID]
	delete(n.sessions, req.SessionID)
	n.mu.Unlock()
	if ns == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + req.SessionID})
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.ss.Close()
	writeJSON(w, http.StatusOK, SessionResponse{Pos: ns.ss.Pos(), Matches: ns.collectLocked()})
}

// collectLocked drains the committed-match buffer. Callers hold ns.mu.
func (ns *nodeSession) collectLocked() []Match {
	out := ns.buf
	ns.buf = nil
	return out
}

func (n *Node) handleScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx := r.Context()
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = req.Tenant
	}
	// Ring routing: a keyed scan landing on a non-owner takes exactly one
	// hop to the owner. The hop is a traced client call, so the stitched
	// fleet trace shows driver → this node → owner as one causal chain.
	if owner, ok := n.routeScan(&req); ok {
		fwd := req
		fwd.Tenant, fwd.Forwarded = tenant, true
		ctx, sp := tracing.StartSpan(ctx, "cluster.forward")
		sp.SetStr("owner", owner)
		sp.SetStr("key", req.Key)
		var resp ScanResponse
		err := n.cfg.Client.PostJSON(ctx, owner, "/cluster/scan", fwd, &resp)
		sp.End()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if tenant != "" {
		ctx = bvap.WithTenant(ctx, tenant)
	}
	ms, err := n.svc.Scan(ctx, req.Input)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := ScanResponse{Node: n.cfg.ID}
	for _, m := range ms {
		resp.Matches = append(resp.Matches, Match{Pattern: m.Pattern, End: m.End})
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeScan decides whether a scan request must hop to another ring
// member, returning the owner's base URL. Forwarded or keyless requests,
// nodes without ring configuration, and keys this node owns all stay
// local.
func (n *Node) routeScan(req *ScanRequest) (string, bool) {
	if req.Forwarded || req.Key == "" || n.cfg.Ring == nil || n.cfg.Client == nil || n.cfg.Self == "" {
		return "", false
	}
	owner := n.cfg.Ring.Owner(req.Key)
	if owner == "" || owner == n.cfg.Self {
		return "", false
	}
	return owner, true
}

// handleTraceExport serves this node's span fragments for one trace id in
// the BVTF wire form — the raw material of cross-node stitching. A
// malformed id is 400; a well-formed id with no retained fragments is 404
// (the trace never touched this node, or its rings have since evicted it).
func (n *Node) handleTraceExport(w http.ResponseWriter, r *http.Request) {
	id, err := tracing.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad trace id: %v", err)})
		return
	}
	frags := n.cfg.Recorder.Fragments(id, n.cfg.ID)
	if len(frags) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no fragments for trace " + id.String()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(tracing.EncodeFragments(frags))
}

// handleMetrics serves this node's registry snapshot for the federation
// scrape loop.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if n.cfg.Metrics == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "node has no metrics registry"})
		return
	}
	raw, err := telemetry.MarshalSamples(n.cfg.Metrics.Snapshot())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, MetricsResponse{Node: n.cfg.ID, Metrics: raw})
}

// Health reports the node's self-observed status (also served at
// GET /cluster/health for the fleet prober).
func (n *Node) Health() NodeHealth {
	n.mu.Lock()
	sessions, staged := len(n.sessions), len(n.staged)
	n.mu.Unlock()
	return NodeHealth{
		Node:            n.cfg.ID,
		Generation:      n.svc.Generation(),
		Fingerprint:     fmt.Sprintf("%016x", n.svc.Engine().Fingerprint()),
		Sessions:        sessions,
		Staged:          staged,
		Quarantined:     n.svc.Quarantined(),
		QuotaSaturation: n.svc.QuotaSaturation(),
		FlightRecorded:  n.cfg.Recorder.Recorded(),
		FlightPinned:    n.cfg.Recorder.PinnedTotal(),
	}
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Health())
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	ids := make([]string, 0, len(n.sessions))
	for id := range n.sessions {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, InfoResponse{
		Node:        n.cfg.ID,
		Generation:  n.svc.Generation(),
		Fingerprint: fmt.Sprintf("%016x", n.svc.Engine().Fingerprint()),
		Sessions:    ids,
	})
}

// Close closes every open session (committing pending reports into their
// buffers, which are then dropped) — the node-local half of shutdown; the
// service itself is drained by its owner.
func (n *Node) Close() {
	n.mu.Lock()
	sessions := n.sessions
	n.sessions = map[string]*nodeSession{}
	n.mu.Unlock()
	for _, ns := range sessions {
		ns.mu.Lock()
		ns.ss.Close()
		ns.mu.Unlock()
	}
}
