package cluster

import (
	"context"
	"sort"
	"time"

	"bvap"
)

// Automatic session re-placement. Two movements keep every session on its
// ring owner as membership changes:
//
//   - Hand-off (both nodes alive — a join changed ownership): the current
//     holder checkpoints the session, replicates the record to the new
//     failover chain at quorum, transfers custody to the new owner (which
//     resumes immediately), and closes its local copy. The driver's next
//     call here answers 404 and its uniform sync recovery lands it on the
//     new owner; exactly-once holds because the driver truncates to its
//     durable position and the record's delta re-delivers the rest.
//
//   - Adoption (owner dead or left): the new owner finds a replicated
//     record whose origin is gone and resumes the session from the durable
//     bytes, so the stream is already live when the driver's recovery
//     sync arrives.
//
// Both run from RunRebalancer — woken by membership epoch changes
// (WakeRebalance wired as the membership's OnChange) and by a periodic
// belt-and-braces tick that also retries moves that failed transiently.

// WakeRebalance schedules a re-placement scan; it never blocks, collapsing
// bursts of epoch changes into one pending scan. Wire it (wrapped to drop
// the epoch argument) as MembershipConfig.OnChange.
func (n *Node) WakeRebalance(uint64) {
	select {
	case n.rebalanceCh <- struct{}{}:
	default:
	}
}

// RunRebalancer drives re-placement until ctx is done.
func (n *Node) RunRebalancer(ctx context.Context) {
	t := time.NewTicker(n.cfg.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.rebalanceCh:
		case <-t.C:
		}
		n.Rebalance(ctx)
	}
}

// Rebalance runs one re-placement scan now, returning how many sessions
// were handed off and how many were adopted. Failures are left for the
// next scan — every step (replicate, transfer, repair, adopt) is
// idempotent.
func (n *Node) Rebalance(ctx context.Context) (handoffs, adoptions int) {
	if n.cfg.Membership == nil || n.rep == nil {
		return 0, 0
	}
	handoffs = n.handoffCycle(ctx)
	n.repairCycle(ctx)
	adoptions = n.adoptCycle(ctx)
	return handoffs, adoptions
}

// repairCycle re-pushes the checkpoint record of every session still
// live on this node to its CURRENT failover chain. A join can change a
// chain's tail without moving the session: the holder keeps owning it,
// but the newest record was replicated to the old chain, so until the
// next checkpoint one kill could destroy the only copy reachable
// through the new ring. Pushes are best-effort and version-gated
// (newer-Pos wins) on the receiver, so the cycle is idempotent and
// never rolls durability backwards. Scope and ordering both guard
// against resurrection: only live sessions are repaired (a straggler
// record for a session living elsewhere is never re-spread), and the
// whole cycle runs under placeMu so a concurrent replicated close
// either lands first (session gone here, nothing pushed) or waits and
// fans its chain deletes out after these pushes. Holding placeMu
// across the pushes is safe: the receiving put handler only touches
// its record shelf, never its own placeMu.
func (n *Node) repairCycle(ctx context.Context) {
	self := n.cfg.Self
	n.placeMu.Lock()
	defer n.placeMu.Unlock()
	n.mu.Lock()
	ids := make([]string, 0, len(n.sessions))
	for id, ns := range n.sessions {
		if ns != nil {
			ids = append(ids, id)
		}
	}
	n.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		rec, ok := n.store.get(id)
		if !ok {
			continue
		}
		owners := n.rep.owners(id)
		inChain := false
		for _, o := range owners {
			if o == self {
				inChain = true
				break
			}
		}
		if !inChain {
			continue
		}
		for _, owner := range owners {
			if owner == self {
				continue
			}
			if err := n.cfg.Client.PostJSON(ctx, owner, "/cluster/checkpoint/put", rec, nil); err != nil {
				n.logRebalance("chain repair push failed", "session", id, "peer", owner, "err", err)
			}
		}
	}
}

// handoffCycle moves every live session this node no longer owns to its
// new ring owner.
func (n *Node) handoffCycle(ctx context.Context) int {
	ring, self := n.ring(), n.cfg.Self
	n.mu.Lock()
	ids := make([]string, 0, len(n.sessions))
	for id := range n.sessions {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	sort.Strings(ids)
	moved := 0
	for _, id := range ids {
		owner := ring.Owner(id)
		if owner == "" || owner == self {
			continue
		}
		n.mu.Lock()
		ns := n.sessions[id]
		n.mu.Unlock()
		if ns == nil {
			continue
		}
		ns.mu.Lock()
		if ns.gone {
			ns.mu.Unlock()
			continue
		}
		// Checkpoint commits everything up to the current position; the
		// delta then covers (lastDurable, Pos] in full — including matches
		// a driver has only seen provisionally, which it will re-learn
		// through sync after truncating to its durable length.
		ck := ns.ss.Checkpoint()
		wire, err := ck.MarshalBinary()
		if err != nil {
			ns.mu.Unlock()
			n.logRebalance("handoff checkpoint failed", "session", id, "err", err)
			continue
		}
		rec := CheckpointRecord{
			SessionID:  id,
			Pos:        ck.Pos(),
			PrevPos:    ns.lastDurable,
			Origin:     owner, // custody moves with the record
			Checkpoint: wire,
			Matches:    append([]Match(nil), ns.delta...),
			Interval:   ns.interval,
		}
		// Durability first: the record must survive this node AND the new
		// owner dying right after the transfer, so it goes to the chain at
		// quorum before the local session is released.
		if err := n.rep.replicate(ctx, rec); err != nil {
			ns.mu.Unlock()
			n.logRebalance("handoff replication failed", "session", id, "owner", owner, "err", err)
			continue
		}
		ns.delta = nil
		ns.lastDurable = rec.Pos
		if err := n.cfg.Client.PostJSON(ctx, owner, "/cluster/session/transfer", TransferRequest{Record: rec, Interval: ns.interval}, nil); err != nil {
			// The bytes are durable; the owner will adopt from its replica
			// on its own scan. Keep the local session until then so the
			// driver isn't left with no live endpoint.
			ns.mu.Unlock()
			n.logRebalance("handoff transfer failed; owner will adopt", "session", id, "owner", owner, "err", err)
			continue
		}
		ns.gone = true
		ns.ss.Close()
		ns.mu.Unlock()
		n.mu.Lock()
		if n.sessions[id] == ns {
			delete(n.sessions, id)
		}
		n.mu.Unlock()
		moved++
		n.handoffs.Add(1)
		if n.cHandoff != nil {
			n.cHandoff.Inc()
		}
		n.logRebalance("session handed off", "session", id, "owner", owner, "pos", rec.Pos)
	}
	return moved
}

// adoptCycle resumes orphaned sessions this node now owns from their
// replicated checkpoints.
func (n *Node) adoptCycle(ctx context.Context) int {
	ring, self := n.ring(), n.cfg.Self
	adopted := 0
	for _, id := range n.store.ids() {
		if ring.Owner(id) != self {
			continue
		}
		n.placeMu.Lock()
		rec, ok := n.store.get(id)
		if !ok {
			n.placeMu.Unlock()
			continue
		}
		n.mu.Lock()
		_, live := n.sessions[id]
		n.mu.Unlock()
		if live {
			n.placeMu.Unlock()
			continue
		}
		// Only adopt when no other node can still hold the session live:
		// custody was explicitly transferred here, or the recorded origin
		// is dead, left, or unknown. An alive/suspect origin keeps custody
		// — it will hand off on its own scan.
		if rec.Origin != self {
			if st, known := n.cfg.Membership.State(rec.Origin); known && (st == StateAlive || st == StateSuspect) {
				n.placeMu.Unlock()
				continue
			}
		}
		err := n.adoptLocked(rec, rec.Interval)
		n.placeMu.Unlock()
		if err != nil {
			n.logRebalance("adoption failed", "session", id, "origin", rec.Origin, "err", err)
			continue
		}
		adopted++
		n.logRebalance("session adopted", "session", id, "origin", rec.Origin, "pos", rec.Pos)
		// Re-replicate under this node's custody: the chain likely changed
		// with the epoch, and the record's origin must now point here so
		// a further failure is attributed correctly.
		rec.Origin = self
		if err := n.rep.replicate(ctx, rec); err != nil {
			n.logRebalance("post-adoption replication short of quorum", "session", id, "err", err)
		}
	}
	return adopted
}

// adoptLocked resumes one session from its durable record. Callers hold
// placeMu and have verified no live session exists.
func (n *Node) adoptLocked(rec CheckpointRecord, interval int) error {
	ns, err := n.installSession(rec.SessionID, interval, func(cfg *bvap.SessionConfig) (*bvap.StreamSession, error) {
		return n.svc.ResumeSessionBytes(rec.Checkpoint, cfg)
	})
	if err != nil {
		return err
	}
	ns.mu.Lock()
	ns.lastDurable = rec.Pos
	ns.buf, ns.delta = nil, nil
	ns.mu.Unlock()
	n.adoptions.Add(1)
	if n.cAdopt != nil {
		n.cAdopt.Inc()
	}
	return nil
}

func (n *Node) logRebalance(msg string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Info(msg, append([]any{"node", n.cfg.ID}, args...)...)
	}
}
