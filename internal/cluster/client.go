package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"bvap/internal/serve"
	"bvap/internal/tracing"
)

// TraceHeader carries the trace id across inter-node hops: the client
// stamps it from the request context, the receiving node adopts it
// (tracing.Recorder.StartTraceRemote), and both nodes' /debug/trace/{id}
// then serve their halves of the same request.
const TraceHeader = "X-Bvap-Trace-Id"

// SpanHeader carries the caller's span id alongside TraceHeader — the span
// context of cross-node stitching. The client opens a client span per call
// and stamps its id here; the receiving node adopts it as the remote
// parent (tracing.Recorder.StartTraceRemoteSpan), and the fleet assembler
// later grafts the server-side fragment under that exact client span to
// rebuild one causally-ordered tree.
const SpanHeader = "X-Bvap-Span-Id"

// TenantHeader carries the tenant id of a proxied request, so per-tenant
// quotas meter the originating tenant rather than the forwarding node.
const TenantHeader = "X-Bvap-Tenant"

// GossipHeader piggybacks a base64 BVGS membership table on ordinary
// inter-node traffic: a gossip-enabled client stamps its snapshot on every
// request, the receiving node merges it and echoes its own table on the
// response, and the client merges that — so membership spreads at the
// speed of whatever the fleet is already doing, with the probe loop as
// the idle-time floor.
const GossipHeader = "X-Bvap-Gossip"

// ClientConfig tunes the inter-node client. The zero value selects 3
// attempts, a 2-second per-attempt timeout, the serve.Backoff defaults
// (50 ms base, jittered doubling) between attempts, and the serve.Breaker
// defaults per peer.
type ClientConfig struct {
	// MaxAttempts bounds tries per call (first + retries); values < 1
	// select 3.
	MaxAttempts int
	// AttemptTimeout bounds each attempt, layered under the caller's
	// context; values <= 0 select 2 seconds.
	AttemptTimeout time.Duration
	// Backoff is the inter-attempt delay schedule; zero fields take the
	// serve.Backoff defaults.
	Backoff serve.Backoff
	// Breaker tunes the per-peer circuit breaker; the zero value takes the
	// serve.BreakerConfig defaults.
	Breaker serve.BreakerConfig
	// HTTPClient, when non-nil, replaces http.DefaultClient (tests inject
	// httptest clients).
	HTTPClient *http.Client
	// Membership, when non-nil, piggybacks this node's gossip table on
	// every request (GossipHeader) and merges the peer's echoed table from
	// every response. Set on node-owned clients; driver/coordinator
	// clients leave it nil. The membership itself probes through a Client,
	// so the usual construction order is NewClient → NewMembership →
	// Client.SetMembership.
	Membership *Membership
}

// Client is the fleet's inter-node HTTP transport: JSON-over-POST with
// typed errors, per-attempt timeouts, jittered exponential retry on
// transient failures, a per-peer circuit breaker, and trace-id
// propagation. Safe for concurrent use.
type Client struct {
	cfg ClientConfig
	hc  *http.Client
	brk *serve.Breaker
	mem atomic.Pointer[Membership]
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{cfg: cfg, hc: hc, brk: serve.NewBreaker(cfg.Breaker, nil)}
	if cfg.Membership != nil {
		c.mem.Store(cfg.Membership)
	}
	return c
}

// SetMembership enables gossip piggybacking after construction — the
// membership probes through this very client, so it cannot exist before
// the client does.
func (c *Client) SetMembership(m *Membership) { c.mem.Store(m) }

// PeerError is a failed inter-node call: the peer, the path, how many
// attempts were spent, the final HTTP status (0 when the failure was
// transport-level) and the underlying cause. It unwraps to the cause, so
// errors.Is sees context cancellation, serve.ErrQuarantined (peer breaker
// open) and the remote error sentinels a node maps onto status codes.
type PeerError struct {
	Peer     string
	Path     string
	Attempts int
	Status   int
	Err      error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s %s failed after %d attempt(s): %v", e.Peer, e.Path, e.Attempts, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// remoteError is a non-2xx JSON error payload relayed from a peer.
type remoteError struct {
	Status int
	Msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("peer returned %d: %s", e.Status, e.Msg)
}

// PostJSON calls POST peer+path with req as JSON and decodes the 2xx
// response into resp (ignored when resp is nil). Transient failures —
// transport errors, 429 and 5xx statuses — are retried on the backoff
// schedule until MaxAttempts or context expiry; non-retryable statuses
// fail fast. The peer's breaker opens after repeated failures
// (serve.ErrQuarantined via errors.Is) and re-closes on the escalating
// cooldown schedule.
func (c *Client) PostJSON(ctx context.Context, peer, path string, req, resp any) error {
	if !c.brk.Allow(peer) {
		return &PeerError{Peer: peer, Path: path, Err: serve.ErrQuarantined}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return &PeerError{Peer: peer, Path: path, Err: err}
	}
	// The client span covers the whole call (all attempts); its id rides
	// SpanHeader so the peer's server-side fragment grafts under it. On the
	// tracing-disabled path StartSpan returns (ctx, nil) with no allocation.
	ctx, sp := tracing.StartSpan(ctx, "cluster.client "+path)
	sp.SetStr("peer", peer)
	defer sp.End()
	var last error
	lastStatus := 0
	attempt := 0
	for ; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.cfg.Backoff.Wait(ctx, attempt-1); err != nil {
				break
			}
		}
		status, err := c.post(ctx, peer, path, body, resp)
		if err == nil {
			c.brk.Success(peer)
			return nil
		}
		last, lastStatus = err, status
		if !retryable(status, err) {
			c.brk.Success(peer) // the peer answered; the request was just refused
			return &PeerError{Peer: peer, Path: path, Attempts: attempt + 1, Status: status, Err: err}
		}
	}
	if last == nil {
		last = ctx.Err()
	}
	c.brk.Failure(peer)
	return &PeerError{Peer: peer, Path: path, Attempts: attempt, Status: lastStatus, Err: last}
}

// stampGossip attaches this node's membership snapshot to an outgoing
// request; mergeGossip folds in the peer's echoed table. Both are no-ops
// on membership-less (driver/coordinator) clients.
func (c *Client) stampGossip(hreq *http.Request) {
	if m := c.mem.Load(); m != nil {
		hreq.Header.Set(GossipHeader, base64.StdEncoding.EncodeToString(m.Snapshot()))
	}
}

func (c *Client) mergeGossip(hres *http.Response) {
	m := c.mem.Load()
	if m == nil {
		return
	}
	raw := hres.Header.Get(GossipHeader)
	if raw == "" {
		return
	}
	payload, err := base64.StdEncoding.DecodeString(raw)
	if err != nil {
		return
	}
	if g, err := DecodeGossip(payload); err == nil {
		m.Merge(g)
	}
}

// post runs one attempt under its own timeout.
func (c *Client) post(ctx context.Context, peer, path string, body []byte, resp any) (int, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := tracing.FromContext(ctx).IDString(); id != "" {
		hreq.Header.Set(TraceHeader, id)
	}
	if id := tracing.SpanFromContext(ctx).IDString(); id != "" {
		hreq.Header.Set(SpanHeader, id)
	}
	c.stampGossip(hreq)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return 0, err
	}
	c.mergeGossip(hres)
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hres.Body, 1<<16))
		hres.Body.Close()
	}()
	if hres.StatusCode/100 != 2 {
		var payload struct {
			Error string `json:"error"`
		}
		msg := hres.Status
		if json.NewDecoder(io.LimitReader(hres.Body, 1<<16)).Decode(&payload) == nil && payload.Error != "" {
			msg = payload.Error
		}
		return hres.StatusCode, &remoteError{Status: hres.StatusCode, Msg: msg}
	}
	if resp == nil {
		return hres.StatusCode, nil
	}
	if err := json.NewDecoder(io.LimitReader(hres.Body, 16<<20)).Decode(resp); err != nil {
		return hres.StatusCode, fmt.Errorf("decoding response: %w", err)
	}
	return hres.StatusCode, nil
}

// GetBytes calls GET peer+path and returns the 2xx response body, with the
// same retry, breaker, and trace/span propagation semantics as PostJSON —
// the transport of the fleet observability plane (span fragments, metric
// snapshots, node health). Bodies are capped at 16 MiB.
func (c *Client) GetBytes(ctx context.Context, peer, path string) ([]byte, error) {
	if !c.brk.Allow(peer) {
		return nil, &PeerError{Peer: peer, Path: path, Err: serve.ErrQuarantined}
	}
	ctx, sp := tracing.StartSpan(ctx, "cluster.client "+path)
	sp.SetStr("peer", peer)
	defer sp.End()
	var last error
	lastStatus := 0
	attempt := 0
	for ; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.cfg.Backoff.Wait(ctx, attempt-1); err != nil {
				break
			}
		}
		status, body, err := c.get(ctx, peer, path)
		if err == nil {
			c.brk.Success(peer)
			return body, nil
		}
		last, lastStatus = err, status
		if !retryable(status, err) {
			c.brk.Success(peer) // the peer answered; the request was just refused
			return nil, &PeerError{Peer: peer, Path: path, Attempts: attempt + 1, Status: status, Err: err}
		}
	}
	if last == nil {
		last = ctx.Err()
	}
	c.brk.Failure(peer)
	return nil, &PeerError{Peer: peer, Path: path, Attempts: attempt, Status: lastStatus, Err: last}
}

// GetJSON is GetBytes plus a JSON decode of the body into resp.
func (c *Client) GetJSON(ctx context.Context, peer, path string, resp any) error {
	body, err := c.GetBytes(ctx, peer, path)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(body, resp); err != nil {
		return &PeerError{Peer: peer, Path: path, Attempts: 1, Status: http.StatusOK,
			Err: fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// get runs one GET attempt under its own timeout.
func (c *Client) get(ctx context.Context, peer, path string) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodGet, peer+path, nil)
	if err != nil {
		return 0, nil, err
	}
	if id := tracing.FromContext(ctx).IDString(); id != "" {
		hreq.Header.Set(TraceHeader, id)
	}
	if id := tracing.SpanFromContext(ctx).IDString(); id != "" {
		hreq.Header.Set(SpanHeader, id)
	}
	c.stampGossip(hreq)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	c.mergeGossip(hres)
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hres.Body, 1<<16))
		hres.Body.Close()
	}()
	if hres.StatusCode/100 != 2 {
		var payload struct {
			Error string `json:"error"`
		}
		msg := hres.Status
		if json.NewDecoder(io.LimitReader(hres.Body, 1<<16)).Decode(&payload) == nil && payload.Error != "" {
			msg = payload.Error
		}
		return hres.StatusCode, nil, &remoteError{Status: hres.StatusCode, Msg: msg}
	}
	body, err := io.ReadAll(io.LimitReader(hres.Body, 16<<20))
	if err != nil {
		return hres.StatusCode, nil, err
	}
	return hres.StatusCode, body, nil
}

// retryable classifies one attempt's failure: transport errors and
// explicitly transient statuses retry; everything else (4xx semantics,
// decode failures of a 2xx body) does not. Context expiry stops the loop
// in Wait rather than here.
func retryable(status int, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return status == 0 // an attempt timeout is transient; caller expiry ends in Wait
	}
	if status == 0 {
		return true // transport-level failure
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}
