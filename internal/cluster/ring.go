// Package cluster turns a set of bvapd processes into one sharded scan
// fleet. It supplies the four mechanisms fleet operation needs above the
// single-node Service:
//
//   - placement: a consistent-hash ring (Ring) with virtual nodes and a
//     rendezvous tiebreak assigns stream and input keys to nodes, so
//     adding or removing one node moves only ~1/N of the keyspace;
//   - transport: an inter-node HTTP client (Client) with typed errors,
//     per-attempt timeouts, jittered exponential retry (internal/serve's
//     Backoff) and a per-peer circuit breaker (internal/serve's Breaker),
//     propagating trace ids across hops so /debug/trace/{id} on any node
//     finds its half of a request;
//   - coordinated reload: a two-phase fleet-wide publish (Coordinator)
//     generalizing the single-node build→validate→publish state machine —
//     prepare on every node, commit only when every node validated the
//     same fingerprint, rollback by non-publication otherwise;
//   - migration: node-side session endpoints (Node) that checkpoint an
//     in-flight BVAP-S stream into its wire form on one node and resume it
//     on another, preserving the session layer's exactly-once delivery.
//
// The package deliberately contains no consensus machinery: the
// coordinator is any caller (a deploy script, one of the nodes, a test
// driver), and safety does not depend on it surviving — an abandoned
// prepare is rolled back by non-publication, and a crashed commit round
// is converged by re-running Publish with a fresh ticket.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node vnode count when RingConfig leaves
// it zero: enough points that the largest arc owns only a few percent of
// the keyspace at small fleet sizes.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over node names. Each node projects
// VirtualNodes points onto the 64-bit ring; a key is owned by the node of
// the first point at or clockwise of the key's hash. Equal-hash point
// collisions (possible, if vanishingly rare, on a 64-bit ring) are broken
// by rendezvous hashing — highest combined point/key score wins — so
// ownership never depends on map iteration or insertion order. All
// methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by (hash, node) ascending
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// keyHash digests a key onto the ring: FNV-64a finalized by splitmix64 so
// structured keys (sequential session ids, host:port strings) spread
// uniformly.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a node (idempotent), projecting its virtual points.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: keyHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a node and its points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// VirtualNodes returns the per-node vnode count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Nodes returns the member node names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes for key in preference order: the
// owner first, then the successive distinct nodes clockwise — the
// replica/failover chain a driver walks when the owner is down.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	// Rendezvous tiebreak within an equal-hash run: every point with the
	// landing hash competes by combined score, so a hash collision between
	// two nodes' vnodes resolves deterministically for each key rather
	// than by sort order alone.
	if j := i; r.points[j].hash == h {
		best, bestScore := j, mix64(r.points[j].hash^h^keyHash(r.points[j].node))
		for k := j + 1; k < len(r.points) && r.points[k].hash == r.points[j].hash; k++ {
			if s := mix64(r.points[k].hash ^ h ^ keyHash(r.points[k].node)); s > bestScore {
				best, bestScore = k, s
			}
		}
		i = best
	}
	var out []string
	seen := map[string]bool{}
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
