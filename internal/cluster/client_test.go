package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bvap/internal/serve"
	"bvap/internal/tracing"
)

func fastClient(hc *http.Client) *Client {
	return NewClient(ClientConfig{
		HTTPClient:     hc,
		MaxAttempts:    3,
		AttemptTimeout: 2 * time.Second,
		Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
	})
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"pong": "ok"})
	}))
	defer srv.Close()

	var resp map[string]string
	if err := fastClient(srv.Client()).PostJSON(context.Background(), srv.URL, "/ping", map[string]int{}, &resp); err != nil {
		t.Fatalf("PostJSON after transient 503s: %v", err)
	}
	if calls.Load() != 3 || resp["pong"] != "ok" {
		t.Fatalf("calls=%d resp=%v; want 3 attempts then success", calls.Load(), resp)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	err := fastClient(srv.Client()).PostJSON(context.Background(), srv.URL, "/x", map[string]int{}, nil)
	if err == nil {
		t.Fatal("404 reported as success")
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Status != http.StatusNotFound || pe.Attempts != 1 {
		t.Fatalf("err = %#v; want one-attempt *PeerError with status 404", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 404: %d calls", calls.Load())
	}
}

func TestClientBreakerOpensOnRepeatedFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(ClientConfig{
		HTTPClient:     srv.Client(),
		MaxAttempts:    1,
		AttemptTimeout: time.Second,
		Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
		Breaker:        serve.BreakerConfig{Threshold: 2, Window: time.Minute, Cooldown: time.Hour},
	})
	for i := 0; i < 2; i++ {
		if err := c.PostJSON(context.Background(), srv.URL, "/x", map[string]int{}, nil); err == nil {
			t.Fatal("503 reported as success")
		}
	}
	// Third call: the peer's breaker is open — refused without an HTTP hit.
	err := c.PostJSON(context.Background(), srv.URL, "/x", map[string]int{}, nil)
	if !errors.Is(err, serve.ErrQuarantined) {
		t.Fatalf("call on open breaker = %v, want ErrQuarantined", err)
	}
}

func TestClientPropagatesTraceHeader(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(TraceHeader))
		json.NewEncoder(w).Encode(map[string]int{})
	}))
	defer srv.Close()

	tr := tracing.NewTrace("cross-node")
	ctx := tracing.NewContext(context.Background(), tr)
	if err := fastClient(srv.Client()).PostJSON(ctx, srv.URL, "/x", map[string]int{}, nil); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if h, _ := got.Load().(string); h != tr.IDString() {
		t.Fatalf("peer saw trace header %q, want %q", got.Load(), tr.IDString())
	}
}

func TestClientHonorsCallerContext(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block) // LIFO: unblock the handler before srv.Close waits on it

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := NewClient(ClientConfig{
		HTTPClient:     srv.Client(),
		MaxAttempts:    10,
		AttemptTimeout: 10 * time.Second,
		Backoff:        serve.Backoff{Base: time.Millisecond, Jitter: -1},
	}).PostJSON(ctx, srv.URL, "/slow", map[string]int{}, nil)
	if err == nil {
		t.Fatal("call against a hung peer succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to unwrap to context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("caller deadline of 50ms took %v to enforce", elapsed)
	}
}
