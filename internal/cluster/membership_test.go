package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bvap"
	"bvap/internal/serve"
)

func TestGossipWireRoundTrip(t *testing.T) {
	g := Gossip{
		From:  "http://b:1",
		Epoch: 42,
		Members: []MemberRecord{
			{URL: "http://c:1", State: StateDead, Incarnation: 7},
			{URL: "http://a:1", State: StateAlive, Incarnation: 0},
			{URL: "http://b:1", State: StateSuspect, Incarnation: 3},
		},
	}
	wire := EncodeGossip(g)
	got, err := DecodeGossip(wire)
	if err != nil {
		t.Fatalf("DecodeGossip: %v", err)
	}
	if got.From != g.From || got.Epoch != g.Epoch || len(got.Members) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Canonical order: sorted ascending by URL.
	for i := 1; i < len(got.Members); i++ {
		if got.Members[i-1].URL >= got.Members[i].URL {
			t.Fatalf("members not canonical: %+v", got.Members)
		}
	}
	if re := EncodeGossip(got); !bytes.Equal(re, wire) {
		t.Fatal("decode∘encode is not the identity")
	}
}

func TestGossipWireRejectsCorruption(t *testing.T) {
	wire := EncodeGossip(Gossip{From: "http://a:1", Epoch: 1,
		Members: []MemberRecord{{URL: "http://a:1", State: StateAlive}}})
	cases := map[string][]byte{
		"empty":     {},
		"short":     wire[:8],
		"truncated": wire[:len(wire)-3],
		"trailing":  append(append([]byte{}, wire...), 0),
	}
	flipped := append([]byte{}, wire...)
	flipped[9] ^= 0x40
	cases["bitflip"] = flipped
	badsum := append([]byte{}, wire...)
	badsum[len(badsum)-1] ^= 1
	cases["badsum"] = badsum
	for name, data := range cases {
		if _, err := DecodeGossip(data); !errors.Is(err, ErrGossipCorrupt) {
			t.Errorf("%s: want ErrGossipCorrupt, got %v", name, err)
		}
	}
}

// FuzzMembershipWire pins the BVGS contract: decoding never panics, every
// accepted payload re-encodes byte-identically (canonical form), and
// corrupting the checksum of an accepted payload is always caught.
func FuzzMembershipWire(f *testing.F) {
	f.Add(EncodeGossip(Gossip{From: "http://a:1", Epoch: 3, Members: []MemberRecord{
		{URL: "http://a:1", State: StateAlive, Incarnation: 1},
		{URL: "http://b:1", State: StateDead, Incarnation: 7},
	}}))
	f.Add(EncodeGossip(Gossip{From: "x", Epoch: 0, Members: nil}))
	f.Add([]byte("BVGS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGossip(data)
		if err != nil {
			if !errors.Is(err, ErrGossipCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		re := EncodeGossip(g)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode not byte-equal:\n in: %x\nout: %x", data, re)
		}
		bad := append([]byte{}, data...)
		bad[len(bad)-1] ^= 0x01
		if _, err := DecodeGossip(bad); err == nil {
			t.Fatal("corrupted checksum accepted")
		}
	})
}

// exchange runs one bidirectional gossip round between a and b.
func exchange(a, b *Membership) {
	ga, _ := DecodeGossip(a.Snapshot())
	b.Merge(ga)
	gb, _ := DecodeGossip(b.Snapshot())
	a.Merge(gb)
}

func ringSet(m *Membership) []string { return m.Ring().Nodes() }

func TestMembershipMergeConvergence(t *testing.T) {
	ms := make([]*Membership, 4)
	for i := range ms {
		ms[i] = NewMembership(MembershipConfig{Self: fmt.Sprintf("http://n%d", i)})
	}
	// Arbitrary pairwise exchanges must converge every table to the same
	// member set and the same epoch.
	for round := 0; round < 3; round++ {
		for i := range ms {
			for j := range ms {
				if i != j {
					exchange(ms[i], ms[j])
				}
			}
		}
	}
	want := ringSet(ms[0])
	if len(want) != 4 {
		t.Fatalf("ring set = %v, want 4 members", want)
	}
	epoch := ms[0].Epoch()
	for i, m := range ms[1:] {
		if got := ringSet(m); !equalStrings(got, want) {
			t.Fatalf("node %d ring set %v != %v", i+1, got, want)
		}
		if e := m.Epoch(); e != epoch {
			t.Fatalf("node %d epoch %d != %d", i+1, e, epoch)
		}
	}
}

func TestMembershipSuspectDeadAndRefute(t *testing.T) {
	a := NewMembership(MembershipConfig{Self: "http://a", SuspectTimeout: time.Millisecond})
	b := NewMembership(MembershipConfig{Self: "http://b"})
	exchange(a, b)
	if got := ringSet(a); len(got) != 2 {
		t.Fatalf("ring = %v", got)
	}
	epochBefore := a.Epoch()

	a.markSuspect("http://b")
	if got := ringSet(a); len(got) != 2 {
		t.Fatalf("suspect must stay in the ring, got %v", got)
	}
	time.Sleep(2 * time.Millisecond)
	a.expireSuspects(time.Now())
	if got := ringSet(a); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("dead member still in ring: %v", got)
	}
	if a.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance on death: %d <= %d", a.Epoch(), epochBefore)
	}

	// b learns it has been declared dead and refutes with a higher
	// incarnation; a must take it back.
	exchange(a, b)
	if st, _ := b.State("http://b"); st != StateAlive {
		t.Fatalf("b's own state = %v", st)
	}
	exchange(a, b)
	if st, _ := a.State("http://b"); st != StateAlive {
		t.Fatalf("a still sees b as %v after refutation", st)
	}
	if got := ringSet(a); len(got) != 2 {
		t.Fatalf("refuted member not back in ring: %v", got)
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs diverged after refutation: %d vs %d", a.Epoch(), b.Epoch())
	}
}

func TestMembershipOnChangeAndLeave(t *testing.T) {
	var epochs []uint64
	a := NewMembership(MembershipConfig{Self: "http://a", OnChange: func(e uint64) { epochs = append(epochs, e) }})
	b := NewMembership(MembershipConfig{Self: "http://b"})
	exchange(a, b)
	if len(epochs) != 1 {
		t.Fatalf("OnChange fired %d times after join, want 1", len(epochs))
	}

	b.Leave(context.Background()) // clientless: local transition only
	exchange(a, b)
	if st, _ := a.State("http://b"); st != StateLeft {
		t.Fatalf("a sees b as %v, want left", st)
	}
	if got := ringSet(a); len(got) != 1 {
		t.Fatalf("left member still in ring: %v", got)
	}
	if len(epochs) != 2 {
		t.Fatalf("OnChange fired %d times, want 2", len(epochs))
	}
}

// TestMembershipProbeLoop exercises the HTTP half: two live nodes probe
// each other into one ring; killing one drives suspect→dead on the
// survivor within the timeout bound; the epochs of survivors agree.
func TestMembershipProbeLoop(t *testing.T) {
	mkNode := func(id string) (*Membership, *Node, *httptest.Server) {
		svc, err := bvap.NewService([]string{"ab{2}c"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		var n *Node
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.Handler().ServeHTTP(w, r)
		}))
		mem := NewMembership(MembershipConfig{
			Self:           srv.URL,
			ProbeInterval:  5 * time.Millisecond,
			SuspectTimeout: 20 * time.Millisecond,
			Client: NewClient(ClientConfig{MaxAttempts: 1, AttemptTimeout: time.Second,
				Backoff: serve.Backoff{Base: time.Millisecond, Jitter: -1},
				Breaker: serve.BreakerConfig{Threshold: 1 << 30}}),
		})
		n = NewNode(svc, NodeConfig{ID: id, Membership: mem})
		t.Cleanup(func() { srv.Close(); n.Close() })
		return mem, n, srv
	}
	memA, _, _ := mkNode("a")
	memB, _, srvB := mkNode("b")
	memC, _, _ := mkNode("c")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := memB.Join(ctx, []string{memA.Self()}); err != nil {
		t.Fatalf("join b: %v", err)
	}
	if err := memC.Join(ctx, []string{memA.Self()}); err != nil {
		t.Fatalf("join c: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		memA.Tick(ctx)
		memB.Tick(ctx)
		memC.Tick(ctx)
		if len(ringSet(memA)) == 3 && equalStrings(ringSet(memA), ringSet(memB)) &&
			equalStrings(ringSet(memB), ringSet(memC)) &&
			memA.Epoch() == memB.Epoch() && memB.Epoch() == memC.Epoch() {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no convergence: a=%v b=%v c=%v", ringSet(memA), ringSet(memB), ringSet(memC))
		case <-time.After(time.Millisecond):
		}
	}

	// Kill b without ceremony: a and c must converge on a 2-member ring
	// with equal epochs.
	srvB.CloseClientConnections()
	srvB.Close()
	deadline = time.After(5 * time.Second)
	for {
		memA.Tick(ctx)
		memC.Tick(ctx)
		sa, sc := ringSet(memA), ringSet(memC)
		if len(sa) == 2 && equalStrings(sa, sc) && memA.Epoch() == memC.Epoch() {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("survivors did not converge: a=%v(%d) c=%v(%d)", sa, memA.Epoch(), sc, memC.Epoch())
		case <-time.After(time.Millisecond):
		}
	}
	if st, _ := memA.State(memB.Self()); st != StateDead {
		t.Fatalf("a sees killed b as %v", st)
	}
}
