package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// The gossip wire form ("BVGS") is the unit of membership exchange: one
// node's full member table plus its epoch, length-prefixed and closed by an
// FNV-64a checksum so a truncated or bit-flipped payload is refused rather
// than merged. The member list is canonical — strictly ascending by URL —
// which makes every valid payload the unique encoding of its table:
// decode∘encode is the identity, the property FuzzMembershipWire pins.
//
// Layout (all integers little-endian):
//
//	[4]  magic "BVGS"
//	u8   version (1)
//	u8   flags (reserved, must be 0)
//	u64  epoch
//	u16  len(from) | from bytes (sender URL)
//	u32  member count
//	per member, strictly ascending by URL:
//	  u16 len(url) | url bytes
//	  u8  state
//	  u64 incarnation
//	u64  FNV-64a of everything above
const (
	gossipMagic   = "BVGS"
	gossipVersion = 1

	maxGossipURL     = 1024
	maxGossipMembers = 4096
)

// ErrGossipCorrupt reports a gossip payload that failed structural or
// checksum validation and was not merged.
var ErrGossipCorrupt = errors.New("cluster: corrupt gossip payload")

// MemberState is one member's position in the SWIM-style failure-detection
// state machine. Higher states win ties at equal incarnation, so a node
// observed dead stays dead until the member itself refutes with a higher
// incarnation.
type MemberState uint8

const (
	// StateAlive is a member answering probes.
	StateAlive MemberState = iota
	// StateSuspect is a member that failed a direct probe and has
	// SuspectTimeout to refute before being declared dead.
	StateSuspect
	// StateDead is a member that stayed suspect past the timeout; it is
	// out of the ring and its sessions are adoptable.
	StateDead
	// StateLeft is a member that announced a graceful leave (bvapd drain);
	// like dead it is out of the ring, but operators can tell the two
	// apart.
	StateLeft
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MemberRecord is one member's gossiped state.
type MemberRecord struct {
	URL         string      `json:"url"`
	State       MemberState `json:"state"`
	Incarnation uint64      `json:"incarnation"`
}

// Gossip is one decoded membership exchange: the sender, its epoch, and
// its full member table.
type Gossip struct {
	From    string
	Epoch   uint64
	Members []MemberRecord
}

// EncodeGossip serializes g into the BVGS wire form. Members are sorted
// into the canonical order; the caller's slice is not modified.
func EncodeGossip(g Gossip) []byte {
	members := make([]MemberRecord, len(g.Members))
	copy(members, g.Members)
	sort.Slice(members, func(i, j int) bool { return members[i].URL < members[j].URL })
	size := 4 + 1 + 1 + 8 + 2 + len(g.From) + 4
	for _, m := range members {
		size += 2 + len(m.URL) + 1 + 8
	}
	size += 8
	buf := make([]byte, 0, size)
	buf = append(buf, gossipMagic...)
	buf = append(buf, gossipVersion, 0)
	buf = binary.LittleEndian.AppendUint64(buf, g.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.From)))
	buf = append(buf, g.From...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(members)))
	for _, m := range members {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.URL)))
		buf = append(buf, m.URL...)
		buf = append(buf, byte(m.State))
		buf = binary.LittleEndian.AppendUint64(buf, m.Incarnation)
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// DecodeGossip parses and validates a BVGS payload. Any structural damage
// — bad magic or version, nonzero reserved flags, over-limit lengths, an
// unknown state, out-of-order or duplicate member URLs, trailing bytes, or
// a checksum mismatch — returns ErrGossipCorrupt.
func DecodeGossip(data []byte) (Gossip, error) {
	fail := func(what string) (Gossip, error) {
		return Gossip{}, fmt.Errorf("%w: %s", ErrGossipCorrupt, what)
	}
	if len(data) < 4+1+1+8+2+4+8 {
		return fail("short payload")
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return fail("checksum mismatch")
	}
	if string(body[:4]) != gossipMagic {
		return fail("bad magic")
	}
	if body[4] != gossipVersion {
		return fail(fmt.Sprintf("unsupported version %d", body[4]))
	}
	if body[5] != 0 {
		return fail("nonzero reserved flags")
	}
	off := 6
	var g Gossip
	g.Epoch = binary.LittleEndian.Uint64(body[off:])
	off += 8
	fromLen := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if fromLen == 0 || fromLen > maxGossipURL || off+fromLen+4 > len(body) {
		return fail("bad sender length")
	}
	g.From = string(body[off : off+fromLen])
	off += fromLen
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if count > maxGossipMembers {
		return fail("member count over limit")
	}
	g.Members = make([]MemberRecord, 0, count)
	prev := ""
	for i := 0; i < count; i++ {
		if off+2 > len(body) {
			return fail("truncated member")
		}
		urlLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if urlLen == 0 || urlLen > maxGossipURL || off+urlLen+1+8 > len(body) {
			return fail("bad member length")
		}
		url := string(body[off : off+urlLen])
		off += urlLen
		if url <= prev {
			return fail("member order not canonical")
		}
		prev = url
		state := MemberState(body[off])
		off++
		if state > StateLeft {
			return fail("unknown member state")
		}
		inc := binary.LittleEndian.Uint64(body[off:])
		off += 8
		g.Members = append(g.Members, MemberRecord{URL: url, State: state, Incarnation: inc})
	}
	if off != len(body) {
		return fail("trailing bytes")
	}
	return g, nil
}
