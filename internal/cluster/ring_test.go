package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnershipStableAndTotal(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	if got := len(r.Nodes()); got != 5 {
		t.Fatalf("Nodes() = %d entries, want 5", got)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session-%d", i)
		o1, o2 := r.Owner(key), r.Owner(key)
		if o1 == "" || o1 != o2 {
			t.Fatalf("Owner(%q) unstable or empty: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if o := r.Owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", o)
	}
	if os := r.Owners("k", 3); os != nil {
		t.Fatalf("empty ring owners = %v, want nil", os)
	}
	r.Add("only")
	r.Add("only") // idempotent
	for i := 0; i < 100; i++ {
		if o := r.Owner(fmt.Sprintf("k%d", i)); o != "only" {
			t.Fatalf("single-node ring owner = %q", o)
		}
	}
}

func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 4000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	r.Remove("c")
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if after == "c" {
			t.Fatal("removed node still owns keys")
		}
		if after != before[i] {
			if before[i] != "c" {
				t.Fatalf("key-%d moved %q→%q though neither is the removed node", i, before[i], after)
			}
			moved++
		}
	}
	// Only c's keys moved; with 4 nodes that should be ~1/4 of the space.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d of %d keys moved on one removal; consistent hashing should move ~1/4", moved, keys)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("stream/%d", i))]++
	}
	for n, c := range counts {
		// Perfect balance is 2000; accept a generous 3x spread — the test
		// guards against degenerate placement (one node owning everything),
		// not statistical variance.
		if c < keys/12 || c > keys/2 {
			t.Fatalf("node %s owns %d of %d keys; ring is badly unbalanced: %v", n, c, keys, counts)
		}
	}
}

func TestRingOwnersDistinctPreferenceChain(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v", key, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners[0] (%q) != Owner (%q)", owners[0], r.Owner(key))
		}
		// Asking for more replicas than nodes returns all nodes once.
		if all := r.Owners(key, 10); len(all) != 4 {
			t.Fatalf("Owners(%q, 10) = %d nodes, want 4", key, len(all))
		}
	}
}

// TestRingMinimalDisruption is the property behind automatic
// re-placement cost: on any single join or leave, only keys whose owner
// actually changed move, and the moved fraction is ≈ 1/N — so an epoch
// change re-places ~1/N of the fleet's sessions, not all of them. Checked
// across seeded insertion-order permutations, since ownership must not
// depend on construction order.
func TestRingMinimalDisruption(t *testing.T) {
	const keys = 4000
	for _, n := range []int{3, 5, 8} {
		for seed := 0; seed < 6; seed++ {
			nodes := make([]string, n)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("http://node-%d", i)
			}
			// Seeded permutation of insertion order (splitmix-driven
			// Fisher-Yates — no global rand, fully deterministic).
			state := uint64(seed)*0x9e3779b9 + 1
			for i := n - 1; i > 0; i-- {
				state = mix64(state)
				j := int(state % uint64(i+1))
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
			r := NewRing(0)
			for _, node := range nodes {
				r.Add(node)
			}
			before := make(map[string]string, keys)
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("stream-%d-%d", seed, k)
				before[key] = r.Owner(key)
			}

			// Join: every moved key must land on the new node.
			joined := "http://node-new"
			r.Add(joined)
			moved := 0
			for key, owner := range before {
				now := r.Owner(key)
				if now != owner {
					moved++
					if now != joined {
						t.Fatalf("n=%d seed=%d: key %s moved %s→%s, not to the joined node", n, seed, key, owner, now)
					}
				}
			}
			assertMovedFraction(t, "join", n, seed, moved, keys, n+1)

			// Leave: every moved key must have belonged to the leaver.
			r.Remove(joined)
			for key, owner := range before {
				if got := r.Owner(key); got != owner {
					t.Fatalf("n=%d seed=%d: remove did not restore key %s (%s→%s)", n, seed, key, owner, got)
				}
			}
			victim := nodes[0]
			r.Remove(victim)
			moved = 0
			for key, owner := range before {
				if r.Owner(key) != owner {
					moved++
					if owner != victim {
						t.Fatalf("n=%d seed=%d: key %s moved but was owned by %s, not the removed %s", n, seed, key, owner, victim)
					}
				}
			}
			assertMovedFraction(t, "leave", n, seed, moved, keys, n)
		}
	}
}

// assertMovedFraction checks moved/total ≈ 1/parts within generous vnode
// variance bounds (64 vnodes per node ⇒ per-node share concentrates
// within a small factor of the mean).
func assertMovedFraction(t *testing.T, op string, n, seed, moved, total, parts int) {
	t.Helper()
	frac := float64(moved) / float64(total)
	want := 1 / float64(parts)
	if frac < 0.3*want || frac > 2.5*want {
		t.Fatalf("%s n=%d seed=%d: moved fraction %.4f outside [0.3,2.5]×%.4f", op, n, seed, frac, want)
	}
}
