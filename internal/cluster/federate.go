package cluster

// The coordinator side of the fleet observability plane: a Federator that
// scrapes every node's /cluster/metrics into one merged fleet view,
// assembles cross-node traces from /cluster/trace/{id} fragments, and
// probes /cluster/health into a fleet health report. bvapd mounts the
// results under /debug/fleet/*.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// FederatorConfig tunes the fleet scrape loop.
type FederatorConfig struct {
	// Interval is the background scrape cadence; values <= 0 select 10s.
	Interval time.Duration
	// Logger, when non-nil, receives scrape failures.
	Logger *slog.Logger
	// Local, when non-nil, contributes the coordinator's own registry
	// snapshot (under node id LocalID) to the fleet view without an HTTP
	// round trip.
	Local   *telemetry.Registry
	LocalID string
	// LocalRecorder, when non-nil, contributes the coordinator's own
	// retained trace fragments to FleetTrace — the driver's half of a
	// distributed request (its client spans) lives here.
	LocalRecorder *tracing.Recorder
	// Membership, when non-nil, is consulted before every scrape/probe:
	// peers it knows to be dead or left are skipped (and counted under
	// bvap_fleet_scrape_skipped_total) instead of burning client breaker
	// budget forever on a host that is never coming back.
	Membership *Membership
	// Metrics, when non-nil, receives the federator's own counters.
	Metrics *telemetry.Registry
}

// ErrPeerSkipped marks a peer that was not scraped because membership
// knows it to be dead or left.
var ErrPeerSkipped = errors.New("cluster: peer skipped (membership reports it dead or left)")

// NodeSamples is one node's decoded snapshot within a FleetSnapshot.
type NodeSamples struct {
	Node    string
	Err     error // scrape or decode failure; Samples nil
	Samples []telemetry.Sample
}

// FleetSnapshot is one federation round: every node's snapshot plus the
// merged fleet-wide sample set.
type FleetSnapshot struct {
	Taken time.Time
	Nodes []NodeSamples
	// Fleet is the cross-node Merge: counters summed exactly, histograms
	// merged bucket-for-bucket, exemplars from the most recent node.
	Fleet []telemetry.Sample
	// MergeErr reports a federation layout conflict (nodes exposing
	// incompatible histogram ladders); Fleet is nil when set.
	MergeErr error
}

// Federator periodically scrapes the fleet's per-node metric snapshots and
// keeps the latest merged view. Safe for concurrent use.
type Federator struct {
	client *Client
	peers  []string
	cfg    FederatorConfig

	cSkipped *telemetry.CounterVec

	mu   sync.Mutex
	last *FleetSnapshot
}

// NewFederator builds a federator over peers (base URLs).
func NewFederator(client *Client, peers []string, cfg FederatorConfig) *Federator {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	f := &Federator{client: client, peers: append([]string(nil), peers...), cfg: cfg}
	if cfg.Metrics != nil {
		f.cSkipped = cfg.Metrics.CounterVec("bvap_fleet_scrape_skipped_total",
			"Fleet scrapes/probes skipped because membership reports the peer dead or left.", "reason")
	}
	return f
}

// skipPeer reports whether membership says peer is gone for good; reason
// is its state name ("dead"/"left"). Unknown peers are never skipped — a
// static peer list may legitimately name nodes the gossip layer hasn't
// met yet.
func (f *Federator) skipPeer(peer string) (string, bool) {
	if f.cfg.Membership == nil {
		return "", false
	}
	st, known := f.cfg.Membership.State(peer)
	if !known || (st != StateDead && st != StateLeft) {
		return "", false
	}
	if f.cSkipped != nil {
		f.cSkipped.With(st.String()).Inc()
	}
	return st.String(), true
}

// Scrape runs one federation round now, remembers it as the latest, and
// returns it. Per-node failures are recorded in the snapshot rather than
// failing the round — a fleet view that drops a crashed node beats no
// view.
func (f *Federator) Scrape(ctx context.Context) *FleetSnapshot {
	snap := &FleetSnapshot{Taken: time.Now()}
	results := make([]NodeSamples, len(f.peers))
	var wg sync.WaitGroup
	for i, peer := range f.peers {
		if _, skip := f.skipPeer(peer); skip {
			results[i] = NodeSamples{Node: peer, Err: ErrPeerSkipped}
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			var resp MetricsResponse
			if err := f.client.GetJSON(ctx, peer, "/cluster/metrics", &resp); err != nil {
				results[i] = NodeSamples{Node: peer, Err: err}
				return
			}
			samples, err := telemetry.UnmarshalSamples(resp.Metrics)
			if err != nil {
				results[i] = NodeSamples{Node: resp.Node, Err: err}
				return
			}
			results[i] = NodeSamples{Node: resp.Node, Samples: samples}
		}(i, peer)
	}
	wg.Wait()
	if f.cfg.Local != nil {
		// A peer list that includes this process's own URL (the usual bvapd
		// convention — publishes must reach every node including the
		// coordinator) would count the local registry twice; the scraped
		// copy identifies itself by node id, so drop it in favour of the
		// fresher in-process snapshot.
		kept := results[:0]
		for _, n := range results {
			if n.Err == nil && f.cfg.LocalID != "" && n.Node == f.cfg.LocalID {
				continue
			}
			kept = append(kept, n)
		}
		results = append(kept, NodeSamples{Node: f.cfg.LocalID, Samples: f.cfg.Local.Snapshot()})
	}
	snap.Nodes = results

	sets := make([][]telemetry.Sample, 0, len(results))
	for _, n := range results {
		if n.Err == nil {
			sets = append(sets, n.Samples)
		} else if f.cfg.Logger != nil && !errors.Is(n.Err, ErrPeerSkipped) {
			f.cfg.Logger.Warn("fleet metrics scrape failed", "peer", n.Node, "err", n.Err)
		}
	}
	snap.Fleet, snap.MergeErr = telemetry.Merge(sets...)
	if snap.MergeErr != nil && f.cfg.Logger != nil {
		f.cfg.Logger.Error("fleet metrics merge failed", "err", snap.MergeErr)
	}

	f.mu.Lock()
	f.last = snap
	f.mu.Unlock()
	return snap
}

// Last returns the most recent snapshot (nil before the first scrape).
func (f *Federator) Last() *FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Run scrapes on the configured cadence until ctx is done — bvapd's
// background federation loop.
func (f *Federator) Run(ctx context.Context) {
	ticker := time.NewTicker(f.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			f.Scrape(ctx)
		}
	}
}

// WriteOpenMetrics renders snap as one OpenMetrics document: the merged
// fleet series first (no node label — these are the fleet totals, with
// bvap_serve_scan_energy_pj aggregated across shards), then every node's
// series re-labeled with node="<id>" so per-node drill-down needs no
// second endpoint.
func (snap *FleetSnapshot) WriteOpenMetrics(w http.ResponseWriter) error {
	var all []telemetry.Sample
	all = append(all, snap.Fleet...)
	for _, n := range snap.Nodes {
		if n.Err != nil {
			continue
		}
		all = append(all, telemetry.WithLabel(n.Samples, "node", n.Node)...)
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	return telemetry.WriteOpenMetricsSamples(w, all)
}

// ErrNoFragments reports a FleetTrace id no node retains anything for.
var ErrNoFragments = errors.New("cluster: no node retains fragments for trace")

// FleetTrace collects every node's span fragments for id and stitches them
// into one causally-ordered trace. Nodes that answer 404 simply never
// touched the trace; transport failures are tolerated the same way (the
// stitched result then reports orphans, which is the signal an operator
// needs). It fails only when no fragment exists anywhere.
func (f *Federator) FleetTrace(ctx context.Context, id tracing.TraceID) (*tracing.StitchedTrace, error) {
	frags := make([][]tracing.Fragment, len(f.peers))
	var wg sync.WaitGroup
	for i, peer := range f.peers {
		if _, skip := f.skipPeer(peer); skip {
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			body, err := f.client.GetBytes(ctx, peer, "/cluster/trace/"+id.String())
			if err != nil {
				var pe *PeerError
				if !(errors.As(err, &pe) && pe.Status == http.StatusNotFound) && f.cfg.Logger != nil {
					f.cfg.Logger.Warn("fleet trace fetch failed", "peer", peer, "err", err)
				}
				return
			}
			fs, err := tracing.DecodeFragments(body)
			if err != nil {
				if f.cfg.Logger != nil {
					f.cfg.Logger.Warn("fleet trace decode failed", "peer", peer, "err", err)
				}
				return
			}
			frags[i] = fs
		}(i, peer)
	}
	wg.Wait()
	var all []tracing.Fragment
	if f.cfg.LocalRecorder != nil {
		all = append(all, f.cfg.LocalRecorder.Fragments(id, f.cfg.LocalID)...)
	}
	for _, fs := range frags {
		for _, fr := range fs {
			// When this process is itself in the peer list, the scrape
			// returns the local recorder's fragments a second time under
			// the same node id; the in-process copy above already has them.
			if f.cfg.LocalRecorder != nil && f.cfg.LocalID != "" && fr.Node == f.cfg.LocalID {
				continue
			}
			all = append(all, fr)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w %s", ErrNoFragments, id)
	}
	return tracing.Stitch(id, all), nil
}

// FleetNodeHealth is one node's probe result within a FleetHealth report.
type FleetNodeHealth struct {
	Peer string `json:"peer"`
	// RingIndex is the node's position in the sorted peer list used as the
	// consistent-hash ring membership (-1 when the prober runs ringless).
	RingIndex int        `json:"ring_index"`
	Err       string     `json:"error,omitempty"`
	Health    NodeHealth `json:"health"`
	// Skipped marks a peer that was not probed because membership reports
	// it dead or left; Err then carries the state name.
	Skipped bool `json:"skipped,omitempty"`
	// Ring is the node's own ring view (GET /cluster/ring), present on
	// gossip-enabled fleets so operators can diff views across nodes.
	Ring *RingView `json:"ring,omitempty"`
}

// FleetHealth is the fleet-wide health report served at
// /debug/fleet/health (the SLO block is appended by bvapd, which owns the
// monitor).
type FleetHealth struct {
	Taken time.Time         `json:"taken"`
	Nodes []FleetNodeHealth `json:"nodes"`
	// Generations maps generation fingerprints to the peers serving them —
	// more than one key means a torn fleet (a reload round died between
	// prepare and commit, or a node missed a publish).
	Generations map[string][]string `json:"generations,omitempty"`
	// Epochs maps membership epochs to the peers reporting them — more
	// than one key means membership hasn't converged (a partition in
	// progress, or gossip still spreading a change).
	Epochs map[uint64][]string `json:"epochs,omitempty"`
}

// Health probes every node's /cluster/health (and, on gossip-enabled
// fleets, /cluster/ring) in parallel. Peers membership knows to be dead
// or left are skipped, not probed.
func (f *Federator) Health(ctx context.Context) FleetHealth {
	report := FleetHealth{Taken: time.Now(), Generations: map[string][]string{}, Epochs: map[uint64][]string{}}
	results := make([]FleetNodeHealth, len(f.peers))
	ringIndex := map[string]int{}
	for i, p := range sortedPeers(f.peers) {
		ringIndex[p] = i
	}
	var wg sync.WaitGroup
	for i, peer := range f.peers {
		if reason, skip := f.skipPeer(peer); skip {
			results[i] = FleetNodeHealth{Peer: peer, RingIndex: ringIndex[peer], Err: reason, Skipped: true}
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			h := FleetNodeHealth{Peer: peer, RingIndex: ringIndex[peer]}
			var nh NodeHealth
			if err := f.client.GetJSON(ctx, peer, "/cluster/health", &nh); err != nil {
				h.Err = err.Error()
			} else {
				h.Health = nh
				var rv RingView
				if err := f.client.GetJSON(ctx, peer, "/cluster/ring", &rv); err == nil {
					h.Ring = &rv
				}
			}
			results[i] = h
		}(i, peer)
	}
	wg.Wait()
	for _, h := range results {
		if h.Err == "" {
			report.Generations[h.Health.Fingerprint] = append(report.Generations[h.Health.Fingerprint], h.Peer)
			if h.Ring != nil {
				report.Epochs[h.Ring.Epoch] = append(report.Epochs[h.Ring.Epoch], h.Peer)
			}
		}
	}
	for _, peers := range report.Generations {
		sort.Strings(peers)
	}
	for _, peers := range report.Epochs {
		sort.Strings(peers)
	}
	report.Nodes = results
	return report
}

func sortedPeers(peers []string) []string {
	out := append([]string(nil), peers...)
	sort.Strings(out)
	return out
}
