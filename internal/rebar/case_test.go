package rebar

import (
	"bytes"
	"strings"
	"testing"
)

const validCase = `
[[bench]]
name = 'word-band'
group = 'bounded-repeat'
model = 'count'
regex = '[A-Za-z]{8,13}'
haystack = { generator = 'natural', seed = 1, len = 4096 }
count = [
  { engine = 'go/regexp', count = 10 },
  { engine = '.*', count = 20 },
]
engines = ['swmatch', 'go/regexp']
`

func TestParseSuiteValid(t *testing.T) {
	s, err := ParseSuite(validCase)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cases) != 1 {
		t.Fatalf("cases = %d", len(s.Cases))
	}
	c := &s.Cases[0]
	if c.Name != "word-band" || c.Regex != "[A-Za-z]{8,13}" {
		t.Errorf("case = %+v", c)
	}
	if n, ok := c.ExpectedCount("go/regexp"); !ok || n != 10 {
		t.Errorf("go/regexp expectation = %d, %v", n, ok)
	}
	if n, ok := c.ExpectedCount("swmatch"); !ok || n != 20 {
		t.Errorf("swmatch catch-all expectation = %d, %v", n, ok)
	}
}

func TestParseSuiteDefaultsToAllEngines(t *testing.T) {
	src := strings.Replace(validCase, "engines = ['swmatch', 'go/regexp']\n", "", 1)
	s, err := ParseSuite(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(s.Cases[0].Engines), len(EngineNames()); got != want {
		t.Errorf("default engines = %d, want all %d", got, want)
	}
}

func TestParseSuiteSchemaErrors(t *testing.T) {
	sub := func(old, new string) string { return strings.Replace(validCase, old, new, 1) }
	cases := []struct {
		name, src, want string
	}{
		{"bad-name", sub("'word-band'", "'Word_Band'"), "name"},
		{"dup-name", validCase + validCase, "duplicate case name"},
		{"bad-model", sub("'count'", "'grep'"), "model"},
		{"missing-regex", sub("regex = '[A-Za-z]{8,13}'\n", ""), "regex"},
		{"bad-regex", sub("'[A-Za-z]{8,13}'", "'[unclosed'"), "regex"},
		{"bad-generator", sub("'natural'", "'random'"), "unknown generator"},
		{"zero-len", sub("len = 4096", "len = 0"), "out of range"},
		{"huge-len", sub("len = 4096", "len = 99999999"), "out of range"},
		{"no-counts", sub("count = [\n  { engine = 'go/regexp', count = 10 },\n  { engine = '.*', count = 20 },\n]\n", ""), "count"},
		{"bad-selector", sub("engine = '.*'", "engine = '('"), "bad engine selector"},
		{"negative-count", sub("count = 10", "count = -1"), "non-negative"},
		{"unknown-engine", sub("'swmatch'", "'hyperscan'"), "unknown engine"},
		{"uncovered-engine", sub("{ engine = '.*', count = 20 },\n", ""), "no expected-count entry"},
		{"unknown-key", sub("group = 'bounded-repeat'", "grp = 'x'"), "unknown key"},
		{"unknown-haystack-key", sub("seed = 1", "sede = 1"), "unknown key"},
		{"unknown-array", sub("[[bench]]", "[[case]]"), "unknown table array"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSuite(tc.src)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			se, ok := err.(*SchemaError)
			if !ok {
				t.Fatalf("error type %T (%v), want *SchemaError", err, err)
			}
			if !strings.Contains(se.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", se, tc.want)
			}
		})
	}
}

func TestHaystackBuildDeterministic(t *testing.T) {
	specs := []Haystack{
		{Generator: "natural", Seed: 3, Len: 4096, Vocab: 256},
		{Generator: "code", Seed: 3, Len: 4096},
		{Generator: "logs", Seed: 3, Len: 4096},
		{Generator: "text", Seed: 3, Len: 4096, Alphabet: "ab"},
		{Generator: "alpha", Seed: 3, Len: 4096, Alpha: 0.1, Trigger: "a", Filler: "z"},
		{Generator: "literal", Literal: "abc", Repeat: 5},
	}
	for _, h := range specs {
		a, err := h.Build()
		if err != nil {
			t.Fatalf("%s: %v", h.Generator, err)
		}
		b, _ := h.Build()
		if !bytes.Equal(a, b) {
			t.Errorf("%s: not deterministic", h.Generator)
		}
		if len(a) != h.Size() {
			t.Errorf("%s: len %d != Size %d", h.Generator, len(a), h.Size())
		}
	}
}

func TestSuiteMarshalRoundTrip(t *testing.T) {
	s, err := ParseSuite(validCase)
	if err != nil {
		t.Fatal(err)
	}
	b1 := Marshal(s)
	s2, err := ParseSuite(string(b1))
	if err != nil {
		t.Fatalf("canonical form does not parse: %v\n%s", err, b1)
	}
	b2 := Marshal(s2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("Marshal not a fixpoint:\n--- first\n%s\n--- second\n%s", b1, b2)
	}
}

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	if len(names) != 10 {
		t.Fatalf("registered engines = %v", names)
	}
	for _, want := range []string{
		"bvap/findall", "bvap/parallel", "swmatch", "go/regexp",
		"bvap/sim/bvap", "bvap/sim/bvap-s", "bvap/sim/cama",
		"bvap/sim/ca", "bvap/sim/eap", "bvap/sim/cnt",
	} {
		if _, err := EngineByName(want); err != nil {
			t.Errorf("EngineByName(%q): %v", want, err)
		}
	}
	if _, err := EngineByName("hyperscan"); err == nil {
		t.Error("unknown engine resolved")
	}
}
