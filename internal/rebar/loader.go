package rebar

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ParseSuite parses one case-definition document and validates it against
// the case schema. Errors are typed: *ParseError for syntax, *SchemaError
// for schema violations.
func ParseSuite(src string) (*Suite, error) {
	doc, err := parseTOML(src)
	if err != nil {
		return nil, err
	}
	s, err := docToSuite(doc)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFile loads one case file, tagging errors with the file path.
func LoadFile(path string) (*Suite, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSuite(string(b))
	if err != nil {
		switch e := err.(type) {
		case *ParseError:
			e.File = path
		case *SchemaError:
			e.File = path
		}
		return nil, err
	}
	return s, nil
}

// LoadDir loads every *.toml file in dir (sorted by name) into one merged
// suite. Case names must be unique across the whole directory.
func LoadDir(dir string) (*Suite, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".toml") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("rebar: no *.toml case files in %s", dir)
	}
	sort.Strings(names)
	merged := &Suite{}
	var analyses []string
	for _, name := range names {
		s, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if s.Analysis != "" {
			analyses = append(analyses, s.Analysis)
		}
		merged.Cases = append(merged.Cases, s.Cases...)
	}
	merged.Analysis = strings.Join(analyses, "\n")
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	return merged, nil
}

// docToSuite maps a parsed document onto the typed schema, rejecting
// unknown keys so typos fail loudly instead of silently defaulting.
func docToSuite(doc *document) (*Suite, error) {
	s := &Suite{}
	for _, k := range doc.top.keys {
		switch k {
		case "analysis":
			v, ok := doc.top.vals[k].(string)
			if !ok {
				return nil, &SchemaError{Field: "analysis", Msg: "must be a string"}
			}
			s.Analysis = v
		default:
			return nil, &SchemaError{Field: k, Msg: "unknown top-level key"}
		}
	}
	for _, nt := range doc.arrays {
		if nt.name != "bench" {
			return nil, &SchemaError{Field: nt.name, Msg: `unknown table array (only [[bench]])`}
		}
		c, err := caseFromTable(nt.tab)
		if err != nil {
			return nil, err
		}
		s.Cases = append(s.Cases, c)
	}
	return s, nil
}

func caseFromTable(t *table) (Case, error) {
	var c Case
	// Name first, so later field errors can cite the case.
	if v, ok := t.get("name"); ok {
		if sv, ok := v.(string); ok {
			c.Name = sv
		}
	}
	fail := func(field, format string, args ...interface{}) error {
		return &SchemaError{Case: c.Name, Field: field, Msg: fmt.Sprintf(format, args...)}
	}
	for _, k := range t.keys {
		v := t.vals[k]
		switch k {
		case "name", "group", "model", "regex":
			sv, ok := v.(string)
			if !ok {
				return c, fail(k, "must be a string")
			}
			switch k {
			case "name":
				c.Name = sv
			case "group":
				c.Group = sv
			case "model":
				c.Model = sv
			case "regex":
				c.Regex = sv
			}
		case "haystack":
			ht, ok := v.(*table)
			if !ok {
				return c, fail(k, "must be an inline table")
			}
			h, err := haystackFromTable(c.Name, ht)
			if err != nil {
				return c, err
			}
			c.Haystack = h
		case "count":
			arr, ok := v.([]value)
			if !ok {
				return c, fail(k, "must be an array of { engine, count } tables")
			}
			for i, e := range arr {
				et, ok := e.(*table)
				if !ok {
					return c, fail(k, "entry %d: must be an inline table", i)
				}
				ce, err := countFromTable(c.Name, i, et)
				if err != nil {
					return c, err
				}
				c.Counts = append(c.Counts, ce)
			}
		case "engines":
			arr, ok := v.([]value)
			if !ok {
				return c, fail(k, "must be an array of engine names")
			}
			for i, e := range arr {
				sv, ok := e.(string)
				if !ok {
					return c, fail(k, "entry %d: must be a string", i)
				}
				c.Engines = append(c.Engines, sv)
			}
		default:
			return c, fail(k, "unknown key")
		}
	}
	if len(c.Engines) == 0 {
		// Default: head-to-head on every registered engine.
		c.Engines = EngineNames()
	}
	return c, nil
}

func haystackFromTable(caseName string, t *table) (Haystack, error) {
	var h Haystack
	fail := func(field, msg string) error {
		return &SchemaError{Case: caseName, Field: "haystack." + field, Msg: msg}
	}
	for _, k := range t.keys {
		v := t.vals[k]
		switch k {
		case "generator", "alphabet", "trigger", "filler", "literal":
			sv, ok := v.(string)
			if !ok {
				return h, fail(k, "must be a string")
			}
			switch k {
			case "generator":
				h.Generator = sv
			case "alphabet":
				h.Alphabet = sv
			case "trigger":
				h.Trigger = sv
			case "filler":
				h.Filler = sv
			case "literal":
				h.Literal = sv
			}
		case "seed", "len", "vocab", "repeat":
			iv, ok := v.(int64)
			if !ok {
				return h, fail(k, "must be an integer")
			}
			switch k {
			case "seed":
				h.Seed = iv
			case "len":
				h.Len = int(iv)
			case "vocab":
				h.Vocab = int(iv)
			case "repeat":
				h.Repeat = int(iv)
			}
		case "alpha":
			switch fv := v.(type) {
			case float64:
				h.Alpha = fv
			case int64:
				h.Alpha = float64(fv)
			default:
				return h, fail(k, "must be a number")
			}
		default:
			return h, fail(k, "unknown key")
		}
	}
	return h, nil
}

func countFromTable(caseName string, idx int, t *table) (CountExpect, error) {
	var ce CountExpect
	fail := func(msg string) error {
		return &SchemaError{Case: caseName, Field: fmt.Sprintf("count[%d]", idx), Msg: msg}
	}
	for _, k := range t.keys {
		v := t.vals[k]
		switch k {
		case "engine":
			sv, ok := v.(string)
			if !ok {
				return ce, fail("engine must be a string")
			}
			ce.Engine = sv
		case "count":
			iv, ok := v.(int64)
			if !ok {
				return ce, fail("count must be an integer")
			}
			if iv < 0 {
				return ce, fail("count must be non-negative")
			}
			ce.Count = uint64(iv)
		default:
			return ce, fail("unknown key " + k)
		}
	}
	if ce.Engine == "" {
		return ce, fail("missing engine selector")
	}
	return ce, nil
}

// Marshal renders the suite in the canonical form ParseSuite accepts.
// parse → Marshal → parse is a fixpoint (FuzzRebarCase pins the underlying
// document round trip).
func Marshal(s *Suite) []byte {
	return []byte(marshalDocument(suiteToDocument(s)))
}

func suiteToDocument(s *Suite) *document {
	doc := &document{top: newTable()}
	if s.Analysis != "" {
		doc.top.set("analysis", s.Analysis)
	}
	for i := range s.Cases {
		c := &s.Cases[i]
		t := newTable()
		t.set("name", c.Name)
		if c.Group != "" {
			t.set("group", c.Group)
		}
		t.set("model", c.Model)
		t.set("regex", c.Regex)
		t.set("haystack", haystackToTable(&c.Haystack))
		var counts []value
		for _, e := range c.Counts {
			et := newTable()
			et.set("engine", e.Engine)
			et.set("count", int64(e.Count))
			counts = append(counts, et)
		}
		t.set("count", counts)
		var engines []value
		for _, e := range c.Engines {
			engines = append(engines, e)
		}
		t.set("engines", engines)
		doc.arrays = append(doc.arrays, namedTable{name: "bench", tab: t})
	}
	return doc
}

func haystackToTable(h *Haystack) *table {
	t := newTable()
	t.set("generator", h.Generator)
	if h.Generator != "literal" {
		t.set("seed", h.Seed)
		t.set("len", int64(h.Len))
	}
	if h.Vocab != 0 {
		t.set("vocab", int64(h.Vocab))
	}
	if h.Alphabet != "" {
		t.set("alphabet", h.Alphabet)
	}
	if h.Generator == "alpha" {
		t.set("alpha", h.Alpha)
		t.set("trigger", h.Trigger)
		t.set("filler", h.Filler)
	}
	if h.Literal != "" {
		t.set("literal", h.Literal)
	}
	if h.Repeat != 0 {
		t.set("repeat", int64(h.Repeat))
	}
	return t
}

// marshalDocument renders a raw document in canonical form. Top-level keys
// first, then each [[name]] table separated by a blank line.
func marshalDocument(d *document) string {
	var sb strings.Builder
	for _, k := range d.top.keys {
		sb.WriteString(k)
		sb.WriteString(" = ")
		marshalValue(&sb, d.top.vals[k])
		sb.WriteByte('\n')
	}
	for _, nt := range d.arrays {
		if sb.Len() > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "[[%s]]\n", nt.name)
		for _, k := range nt.tab.keys {
			sb.WriteString(k)
			sb.WriteString(" = ")
			marshalValue(&sb, nt.tab.vals[k])
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
