// Package rebar is a declarative benchmark/conformance subsystem modeled on
// the rebar regex-barometer's curated suites: benchmark cases are defined in
// TOML files (regex, haystack source, count model, per-engine expected match
// counts), loaded with schema validation, and executed head-to-head on every
// registered engine — the BVAP software scanner, the parallel scanner, the
// cycle-accurate simulator on all six modeled architectures, the independent
// swmatch reference, and the standard library's regexp. Every engine's match
// count is asserted against the declared expectation before any timing
// number is trusted, so the throughput table is simultaneously a
// conformance table.
//
// Only the TOML subset the suite needs is implemented (the standard library
// has no TOML support, and the case format is deliberately narrow): bare
// keys, basic and literal strings (including multi-line literals), integers,
// floats, booleans, arrays, inline tables, comments, and [[name]]
// array-of-table headers. Marshal emits a canonical form that Parse accepts,
// and parse→marshal→parse is a fixpoint — the FuzzRebarCase target pins
// that round trip.
package rebar

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseError is a syntax error in a case-definition document.
type ParseError struct {
	File string // empty when parsing from memory
	Line int    // 1-based
	Msg  string
}

func (e *ParseError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("rebar: %s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("rebar: line %d: %s", e.Line, e.Msg)
}

// value is one parsed TOML value: string, int64, float64, bool,
// []value (array), or *table (inline table).
type value interface{}

// table is an ordered key→value map; order is preserved so canonical
// marshalling and error messages are stable.
type table struct {
	keys []string
	vals map[string]value
}

func newTable() *table { return &table{vals: map[string]value{}} }

func (t *table) set(key string, v value) bool {
	if _, dup := t.vals[key]; dup {
		return false
	}
	t.keys = append(t.keys, key)
	t.vals[key] = v
	return true
}

func (t *table) get(key string) (value, bool) {
	v, ok := t.vals[key]
	return v, ok
}

// document is a parsed case file: top-level keys plus the ordered [[name]]
// table arrays.
type document struct {
	top    *table
	arrays []namedTable
}

type namedTable struct {
	name string
	tab  *table
}

// tomlParser is a line-oriented scanner with a recursive-descent value
// parser that may consume continuation lines (for multi-line arrays and
// multi-line literal strings).
type tomlParser struct {
	lines []string
	ln    int // current line index
	pos   int // byte offset within lines[ln]
}

func parseTOML(src string) (*document, error) {
	p := &tomlParser{lines: strings.Split(src, "\n")}
	doc := &document{top: newTable()}
	current := doc.top
	for !p.atEOF() {
		p.skipBlank()
		if p.atEOF() {
			break
		}
		line := p.rest()
		switch {
		case strings.HasPrefix(line, "[["):
			name, err := p.parseArrayHeader()
			if err != nil {
				return nil, err
			}
			current = newTable()
			doc.arrays = append(doc.arrays, namedTable{name: name, tab: current})
		case strings.HasPrefix(line, "["):
			return nil, p.errf("plain [table] headers are not part of the case format (use [[bench]])")
		default:
			key, err := p.parseKey()
			if err != nil {
				return nil, err
			}
			v, err := p.parseValue(0)
			if err != nil {
				return nil, err
			}
			p.skipInlineComment()
			if !p.lineDone() {
				return nil, p.errf("trailing characters %q after value", p.rest())
			}
			if !current.set(key, v) {
				return nil, p.errf("duplicate key %q", key)
			}
			p.nextLine()
		}
	}
	return doc, nil
}

func (p *tomlParser) atEOF() bool { return p.ln >= len(p.lines) }

func (p *tomlParser) rest() string {
	if p.atEOF() {
		return ""
	}
	return p.lines[p.ln][p.pos:]
}

func (p *tomlParser) nextLine() {
	p.ln++
	p.pos = 0
}

func (p *tomlParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.ln + 1, Msg: fmt.Sprintf(format, args...)}
}

// skipBlank advances over whitespace, comment lines and empty lines.
func (p *tomlParser) skipBlank() {
	for !p.atEOF() {
		p.skipSpace()
		r := p.rest()
		if r == "" || strings.HasPrefix(r, "#") {
			p.nextLine()
			continue
		}
		return
	}
}

// skipSpace advances over spaces and tabs on the current line.
func (p *tomlParser) skipSpace() {
	for !p.atEOF() && p.pos < len(p.lines[p.ln]) {
		c := p.lines[p.ln][p.pos]
		if c != ' ' && c != '\t' {
			return
		}
		p.pos++
	}
}

func (p *tomlParser) skipInlineComment() {
	p.skipSpace()
	if strings.HasPrefix(p.rest(), "#") {
		p.pos = len(p.lines[p.ln])
	}
}

// lineDone reports whether only whitespace remains on the current line.
func (p *tomlParser) lineDone() bool {
	p.skipSpace()
	return p.rest() == ""
}

// parseArrayHeader parses `[[name]]` and advances to the next line.
func (p *tomlParser) parseArrayHeader() (string, error) {
	line := strings.TrimSpace(p.rest())
	if !strings.HasPrefix(line, "[[") || !strings.HasSuffix(line, "]]") {
		return "", p.errf("malformed table-array header %q", line)
	}
	name := strings.TrimSpace(line[2 : len(line)-2])
	if !isBareKey(name) {
		return "", p.errf("bad table-array name %q", name)
	}
	p.nextLine()
	return name, nil
}

// parseKey parses `key =` leaving the parser at the value.
func (p *tomlParser) parseKey() (string, error) {
	p.skipSpace()
	start := p.pos
	line := p.lines[p.ln]
	for p.pos < len(line) && isBareKeyByte(line[p.pos]) {
		p.pos++
	}
	key := line[start:p.pos]
	if key == "" {
		return "", p.errf("expected a key, found %q", p.rest())
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), "=") {
		return "", p.errf("expected '=' after key %q", key)
	}
	p.pos++
	p.skipSpace()
	return key, nil
}

func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isBareKeyByte(s[i]) {
			return false
		}
	}
	return true
}

func isBareKeyByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}

// maxValueDepth bounds nesting so adversarial inputs cannot overflow the
// recursive value parser.
const maxValueDepth = 32

// parseValue parses one value starting at the current position. Arrays may
// span lines; every other value is single-line except triple-quoted
// multi-line literal strings.
func (p *tomlParser) parseValue(depth int) (value, error) {
	if depth > maxValueDepth {
		return nil, p.errf("value nesting exceeds %d", maxValueDepth)
	}
	p.skipSpace()
	r := p.rest()
	switch {
	case r == "":
		return nil, p.errf("missing value")
	case strings.HasPrefix(r, "'''"):
		return p.parseMultilineLiteral()
	case strings.HasPrefix(r, "'"):
		return p.parseLiteralString()
	case strings.HasPrefix(r, `"`):
		return p.parseBasicString()
	case strings.HasPrefix(r, "["):
		return p.parseArray(depth)
	case strings.HasPrefix(r, "{"):
		return p.parseInlineTable(depth)
	case strings.HasPrefix(r, "true"):
		p.pos += 4
		return true, nil
	case strings.HasPrefix(r, "false"):
		p.pos += 5
		return false, nil
	default:
		return p.parseNumber()
	}
}

func (p *tomlParser) parseLiteralString() (value, error) {
	line := p.lines[p.ln]
	p.pos++ // consume opening quote
	end := strings.IndexByte(line[p.pos:], '\'')
	if end < 0 {
		return nil, p.errf("unterminated literal string")
	}
	s := line[p.pos : p.pos+end]
	p.pos += end + 1
	return s, nil
}

func (p *tomlParser) parseMultilineLiteral() (value, error) {
	p.pos += 3 // consume '''
	var parts []string
	// Content on the delimiter line. A newline immediately after the
	// opening delimiter is trimmed (TOML semantics), which in this
	// line-based scanner means an empty remainder contributes nothing.
	line := p.rest()
	if end := strings.Index(line, "'''"); end >= 0 {
		p.pos += end + 3
		return line[:end], nil
	}
	if line != "" {
		parts = append(parts, line)
	}
	p.nextLine()
	for {
		if p.atEOF() {
			return nil, p.errf("unterminated multi-line literal string")
		}
		line = p.lines[p.ln]
		if end := strings.Index(line, "'''"); end >= 0 {
			parts = append(parts, line[:end])
			p.pos = end + 3
			return strings.Join(parts, "\n"), nil
		}
		parts = append(parts, line)
		p.nextLine()
	}
}

func (p *tomlParser) parseBasicString() (value, error) {
	line := p.lines[p.ln]
	p.pos++ // consume opening quote
	var sb strings.Builder
	for {
		if p.pos >= len(line) {
			return nil, p.errf("unterminated string")
		}
		c := line[p.pos]
		switch c {
		case '"':
			p.pos++
			return sb.String(), nil
		case '\\':
			p.pos++
			if p.pos >= len(line) {
				return nil, p.errf("trailing backslash in string")
			}
			e := line[p.pos]
			p.pos++
			switch e {
			case '"', '\\':
				sb.WriteByte(e)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'u':
				if p.pos+4 > len(line) {
					return nil, p.errf(`\u needs four hex digits`)
				}
				v, err := strconv.ParseUint(line[p.pos:p.pos+4], 16, 32)
				if err != nil {
					return nil, p.errf(`bad \u escape %q`, line[p.pos:p.pos+4])
				}
				sb.WriteRune(rune(v))
				p.pos += 4
			default:
				return nil, p.errf(`unsupported escape \%c`, e)
			}
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
}

func (p *tomlParser) parseArray(depth int) (value, error) {
	p.pos++ // consume '['
	arr := []value{}
	for {
		// Arrays may span lines; skip whitespace, newlines and comments.
		p.skipSpace()
		if p.rest() == "" || strings.HasPrefix(p.rest(), "#") {
			p.nextLine()
			if p.atEOF() {
				return nil, p.errf("unterminated array")
			}
			continue
		}
		if strings.HasPrefix(p.rest(), "]") {
			p.pos++
			return arr, nil
		}
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		arr = append(arr, v)
		p.skipSpace()
		for p.rest() == "" || strings.HasPrefix(p.rest(), "#") {
			p.nextLine()
			if p.atEOF() {
				return nil, p.errf("unterminated array")
			}
			p.skipSpace()
		}
		switch {
		case strings.HasPrefix(p.rest(), ","):
			p.pos++
		case strings.HasPrefix(p.rest(), "]"):
			// closing bracket handled on the next loop turn
		default:
			return nil, p.errf("expected ',' or ']' in array, found %q", p.rest())
		}
	}
}

func (p *tomlParser) parseInlineTable(depth int) (value, error) {
	p.pos++ // consume '{'
	t := newTable()
	p.skipSpace()
	if strings.HasPrefix(p.rest(), "}") {
		p.pos++
		return t, nil
	}
	for {
		key, err := p.parseKey()
		if err != nil {
			return nil, err
		}
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		if !t.set(key, v) {
			return nil, p.errf("duplicate key %q in inline table", key)
		}
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.rest(), ","):
			p.pos++
			p.skipSpace()
		case strings.HasPrefix(p.rest(), "}"):
			p.pos++
			return t, nil
		default:
			return nil, p.errf("expected ',' or '}' in inline table, found %q", p.rest())
		}
	}
}

func (p *tomlParser) parseNumber() (value, error) {
	line := p.lines[p.ln]
	start := p.pos
	for p.pos < len(line) {
		c := line[p.pos]
		if c >= '0' && c <= '9' || c == '_' || c == '+' || c == '-' ||
			c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	tok := line[start:p.pos]
	if tok == "" {
		return nil, p.errf("expected a value, found %q", line[start:])
	}
	clean := strings.ReplaceAll(tok, "_", "")
	if strings.ContainsAny(clean, ".eE") {
		f, err := strconv.ParseFloat(clean, 64)
		if err != nil {
			return nil, p.errf("bad float %q", tok)
		}
		return f, nil
	}
	n, err := strconv.ParseInt(clean, 10, 64)
	if err != nil {
		return nil, p.errf("bad integer %q", tok)
	}
	return n, nil
}

// --- canonical marshalling -------------------------------------------------

// marshalValue renders a value in the canonical form Parse accepts.
// Strings are emitted as literal strings when possible (no quote, no
// control bytes), falling back to escaped basic strings.
func marshalValue(sb *strings.Builder, v value) {
	switch v := v.(type) {
	case string:
		marshalString(sb, v)
	case int64:
		fmt.Fprintf(sb, "%d", v)
	case float64:
		fmt.Fprintf(sb, "%g", v)
		if !strings.ContainsAny(fmt.Sprintf("%g", v), ".eE") {
			sb.WriteString(".0")
		}
	case bool:
		fmt.Fprintf(sb, "%t", v)
	case []value:
		sb.WriteByte('[')
		for i, e := range v {
			if i > 0 {
				sb.WriteString(", ")
			}
			marshalValue(sb, e)
		}
		sb.WriteByte(']')
	case *table:
		sb.WriteString("{ ")
		for i, k := range v.keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(" = ")
			marshalValue(sb, v.vals[k])
		}
		sb.WriteString(" }")
	default:
		panic(fmt.Sprintf("rebar: cannot marshal %T", v))
	}
}

func marshalString(sb *strings.Builder, s string) {
	if canLiteral(s) {
		sb.WriteByte('\'')
		sb.WriteString(s)
		sb.WriteByte('\'')
		return
	}
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			if c < 0x20 || c == 0x7f {
				fmt.Fprintf(sb, `\u%04x`, c)
			} else {
				sb.WriteByte(c)
			}
		}
	}
	sb.WriteByte('"')
}

// canLiteral reports whether s can be emitted as a single-line literal
// string: no single quote, no control characters, ASCII only (so the
// canonical byte form is unambiguous).
func canLiteral(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\'' || c < 0x20 || c >= 0x7f {
			return false
		}
	}
	return true
}

// sortedKeys is a helper for deterministic error reporting over plain maps.
func sortedKeys(m map[string]value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
