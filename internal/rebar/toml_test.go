package rebar

import (
	"strings"
	"testing"
)

func TestParseTOMLBasics(t *testing.T) {
	doc, err := parseTOML(`
# comment
analysis = '''
Two lines
of analysis.'''

[[bench]]
name = 'alpha'          # inline comment
count = [
  { engine = 'go/regexp', count = 1_000 },
  { engine = '.*', count = 2000 },  # catch-all
]
ratio = 0.25
ok = true
msg = "tab\there A"
`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.top.get("analysis"); got != "Two lines\nof analysis." {
		t.Errorf("analysis = %q", got)
	}
	if len(doc.arrays) != 1 || doc.arrays[0].name != "bench" {
		t.Fatalf("arrays = %+v", doc.arrays)
	}
	b := doc.arrays[0].tab
	if v, _ := b.get("name"); v != "alpha" {
		t.Errorf("name = %q", v)
	}
	counts, _ := b.get("count")
	arr, ok := counts.([]value)
	if !ok || len(arr) != 2 {
		t.Fatalf("count = %#v", counts)
	}
	first, ok := arr[0].(*table)
	if !ok {
		t.Fatalf("count[0] = %#v", arr[0])
	}
	if v, _ := first.get("count"); v != int64(1000) {
		t.Errorf("count[0].count = %v", v)
	}
	if v, _ := b.get("ratio"); v != 0.25 {
		t.Errorf("ratio = %v", v)
	}
	if v, _ := b.get("ok"); v != true {
		t.Errorf("ok = %v", v)
	}
	if v, _ := b.get("msg"); v != "tab\there A" {
		t.Errorf("msg = %q", v)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"plain-table", "[bench]\n", "plain [table]"},
		{"dup-key", "a = 1\na = 2\n", "duplicate key"},
		{"bad-header", "[[a b]]\n", "bad table-array name"},
		{"no-equals", "key 1\n", "expected '='"},
		{"missing-value", "key =\n", "missing value"},
		{"unterminated-string", `key = "abc` + "\n", "unterminated string"},
		{"unterminated-literal", "key = 'abc\n", "unterminated literal"},
		{"unterminated-multiline", "key = '''abc\ndef\n", "unterminated multi-line"},
		{"unterminated-array", "key = [1, 2\n", "unterminated array"},
		{"bad-escape", `key = "\x41"` + "\n", `unsupported escape`},
		{"bad-int", "key = 12ab\n", "trailing characters"},
		{"bad-float", "key = 1.2.3\n", "bad float"},
		{"trailing", "key = 1 junk\n", "trailing characters"},
		{"deep-nesting", "key = " + strings.Repeat("[", 40) + strings.Repeat("]", 40) + "\n", "nesting exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML(tc.src)
			if err == nil {
				t.Fatalf("parse of %q succeeded", tc.src)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error type %T, want *ParseError", err)
			}
			if !strings.Contains(pe.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", pe, tc.want)
			}
		})
	}
}

func TestMarshalDocumentFixpoint(t *testing.T) {
	src := `analysis = 'short'

[[bench]]
name = 'case-a'
regex = '[A-Za-z]{8,13}'
haystack = { generator = 'natural', seed = 42, len = 16384 }
count = [{ engine = 'go/regexp', count = 7 }, { engine = '.*', count = 9 }]
engines = ['swmatch', 'go/regexp']
flag = true
ratio = 1.0
`
	doc, err := parseTOML(src)
	if err != nil {
		t.Fatal(err)
	}
	m1 := marshalDocument(doc)
	doc2, err := parseTOML(m1)
	if err != nil {
		t.Fatalf("reparse of canonical form failed: %v\n%s", err, m1)
	}
	m2 := marshalDocument(doc2)
	if m1 != m2 {
		t.Errorf("canonical form is not a fixpoint:\n--- first\n%s\n--- second\n%s", m1, m2)
	}
}
