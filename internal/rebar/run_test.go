package rebar

import (
	"strings"
	"testing"
)

// runSuite is a small cross-engine suite over a deterministic haystack: the
// literal haystack "abcabcabc...", where counts are easy to verify by hand.
// "abc" ends at 9 positions in 9 repetitions, for every engine.
const runSuite = `
[[bench]]
name = 'literal-abc'
model = 'count'
regex = 'abc'
haystack = { generator = 'literal', literal = 'abc', repeat = 9 }
count = [{ engine = '.*', count = 9 }]

[[bench]]
name = 'band-2-3'
model = 'count'
regex = 'x{2,3}'
haystack = { generator = 'literal', literal = 'xxx.', repeat = 4 }
count = [
  # Overlap-counting engines see an end at every position where a run of
  # 2..3 x's ends: positions 1 and 2 of each 'xxx' group.
  { engine = 'go/regexp', count = 4 },
  { engine = '.*', count = 8 },
]
`

func TestRunVerifiesAllEngines(t *testing.T) {
	s, err := ParseSuite(runSuite)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s, &RunOptions{Reps: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := 2 * len(EngineNames()); len(results) != want {
		t.Fatalf("results = %d, want %d", len(results), want)
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s/%s: got %d want %d (%s)", r.Case, r.Engine, r.Got, r.Expected, r.Err)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s/%s: verified cell has no timing", r.Case, r.Engine)
		}
	}
}

func TestRunDetectsMismatch(t *testing.T) {
	s, err := ParseSuite(strings.Replace(runSuite, "count = 9", "count = 8", 1))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s, nil)
	if err == nil {
		t.Fatal("run passed with a wrong declared count")
	}
	me, ok := err.(*MismatchError)
	if !ok {
		t.Fatalf("error type %T, want *MismatchError", err)
	}
	if want := len(EngineNames()); len(me.Mismatches) != want {
		t.Errorf("mismatches = %d, want %d (every engine)", len(me.Mismatches), want)
	}
	for _, m := range me.Mismatches {
		if m.OK || m.Elapsed != 0 || m.MBps != 0 {
			t.Errorf("%s/%s: mismatching cell reported timing %v", m.Case, m.Engine, m.Elapsed)
		}
	}
	// The correct case's cells are still reported and verified.
	okCells := 0
	for _, r := range results {
		if r.Case == "band-2-3" && r.OK {
			okCells++
		}
	}
	if okCells != len(EngineNames()) {
		t.Errorf("verified cells for the good case = %d", okCells)
	}
}

func TestRunFilterAndEngineSelection(t *testing.T) {
	s, err := ParseSuite(runSuite)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s, &RunOptions{Filter: "^band-", Engines: []string{"swmatch", "go/regexp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Case != "band-2-3" {
			t.Errorf("filter leaked case %s", r.Case)
		}
	}
	if _, err := Run(s, &RunOptions{Engines: []string{"nope"}}); err == nil {
		t.Error("unknown engine in options accepted")
	}
	if _, err := Run(s, &RunOptions{Filter: "("}); err == nil {
		t.Error("bad filter accepted")
	}
}

// TestEngineSemanticsDiverge pins the reason expectations are per-engine:
// on overlapping bounded-repeat matches the ends-counting family and
// go/regexp legitimately disagree, and the suite format records both.
func TestEngineSemanticsDiverge(t *testing.T) {
	s, err := ParseSuite(runSuite)
	if err != nil {
		t.Fatal(err)
	}
	c := &s.Cases[1] // band-2-3
	goCount, _ := c.ExpectedCount("go/regexp")
	endsCount, _ := c.ExpectedCount("swmatch")
	if goCount == endsCount {
		t.Fatalf("test case does not exercise diverging semantics")
	}
	for engine, want := range map[string]uint64{"go/regexp": goCount, "swmatch": endsCount, "bvap/findall": endsCount} {
		spec, err := EngineByName(engine)
		if err != nil {
			t.Fatal(err)
		}
		count, err := spec.Compile(c.Regex)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := c.Haystack.Build()
		got, err := count(h)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: count = %d, want %d", engine, got, want)
		}
	}
}

func TestUnsupportedPatternIsTypedError(t *testing.T) {
	// Unbounded + under a bound is outside the BVAP compiler's subset on
	// some paths; use a pattern the engine reports as unsupported:
	// backreference-free but with a huge counter is still supported, so use
	// an anchor mid-pattern which the parser rejects at validation time
	// instead. The reliable unsupported case for compileBVAP is a pattern
	// whose counter exceeds hardware width; probe for one and skip if the
	// whole subset is supported.
	_, err := compileBVAP("bvap/findall", "a{1,100000}")
	if err == nil {
		t.Skip("engine supports very wide counters; nothing to assert")
	}
	if _, ok := err.(*UnsupportedError); !ok {
		t.Fatalf("error type %T (%v), want *UnsupportedError", err, err)
	}
}
