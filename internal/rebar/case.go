package rebar

import (
	"fmt"
	"regexp"
	"strings"

	"bvap/internal/regex"
	"bvap/internal/workload"
)

// Suite is a parsed set of benchmark/conformance cases, typically one TOML
// file (or a directory of them, merged in sorted file order).
type Suite struct {
	// Analysis is the free-text commentary of the file (the rebar
	// convention: why this group exists and what it stresses).
	Analysis string
	Cases    []Case
}

// Case is one declarative benchmark definition: a regex, a generated
// haystack, and the verified expected match count per engine. A case is a
// conformance assertion first and a benchmark second — the runner refuses
// to report timings for an engine whose count diverges from the
// declaration.
type Case struct {
	// Name identifies the case (unique within a suite; [a-z0-9-]+).
	Name string
	// Group optionally clusters related cases ("bounded-repeat", ...).
	Group string
	// Model is the measurement model. Only "count" is implemented: every
	// engine reports its match count over the haystack. Engines differ in
	// what they count — the BVAP family, the simulator and swmatch count
	// match-end events (streaming partial-match semantics, overlapping
	// matches included), go/regexp counts leftmost non-overlapping
	// matches — which is exactly why expectations are declared per engine.
	Model string
	// Regex is the pattern, in the engine's PCRE subset.
	Regex string
	// Haystack describes the generated input.
	Haystack Haystack
	// Counts are the declared expectations, matched first-entry-wins
	// against the engine name (Engine is an anchored regexp, rebar-style:
	// '.*' is the catch-all).
	Counts []CountExpect
	// Engines selects which registered engines run this case, by exact
	// name. The schema check resolves every entry at load time.
	Engines []string
}

// CountExpect declares the expected match count for the engines whose name
// matches the (fully anchored) Engine pattern.
type CountExpect struct {
	Engine string
	Count  uint64

	re *regexp.Regexp // compiled by Validate
}

// Haystack describes a deterministic generated input stream.
//
// Generators and their parameters:
//
//	natural  Zipfian natural-language text; seed, len, vocab (optional)
//	code     source-code-like stream; seed, len
//	logs     machine-log lines; seed, len
//	text     uniform stream over alphabet; seed, len, alphabet
//	alpha    Fig. 11 trigger/filler stream; seed, len, alpha, trigger, filler
//	literal  literal (repeated); literal, repeat (optional, default 1)
type Haystack struct {
	Generator string
	Seed      int64
	Len       int
	Vocab     int     // natural
	Alphabet  string  // text
	Alpha     float64 // alpha
	Trigger   string  // alpha: single byte
	Filler    string  // alpha: single byte
	Literal   string  // literal
	Repeat    int     // literal
}

// MaxHaystackLen caps generated haystacks so a typo'd case cannot OOM the
// loader (16 MiB is far beyond any curated case).
const MaxHaystackLen = 1 << 24

// SchemaError reports a case definition that parsed as TOML but violates
// the case schema.
type SchemaError struct {
	File  string // empty when loading from memory
	Case  string // case name, or "" for suite-level errors
	Field string
	Msg   string
}

func (e *SchemaError) Error() string {
	parts := []string{"rebar"}
	if e.File != "" {
		parts = append(parts, e.File)
	}
	if e.Case != "" {
		parts = append(parts, fmt.Sprintf("case %q", e.Case))
	}
	if e.Field != "" {
		parts = append(parts, e.Field)
	}
	return strings.Join(parts, ": ") + ": " + e.Msg
}

var caseNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks the suite against the case schema and compiles the
// per-entry engine selectors. It returns the first violation as a typed
// *SchemaError.
func (s *Suite) Validate() error {
	seen := map[string]bool{}
	for i := range s.Cases {
		c := &s.Cases[i]
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return &SchemaError{Case: c.Name, Field: "name", Msg: "duplicate case name"}
		}
		seen[c.Name] = true
	}
	return nil
}

func (c *Case) validate() error {
	fail := func(field, format string, args ...interface{}) error {
		return &SchemaError{Case: c.Name, Field: field, Msg: fmt.Sprintf(format, args...)}
	}
	if !caseNameRE.MatchString(c.Name) {
		return fail("name", "must match %s", caseNameRE)
	}
	if c.Model != "count" {
		return fail("model", "unsupported model %q (only \"count\")", c.Model)
	}
	if c.Regex == "" {
		return fail("regex", "missing")
	}
	if _, err := regex.Parse(c.Regex); err != nil {
		return fail("regex", "%v", err)
	}
	if err := c.Haystack.validate(); err != nil {
		return &SchemaError{Case: c.Name, Field: "haystack", Msg: err.Error()}
	}
	if len(c.Counts) == 0 {
		return fail("count", "at least one expected-count entry is required")
	}
	for i := range c.Counts {
		e := &c.Counts[i]
		if e.Engine == "" {
			return fail("count", "entry %d: empty engine selector", i)
		}
		re, err := regexp.Compile("^(?:" + e.Engine + ")$")
		if err != nil {
			return fail("count", "entry %d: bad engine selector %q: %v", i, e.Engine, err)
		}
		e.re = re
	}
	if len(c.Engines) == 0 {
		return fail("engines", "at least one engine is required")
	}
	for _, name := range c.Engines {
		if _, err := EngineByName(name); err != nil {
			return fail("engines", "%v", err)
		}
		if _, ok := c.ExpectedCount(name); !ok {
			return fail("count", "no expected-count entry matches engine %q", name)
		}
	}
	return nil
}

// ExpectedCount resolves the declared expectation for an engine,
// first-entry-wins. Validate must have run (it compiles the selectors).
func (c *Case) ExpectedCount(engine string) (uint64, bool) {
	for i := range c.Counts {
		e := &c.Counts[i]
		if e.re == nil {
			re, err := regexp.Compile("^(?:" + e.Engine + ")$")
			if err != nil {
				continue
			}
			e.re = re
		}
		if e.re.MatchString(engine) {
			return e.Count, true
		}
	}
	return 0, false
}

var haystackGenerators = map[string]bool{
	"natural": true, "code": true, "logs": true,
	"text": true, "alpha": true, "literal": true,
}

func (h *Haystack) validate() error {
	if !haystackGenerators[h.Generator] {
		return fmt.Errorf("unknown generator %q", h.Generator)
	}
	if h.Generator == "literal" {
		if h.Literal == "" {
			return fmt.Errorf("literal generator needs a non-empty literal")
		}
		if h.Repeat < 0 {
			return fmt.Errorf("negative repeat %d", h.Repeat)
		}
		rep := h.Repeat
		if rep == 0 {
			rep = 1
		}
		if len(h.Literal)*rep > MaxHaystackLen {
			return fmt.Errorf("literal haystack exceeds %d bytes", MaxHaystackLen)
		}
		if h.Len != 0 {
			return fmt.Errorf("len is implied by literal × repeat")
		}
		return nil
	}
	if h.Len <= 0 || h.Len > MaxHaystackLen {
		return fmt.Errorf("len %d out of range (0, %d]", h.Len, MaxHaystackLen)
	}
	switch h.Generator {
	case "alpha":
		if h.Alpha < 0 || h.Alpha > 1 {
			return fmt.Errorf("alpha %g out of [0, 1]", h.Alpha)
		}
		if len(h.Trigger) != 1 || len(h.Filler) != 1 {
			return fmt.Errorf("alpha generator needs single-byte trigger and filler")
		}
	case "text":
		if h.Alphabet == "" {
			return fmt.Errorf("text generator needs an alphabet")
		}
	case "natural":
		if h.Vocab < 0 || h.Vocab > 1<<20 {
			return fmt.Errorf("vocab %d out of range", h.Vocab)
		}
	}
	return nil
}

// Build generates the haystack bytes. The result is deterministic in the
// spec: two Builds of an identical Haystack are byte-equal.
func (h *Haystack) Build() ([]byte, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	switch h.Generator {
	case "natural":
		return workload.NaturalText(h.Seed, h.Len, h.Vocab), nil
	case "code":
		return workload.SourceCode(h.Seed, h.Len), nil
	case "logs":
		return workload.LogLines(h.Seed, h.Len), nil
	case "text":
		return workload.Text(h.Seed, h.Len, h.Alphabet), nil
	case "alpha":
		return workload.AlphaStream(h.Seed, h.Len, h.Alpha, h.Trigger[0], h.Filler[0]), nil
	case "literal":
		rep := h.Repeat
		if rep == 0 {
			rep = 1
		}
		return []byte(strings.Repeat(h.Literal, rep)), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", h.Generator)
	}
}

// Size returns the haystack length in bytes without building it.
func (h *Haystack) Size() int {
	if h.Generator == "literal" {
		rep := h.Repeat
		if rep == 0 {
			rep = 1
		}
		return len(h.Literal) * rep
	}
	return h.Len
}
