package rebar

import (
	"testing"
)

// FuzzRebarCase pins two properties of the case-definition front end:
//
//  1. Robustness: arbitrary input never panics; failures are the typed
//     *ParseError / *SchemaError.
//  2. Canonical round trip: any document that parses marshals to a form
//     that reparses, and marshalling is a fixpoint from then on
//     (parse → marshal → parse → marshal is byte-identical).
func FuzzRebarCase(f *testing.F) {
	f.Add(validCase)
	f.Add(runSuite)
	f.Add("analysis = '''\nmulti\nline'''\n")
	f.Add("[[bench]]\nname = 'a'\ncount = [{ engine = '.*', count = 1 }]\n")
	f.Add(`k = "escA\n\t"` + "\nn = -12_3\nf = 1.5e-3\nb = [true, false, [1], {}]\n")
	f.Add("[bench]\n")
	f.Add("key = [1,\n# comment\n2]\n")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := parseTOML(src)
		if err != nil {
			if _, ok := err.(*ParseError); !ok {
				t.Fatalf("parse error type %T (%v), want *ParseError", err, err)
			}
			return
		}
		m1 := marshalDocument(doc)
		doc2, err := parseTOML(m1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput: %q\ncanonical: %q", err, src, m1)
		}
		m2 := marshalDocument(doc2)
		if m1 != m2 {
			t.Fatalf("canonical form is not a fixpoint:\ninput: %q\nfirst: %q\nsecond: %q", src, m1, m2)
		}

		// The schema layer must also fail typed, never panic. (Most random
		// documents are schema-invalid; that is fine.)
		if _, err := ParseSuite(src); err != nil {
			switch err.(type) {
			case *ParseError, *SchemaError:
			default:
				t.Fatalf("ParseSuite error type %T (%v)", err, err)
			}
		}
	})
}
