package rebar

import (
	"context"
	"fmt"
	"regexp"

	"bvap"
	"bvap/internal/swmatch"
)

// CountFunc counts matches of a compiled pattern over a haystack. A
// CountFunc is owned by one goroutine at a time (the runner is sequential
// per engine).
type CountFunc func(haystack []byte) (uint64, error)

// EngineSpec is one registered engine: a name, the count semantics it
// implements, and a compiler from pattern to CountFunc.
type EngineSpec struct {
	Name string
	// Semantics documents what the engine counts: "ends" (every position
	// where some match ends — streaming partial-match semantics, shared by
	// the BVAP family, the simulator and swmatch) or "leftmost" (leftmost
	// non-overlapping matches, the go/regexp convention).
	Semantics string
	// Compile builds the per-case counter. Compilation errors are typed
	// (*UnsupportedError for patterns outside the engine's capability).
	Compile func(pattern string) (CountFunc, error)
}

// UnsupportedError reports a pattern an engine cannot execute.
type UnsupportedError struct {
	Engine  string
	Pattern string
	Reason  string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("rebar: engine %s does not support %q: %s", e.Engine, e.Pattern, e.Reason)
}

// simArchs are the six modeled architectures, by their ParseArchitecture
// names.
var simArchs = []string{"bvap", "bvap-s", "cama", "ca", "eap", "cnt"}

// Engines returns every registered engine, in canonical order: the BVAP
// software scanners first, then the cycle-accurate simulator on all six
// architectures, then the independent references.
func Engines() []EngineSpec {
	specs := []EngineSpec{
		{Name: "bvap/findall", Semantics: "ends", Compile: compileFindAll},
		{Name: "bvap/parallel", Semantics: "ends", Compile: compileParallel},
	}
	for _, arch := range simArchs {
		arch := arch
		specs = append(specs, EngineSpec{
			Name:      "bvap/sim/" + arch,
			Semantics: "ends",
			Compile:   func(pattern string) (CountFunc, error) { return compileSim(arch, pattern) },
		})
	}
	specs = append(specs,
		EngineSpec{Name: "swmatch", Semantics: "ends", Compile: compileSwmatch},
		EngineSpec{Name: "go/regexp", Semantics: "leftmost", Compile: compileGoRegexp},
	)
	return specs
}

// EngineByName resolves an engine by exact name.
func EngineByName(name string) (EngineSpec, error) {
	for _, s := range Engines() {
		if s.Name == name {
			return s, nil
		}
	}
	return EngineSpec{}, fmt.Errorf("rebar: unknown engine %q", name)
}

// EngineNames lists the registered engine names in canonical order.
func EngineNames() []string {
	var names []string
	for _, s := range Engines() {
		names = append(names, s.Name)
	}
	return names
}

// compileBVAP compiles a single pattern for the BVAP software engine,
// converting an unsupported-pattern report into a typed error (a silent
// zero-match engine would corrupt the conformance table).
func compileBVAP(engineName, pattern string) (*bvap.Engine, error) {
	eng, err := bvap.Compile([]string{pattern})
	if err != nil {
		return nil, err
	}
	rep := eng.Report()
	if rep.Unsupported > 0 {
		return nil, &UnsupportedError{Engine: engineName, Pattern: pattern, Reason: rep.Patterns[0].Reason}
	}
	return eng, nil
}

func compileFindAll(pattern string) (CountFunc, error) {
	eng, err := compileBVAP("bvap/findall", pattern)
	if err != nil {
		return nil, err
	}
	return func(h []byte) (uint64, error) {
		return uint64(len(eng.FindAll(h))), nil
	}, nil
}

// parallelWorkers and parallelChunk pin the FindAllParallel shape so rebar
// counts and timings are comparable across runs. The chunk is small enough
// that curated haystacks actually split; patterns with unbounded reach fall
// back to the sequential path inside FindAllParallel (still correct — the
// fallback is part of what the suite measures).
const (
	parallelWorkers = 4
	parallelChunk   = 4096
)

func compileParallel(pattern string) (CountFunc, error) {
	eng, err := compileBVAP("bvap/parallel", pattern)
	if err != nil {
		return nil, err
	}
	return func(h []byte) (uint64, error) {
		ms, err := eng.FindAllParallel(context.Background(), h, &bvap.ParallelOptions{
			Workers: parallelWorkers, ChunkSize: parallelChunk,
		})
		if err != nil {
			return 0, err
		}
		return uint64(len(ms)), nil
	}, nil
}

// compileSim builds a counter that replays the haystack on the
// cycle-accurate simulator for one architecture. A fresh simulator is built
// per run (a Simulator is single-use once finished). Baseline architectures
// skip patterns beyond their unfolding capacity and report zero matches for
// them — the per-engine expected counts are exactly where such divergence
// is declared.
func compileSim(arch, pattern string) (CountFunc, error) {
	a, err := bvap.ParseArchitecture(arch)
	if err != nil {
		return nil, err
	}
	switch a {
	case bvap.ArchBVAP, bvap.ArchBVAPStreaming:
		eng, err := compileBVAP("bvap/sim/"+arch, pattern)
		if err != nil {
			return nil, err
		}
		return func(h []byte) (uint64, error) {
			sim, err := eng.NewSimulator(a)
			if err != nil {
				return 0, err
			}
			sim.Run(h)
			return sim.Result().Matches, nil
		}, nil
	default:
		// Validate once up front so schema checking surfaces baseline
		// compile problems at load time, not mid-run.
		if _, err := bvap.NewBaselineSimulator(a, []string{pattern}); err != nil {
			return nil, err
		}
		return func(h []byte) (uint64, error) {
			sim, err := bvap.NewBaselineSimulator(a, []string{pattern})
			if err != nil {
				return 0, err
			}
			sim.Run(h)
			return sim.Result().Matches, nil
		}, nil
	}
}

func compileSwmatch(pattern string) (CountFunc, error) {
	m, err := swmatch.New(pattern)
	if err != nil {
		return nil, err
	}
	return func(h []byte) (uint64, error) {
		return uint64(m.Count(h)), nil
	}, nil
}

// compileGoRegexp adapts the pattern to the standard library. The engine's
// dialect makes `.` match every byte (hardware Σ), so the translation
// enables (?s); the curated corpora are ASCII, keeping byte semantics and
// go/regexp's UTF-8 rune semantics aligned.
func compileGoRegexp(pattern string) (CountFunc, error) {
	re, err := regexp.Compile("(?s)" + pattern)
	if err != nil {
		return nil, &UnsupportedError{Engine: "go/regexp", Pattern: pattern, Reason: err.Error()}
	}
	return func(h []byte) (uint64, error) {
		return uint64(len(re.FindAllIndex(h, -1))), nil
	}, nil
}
