package rebar

import (
	"testing"
)

const curatedDir = "../../testdata/rebar"

func TestCuratedSuiteLoads(t *testing.T) {
	s, err := LoadDir(curatedDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cases) < 20 {
		t.Fatalf("curated suite has %d cases, want >= 20", len(s.Cases))
	}
	groups := map[string]int{}
	for i := range s.Cases {
		groups[s.Cases[i].Group]++
	}
	for _, g := range []string{"bounded-repeat", "corpus-code", "corpus-logs", "micro"} {
		if groups[g] == 0 {
			t.Errorf("curated suite has no %q cases", g)
		}
	}
}

// TestCuratedSuiteConformance runs every curated case on every registered
// engine and asserts the declared counts — the same check `bvapbench -exp
// rebar` enforces. In -short mode the six simulator engines are skipped to
// keep the smoke run fast; the software engines and both references still
// verify every case.
func TestCuratedSuiteConformance(t *testing.T) {
	s, err := LoadDir(curatedDir)
	if err != nil {
		t.Fatal(err)
	}
	opts := &RunOptions{}
	if testing.Short() {
		opts.Engines = []string{"bvap/findall", "bvap/parallel", "swmatch", "go/regexp"}
	}
	results, err := Run(s, opts)
	if err != nil {
		if me, ok := err.(*MismatchError); ok {
			for _, m := range me.Mismatches {
				t.Errorf("%s/%s: got %d, want %d (%s)", m.Case, m.Engine, m.Got, m.Expected, m.Err)
			}
		}
		t.Fatal(err)
	}
	wantEngines := len(EngineNames())
	if testing.Short() {
		wantEngines = len(opts.Engines)
	}
	if want := len(s.Cases) * wantEngines; len(results) != want {
		t.Errorf("cells = %d, want %d", len(results), want)
	}
}
