package rebar

import (
	"fmt"
	"regexp"
	"time"
)

// RunOptions parameterizes a suite run.
type RunOptions struct {
	// Filter, when non-empty, is a regexp selecting case names.
	Filter string
	// Engines, when non-empty, intersects each case's engine list (exact
	// names). Names that match no registered engine are an error.
	Engines []string
	// Reps is the number of timed runs per (case, engine); the first run
	// doubles as the count-verification run. Default 1. Timing is only
	// reported for cells whose count matched — a wrong engine must never
	// look fast.
	Reps int
}

func (o *RunOptions) fill() (*regexp.Regexp, error) {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	for _, name := range o.Engines {
		if _, err := EngineByName(name); err != nil {
			return nil, err
		}
	}
	if o.Filter == "" {
		return nil, nil
	}
	re, err := regexp.Compile(o.Filter)
	if err != nil {
		return nil, fmt.Errorf("rebar: bad case filter %q: %v", o.Filter, err)
	}
	return re, nil
}

// CaseResult is one (case, engine) conformance-and-timing cell.
type CaseResult struct {
	Case      string
	Group     string
	Engine    string
	Semantics string
	Regex     string

	Expected uint64
	Got      uint64
	// OK reports that the engine compiled the pattern and its count matched
	// the declared expectation.
	OK bool
	// Err carries the compile or run error for failed cells.
	Err string

	HaystackLen int
	Reps        int
	// Elapsed is the fastest single verified run; zero when !OK.
	Elapsed time.Duration
	// MBps is the throughput of the fastest verified run.
	MBps float64
}

// MismatchError reports every cell whose observed count diverged from its
// declared expectation (or which failed to compile/run). The successful
// cells are still returned alongside it.
type MismatchError struct {
	Mismatches []CaseResult
}

func (e *MismatchError) Error() string {
	first := e.Mismatches[0]
	detail := first.Err
	if detail == "" {
		detail = fmt.Sprintf("got %d, want %d", first.Got, first.Expected)
	}
	return fmt.Sprintf("rebar: %d count mismatches (first: case %s engine %s: %s)",
		len(e.Mismatches), first.Case, first.Engine, detail)
}

// Run executes every selected case on every selected engine. The returned
// results cover all executed cells in suite order; if any cell failed its
// count assertion the error is a *MismatchError listing them.
func Run(s *Suite, opts *RunOptions) ([]CaseResult, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	filter, err := opts.fill()
	if err != nil {
		return nil, err
	}
	engineSet := map[string]bool{}
	for _, name := range opts.Engines {
		engineSet[name] = true
	}

	var results []CaseResult
	var bad []CaseResult
	for i := range s.Cases {
		c := &s.Cases[i]
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		haystack, err := c.Haystack.Build()
		if err != nil {
			return nil, fmt.Errorf("rebar: case %s: %v", c.Name, err)
		}
		for _, name := range c.Engines {
			if len(engineSet) > 0 && !engineSet[name] {
				continue
			}
			res := runCell(c, name, haystack, opts.Reps)
			results = append(results, res)
			if !res.OK {
				bad = append(bad, res)
			}
		}
	}
	if len(bad) > 0 {
		return results, &MismatchError{Mismatches: bad}
	}
	return results, nil
}

// runCell measures one (case, engine) cell: compile, verify the count on
// every rep, and keep the fastest verified run's timing.
func runCell(c *Case, engine string, haystack []byte, reps int) CaseResult {
	res := CaseResult{
		Case: c.Name, Group: c.Group, Engine: engine, Regex: c.Regex,
		HaystackLen: len(haystack), Reps: reps,
	}
	want, ok := c.ExpectedCount(engine)
	if !ok {
		// Validate guarantees coverage for declared engines; this guards
		// direct Run calls on hand-built suites.
		res.Err = "no expected-count entry matches engine"
		return res
	}
	res.Expected = want

	spec, err := EngineByName(engine)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Semantics = spec.Semantics
	count, err := spec.Compile(c.Regex)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		got, err := count(haystack)
		elapsed := time.Since(t0)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Got = got
		if got != want {
			// Conformance failure: timing from a miscounting engine is
			// meaningless, so none is reported.
			return res
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	res.OK = true
	res.Elapsed = best
	if s := best.Seconds(); s > 0 {
		res.MBps = float64(len(haystack)) / s / 1e6
	}
	return res
}
