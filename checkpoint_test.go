package bvap

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// checkpointInput builds a deterministic stream with matches sprinkled
// through it for the given seed.
func checkpointInput(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 0, n)
	for len(buf) < n {
		switch rng.Intn(4) {
		case 0:
			buf = append(buf, []byte("abbc")...)
		case 1:
			buf = append(buf, []byte("abbbbbc")...)
		default:
			buf = append(buf, byte('a'+rng.Intn(4)))
		}
	}
	return buf[:n]
}

// A restored stream continues exactly where the checkpoint was taken: the
// suffix matches of the interrupted run equal the reference run's.
func TestStreamCheckpointRestore(t *testing.T) {
	e := MustCompile([]string{"ab{2}c", "ab{2,5}c", "c{3}"})
	input := checkpointInput(7, 40<<10)
	cut := len(input) / 3

	want := e.FindAll(input)

	s := e.NewStream()
	var got []Match
	pre, err := s.ScanContext(context.Background(), input[:cut])
	if err != nil {
		t.Fatalf("prefix scan: %v", err)
	}
	got = append(got, pre...)
	ck := s.Checkpoint()
	if ck.Symbols() != int64(cut) {
		t.Fatalf("checkpoint Symbols() = %d, want %d", ck.Symbols(), cut)
	}

	// Wander off: scan garbage, corrupting the live state.
	if _, err := s.ScanContext(context.Background(), bytes.Repeat([]byte("abbcz"), 100)); err != nil {
		t.Fatalf("garbage scan: %v", err)
	}

	// Rewind and run the true suffix.
	if err := s.Restore(ck); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	suf, err := s.ScanContext(context.Background(), input[cut:])
	if err != nil {
		t.Fatalf("suffix scan: %v", err)
	}
	for _, m := range suf {
		got = append(got, Match{Pattern: m.Pattern, End: m.End + cut})
	}

	if len(got) != len(want) {
		t.Fatalf("interrupted run: %d matches, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v != reference %+v", i, got[i], want[i])
		}
	}
}

// A checkpoint restores onto any stream of the same engine — including a
// freshly built one, the restart scenario.
func TestStreamCheckpointCrossStream(t *testing.T) {
	e := MustCompile([]string{"ab{3}c"})
	input := checkpointInput(11, 8<<10)
	cut := len(input) / 2
	want := e.FindAll(input)

	s1 := e.NewStream()
	pre, err := s1.ScanContext(context.Background(), input[:cut])
	if err != nil {
		t.Fatal(err)
	}
	ck := s1.Checkpoint()

	s2 := e.NewStream() // "new process"
	if err := s2.Restore(ck); err != nil {
		t.Fatalf("cross-stream Restore: %v", err)
	}
	suf, err := s2.ScanContext(context.Background(), input[cut:])
	if err != nil {
		t.Fatal(err)
	}
	got := append([]Match{}, pre...)
	for _, m := range suf {
		got = append(got, Match{Pattern: m.Pattern, End: m.End + cut})
	}
	if len(got) != len(want) {
		t.Fatalf("resumed run: %d matches, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// Restoring a checkpoint across engines is rejected, as is a nil one.
func TestStreamCheckpointWrongEngine(t *testing.T) {
	e1 := MustCompile([]string{"ab{2}c"})
	e2 := MustCompile([]string{"ab{2}c"})
	ck := e1.NewStream().Checkpoint()
	if err := e2.NewStream().Restore(ck); err == nil {
		t.Error("Restore accepted a checkpoint from a different engine")
	}
	if err := e1.NewStream().Restore(nil); err == nil {
		t.Error("Restore accepted a nil checkpoint")
	}
}

// The simulator checkpoint rewinds functional state: matches produced after
// a restore equal the uninterrupted run's suffix, even though the work
// discarded by the rollback stays on the meter.
func TestSimulatorCheckpointRestore(t *testing.T) {
	patterns := []string{"ab{2}c", "ab{2,5}c"}
	input := checkpointInput(13, 16<<10)
	cut := len(input) / 2

	ref := MustCompile(patterns)
	rsim, err := ref.NewSimulator(ArchBVAPStreaming)
	if err != nil {
		t.Fatal(err)
	}
	rsim.Run(input)
	wantMatches := rsim.Stats().Matches

	e := MustCompile(patterns)
	sim, err := e.NewSimulator(ArchBVAPStreaming)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(input[:cut])
	atCut := sim.Stats().Matches
	ck, err := sim.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	sim.Run(bytes.Repeat([]byte("abbc"), 200)) // doomed work
	afterGarbage := sim.Stats().Matches
	if err := sim.Restore(ck); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	sim.Run(input[cut:])
	total := sim.Stats().Matches

	if got := atCut + (total - afterGarbage); got != wantMatches {
		t.Errorf("prefix+suffix matches = %d, uninterrupted reference %d", got, wantMatches)
	}
}

// Baselines cannot checkpoint; foreign checkpoints are rejected.
func TestSimulatorCheckpointErrors(t *testing.T) {
	base, err := NewBaselineSimulator(ArchCAMA, []string{"ab{2}c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Checkpoint(); err == nil {
		t.Error("baseline Checkpoint() succeeded")
	}

	e := MustCompile([]string{"ab{2}c"})
	s1, _ := e.NewSimulator(ArchBVAP)
	s2, _ := e.NewSimulator(ArchBVAP)
	ck, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(ck); err == nil {
		t.Error("Restore accepted another simulator's checkpoint")
	}
	if err := s1.Restore(nil); err == nil {
		t.Error("Restore accepted a nil checkpoint")
	}
}
