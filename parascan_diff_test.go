package bvap

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bvap/internal/swmatch"
)

// This file is the differential/property layer that pins the sharded
// parallel scanner byte-for-byte to the sequential oracle: for randomly
// generated pattern sets and inputs,
//
//   FindAllParallel(chunk ∈ {1, 7, 64, len})  ==  FindAll  ==  swmatch
//   ScanBatch(workers ∈ {1, 2, 8})            ==  per-input FindAll
//
// Chunk reconciliation is exactly the kind of code that is subtly wrong
// without being obviously wrong (an off-by-one in the seam window only
// shows on a match that straddles a chunk boundary at its maximal length),
// so the generator plants pattern occurrences at uniformly random offsets —
// including, with high probability over 200 cases, straddling every chunk
// size tested.

// diffChunkSizes and diffWorkerCounts are the grids required by the
// acceptance criteria. A chunk size of 0 stands for len(input) (single
// chunk → short-input fallback path).
var (
	diffChunkSizes   = []int{1, 7, 64, 0}
	diffWorkerCounts = []int{1, 2, 8}
)

// genPattern emits a random pattern from the engine's supported subset.
// Bounded constructs dominate so most sets have finite reach; stars/plus
// appear occasionally to exercise the unbounded_reach fallback, and a
// leading ^ exercises anchored seam handling.
func genPattern(r *rand.Rand, depth int) string {
	body := genBody(r, depth)
	if r.Intn(5) == 0 {
		return "^" + body
	}
	return body
}

func genBody(r *rand.Rand, depth int) string {
	var atom func(d int) string
	atom = func(d int) string {
		switch r.Intn(8) {
		case 0, 1, 2: // literal run
			n := 1 + r.Intn(3)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(byte('a' + r.Intn(3)))
			}
			return sb.String()
		case 3:
			return []string{"[ab]", "[bc]", "[a-c]"}[r.Intn(3)]
		case 4: // bounded repetition
			base := atom(0)
			if len(base) > 1 {
				base = "(" + base + ")"
			}
			lo := 1 + r.Intn(4)
			if r.Intn(2) == 0 {
				return fmt.Sprintf("%s{%d}", base, lo)
			}
			return fmt.Sprintf("%s{%d,%d}", base, lo, lo+r.Intn(5))
		case 5:
			return atom(0) + "?"
		case 6:
			if d > 0 {
				return "(" + genBody(r, d-1) + ")"
			}
			return string(byte('a' + r.Intn(3)))
		default: // occasional unbounded operator
			if r.Intn(5) == 0 {
				return string(byte('a'+r.Intn(3))) + []string{"*", "+", "{2,}"}[r.Intn(3)]
			}
			return string(byte('a' + r.Intn(3)))
		}
	}
	// Concatenation of 1–3 factors, possibly an alternation of two bodies.
	var parts []string
	for i := 0; i < 1+r.Intn(3); i++ {
		parts = append(parts, atom(depth))
	}
	s := strings.Join(parts, "")
	if depth > 0 && r.Intn(4) == 0 {
		return s + "|" + genBody(r, depth-1)
	}
	return s
}

// genInput builds a random input over a small alphabet with occurrences of
// literal-ish pattern fragments planted at random offsets, so matches land
// everywhere — including straddling chunk seams.
func genInput(r *rand.Rand, patterns []string, maxLen int) []byte {
	n := r.Intn(maxLen)
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('a' + r.Intn(4)) // a–d; d misses most classes
	}
	// Plant fragments: strip metacharacters from patterns to get plain
	// substrings that often complete a match.
	for _, p := range patterns {
		frag := strings.Map(func(c rune) rune {
			if c >= 'a' && c <= 'c' {
				return c
			}
			return -1
		}, p)
		if frag == "" || len(in) == 0 {
			continue
		}
		for k := 0; k < 1+r.Intn(3); k++ {
			off := r.Intn(len(in))
			copy(in[off:], frag)
		}
	}
	return in
}

// matchesEqual compares match slices byte-for-byte, treating nil and empty
// as equal only when both are empty.
func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestDifferentialParallelVsSequential is the ~200-case property harness:
// random pattern sets × inputs, asserting FindAllParallel and ScanBatch
// agree with the sequential FindAll oracle across the chunk-size and
// worker-count grids, and that the oracle itself agrees with the
// independent swmatch reference.
func TestDifferentialParallelVsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	ctx := context.Background()
	cases := 200
	if testing.Short() {
		cases = 40
	}
	for ci := 0; ci < cases; ci++ {
		// 1–4 patterns per set.
		np := 1 + r.Intn(4)
		patterns := make([]string, np)
		for i := range patterns {
			patterns[i] = genPattern(r, 2)
		}
		e, err := Compile(patterns)
		if err != nil {
			t.Fatalf("case %d: Compile(%q): %v", ci, patterns, err)
		}
		input := genInput(r, patterns, 300)
		want := e.FindAll(input)

		// Oracle vs the independent reference matcher, per supported
		// pattern (unsupported patterns never match in the engine).
		rep := e.Report()
		for pi, pr := range rep.Patterns {
			if !pr.Supported {
				continue
			}
			ref, err := swmatch.New(pr.Pattern)
			if err != nil {
				continue // reference doesn't cover this syntax
			}
			var got []int
			for _, m := range want {
				if m.Pattern == pi {
					got = append(got, m.End)
				}
			}
			if wantEnds := ref.MatchEnds(input); !reflect.DeepEqual(got, wantEnds) {
				t.Fatalf("case %d: oracle disagrees with swmatch for %q on %q:\nengine  %v\nswmatch %v",
					ci, pr.Pattern, input, got, wantEnds)
			}
		}

		// FindAllParallel across the chunk grid × a rotating worker count.
		for _, cs := range diffChunkSizes {
			chunk := cs
			if chunk == 0 {
				chunk = len(input)
				if chunk == 0 {
					chunk = 1
				}
			}
			workers := diffWorkerCounts[ci%len(diffWorkerCounts)]
			got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: workers, ChunkSize: chunk})
			if err != nil {
				t.Fatalf("case %d: FindAllParallel(chunk=%d): %v", ci, chunk, err)
			}
			if !matchesEqual(got, want) {
				w, bounded := e.SeamWindow()
				t.Fatalf("case %d: FindAllParallel(chunk=%d, workers=%d) diverged on patterns %q input %q (seam window=%d bounded=%v):\npar %v\nseq %v",
					ci, chunk, workers, patterns, input, w, bounded, got, want)
			}
		}

		// ScanBatch across the worker grid: the batch is this input split
		// into independent pieces plus the whole input, each compared to
		// its own sequential scan.
		batch := [][]byte{input}
		for off := 0; off < len(input); off += 64 {
			end := off + 64
			if end > len(input) {
				end = len(input)
			}
			batch = append(batch, input[off:end])
		}
		wantBatch := make([][]Match, len(batch))
		for i, in := range batch {
			wantBatch[i] = e.FindAll(in)
		}
		for _, workers := range diffWorkerCounts {
			results, err := e.ScanBatch(ctx, batch, &BatchOptions{Workers: workers})
			if err != nil {
				t.Fatalf("case %d: ScanBatch(workers=%d): %v", ci, workers, err)
			}
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("case %d: ScanBatch input %d: %v", ci, i, res.Err)
				}
				if !matchesEqual(res.Matches, wantBatch[i]) {
					t.Fatalf("case %d: ScanBatch(workers=%d) input %d diverged:\nbatch %v\nseq   %v",
						ci, workers, i, res.Matches, wantBatch[i])
				}
			}
		}
	}
}

// TestDifferentialSeamStraddle drills the seam specifically: a pattern of
// known maximal length planted so that its matches straddle every chunk
// boundary at every possible phase. Any error in the replay-window
// derivation (reach − 1, reach + 1, replay from the wrong side) fails.
func TestDifferentialSeamStraddle(t *testing.T) {
	ctx := context.Background()
	// Reach 8: matches of length 5..8 ending anywhere.
	e := MustCompile([]string{"ab{3,6}c"})
	if w, ok := e.SeamWindow(); !ok || w != 8 {
		t.Fatalf("SeamWindow = %d, %v, want 8, true", w, ok)
	}
	for chunk := 9; chunk <= 12; chunk++ {
		for phase := 0; phase < chunk; phase++ {
			// Input: noise, then a maximal match positioned so its end
			// lands 'phase' bytes into the second chunk.
			pad := chunk + phase - 8
			if pad < 0 {
				continue
			}
			input := []byte(strings.Repeat("x", pad) + "abbbbbbc" + strings.Repeat("x", chunk))
			want := e.FindAll(input)
			if len(want) == 0 {
				t.Fatalf("chunk=%d phase=%d: oracle found no match (test bug)", chunk, phase)
			}
			got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 2, ChunkSize: chunk})
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("chunk=%d phase=%d: seam divergence:\npar %v\nseq %v", chunk, phase, got, want)
			}
		}
	}
}

// TestDifferentialAnchoredSeam pins that anchored patterns neither lose
// their real (chunk-0) matches nor gain phantom matches from replay
// re-arming at a chunk boundary.
func TestDifferentialAnchoredSeam(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"^ab{1,4}c", "b{2}c"})
	input := []byte("abbc" + strings.Repeat("xabbcx", 40))
	want := e.FindAll(input)
	for _, chunk := range []int{7, 8, 16, 33} {
		got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 3, ChunkSize: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(got, want) {
			t.Fatalf("chunk=%d: anchored seam divergence:\npar %v\nseq %v", chunk, got, want)
		}
	}
}
