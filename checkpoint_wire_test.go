package bvap

import (
	"bytes"
	"errors"
	"testing"
)

// wireSession opens a session with a match collector, feeds prefix bytes,
// and returns the session plus its wire checkpoint.
func wireSessionCheckpoint(t *testing.T, svc *Service, input []byte, interval int) ([]byte, []Match) {
	t.Helper()
	var delivered []Match
	ss, err := svc.NewSession(&SessionConfig{
		CheckpointInterval: interval,
		OnMatch:            func(m Match) { delivered = append(delivered, m) },
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := ss.Feed(nil, input); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	wire, err := ss.Checkpoint().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	ss.Close()
	return wire, delivered
}

func TestSessionCheckpointWireRoundTrip(t *testing.T) {
	patterns := []string{"ab{2}c", "c{3}"}
	svc, err := NewService(patterns, nil)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	input := bytes.Repeat([]byte("xabbc_ccc_"), 120)
	oracle := MustCompile(patterns).FindAll(input)
	half := len(input) / 2

	wire, delivered := wireSessionCheckpoint(t, svc, input[:half], 128)

	// Resume from bytes — as a migrated node would — and feed the rest.
	got := append([]Match(nil), delivered...)
	rs, err := svc.ResumeSessionBytes(wire, &SessionConfig{
		CheckpointInterval: 128,
		OnMatch:            func(m Match) { got = append(got, m) },
	})
	if err != nil {
		t.Fatalf("ResumeSessionBytes: %v", err)
	}
	if rs.Pos() != int64(half) {
		t.Fatalf("resumed at %d, want %d", rs.Pos(), half)
	}
	if err := rs.Feed(nil, input[half:]); err != nil {
		t.Fatalf("Feed after resume: %v", err)
	}
	rs.Close()

	if len(got) != len(oracle) {
		t.Fatalf("resumed run delivered %d matches, oracle %d", len(got), len(oracle))
	}
	for i := range got {
		if got[i] != oracle[i] {
			t.Fatalf("match %d = %+v, oracle %+v — wire resume must be byte-identical", i, got[i], oracle[i])
		}
	}
}

func TestSessionCheckpointWireCorruptionRejected(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	wire, _ := wireSessionCheckpoint(t, svc, bytes.Repeat([]byte("xabbc"), 100), 64)

	// Sanity: the pristine wire decodes.
	if _, err := svc.DecodeSessionCheckpoint(wire); err != nil {
		t.Fatalf("pristine wire rejected: %v", err)
	}
	// Every single-byte corruption must be rejected (checksum), never
	// silently resumed.
	for i := 0; i < len(wire); i++ {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x40
		if _, err := svc.DecodeSessionCheckpoint(mut); !errors.Is(err, ErrCheckpointCorrupt) {
			// A flip inside the fingerprint bytes changes the fingerprint
			// but also breaks the checksum, so corrupt is still correct.
			t.Fatalf("byte %d flipped: err = %v, want ErrCheckpointCorrupt", i, err)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(wire); n += 7 {
		if _, err := svc.DecodeSessionCheckpoint(wire[:n]); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
	if _, err := svc.ResumeSessionBytes(wire[:len(wire)-1], nil); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("ResumeSessionBytes on truncated wire = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestSessionCheckpointWireSurvivesSameSetReload(t *testing.T) {
	patterns := []string{"ab{2}c"}
	svc, err := NewService(patterns, nil)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	input := bytes.Repeat([]byte("xabbc"), 200)
	wire, delivered := wireSessionCheckpoint(t, svc, input[:500], 64)

	// Reload the SAME pattern set: new generation, equal fingerprint — the
	// wire checkpoint resumes on the freshly compiled engine.
	if _, err := svc.Reload(nil, patterns); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	got := append([]Match(nil), delivered...)
	rs, err := svc.ResumeSessionBytes(wire, &SessionConfig{OnMatch: func(m Match) { got = append(got, m) }})
	if err != nil {
		t.Fatalf("resume after same-set reload: %v", err)
	}
	if err := rs.Feed(nil, input[500:]); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	rs.Close()
	oracle := MustCompile(patterns).FindAll(input)
	if len(got) != len(oracle) {
		t.Fatalf("delivered %d matches across a same-set reload, oracle %d", len(got), len(oracle))
	}
}

func TestSessionCheckpointWireStaleAfterDifferentReload(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{RetainGenerations: 1})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	wire, _ := wireSessionCheckpoint(t, svc, bytes.Repeat([]byte("xabbc"), 100), 64)

	// A semantically different reload with a retention window of 1 evicts
	// the original engine: the wire checkpoint's fingerprint resolves
	// nowhere and resume fails with the typed stale error.
	if _, err := svc.Reload(nil, []string{"zz{4}q"}); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if _, err := svc.ResumeSessionBytes(wire, nil); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("resume after different-set reload = %v, want ErrCheckpointStale", err)
	}
}

func TestSessionCheckpointRetiredGenerationRetained(t *testing.T) {
	// With the default retention window, a wire checkpoint from a RETIRED
	// generation still resumes after a different-set reload — the retained
	// engine serves it — while the in-memory handle keeps working too.
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	input := bytes.Repeat([]byte("xabbc"), 200)
	oracle := MustCompile([]string{"ab{2}c"}).FindAll(input)

	var delivered []Match
	ss, err := svc.NewSession(&SessionConfig{
		CheckpointInterval: 64,
		OnMatch:            func(m Match) { delivered = append(delivered, m) },
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := ss.Feed(nil, input[:500]); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	ck := ss.Checkpoint()
	wire, err := ck.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	ss.Close()

	if _, err := svc.Reload(nil, []string{"zz{4}q"}); err != nil {
		t.Fatalf("Reload: %v", err)
	}

	finish := func(rs *StreamSession, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		got := append([]Match(nil), delivered...)
		rs.onMatch = func(m Match) { got = append(got, m) }
		if err := rs.Feed(nil, input[500:]); err != nil {
			t.Fatalf("Feed: %v", err)
		}
		rs.Close()
		if len(got) != len(oracle) {
			t.Fatalf("retired-generation resume delivered %d matches, oracle %d", len(got), len(oracle))
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("match %d = %+v, oracle %+v", i, got[i], oracle[i])
			}
		}
	}
	// In-memory handle: pinned by pointer, reload-immune.
	finish(svc.ResumeSession(ck, nil))
	// Wire bytes: resolved through the retention window.
	finish(svc.ResumeSessionBytes(wire, nil))
}

// FuzzSessionCheckpointWire throws arbitrary bytes at the checkpoint
// decoder. Any input must either be rejected with a typed error or decode
// into a checkpoint that resumes and keeps matching — never panic, never
// resume into a corrupted matcher state. Seeds include genuine checkpoints
// so the fuzzer starts from the valid region and mutates outward.
func FuzzSessionCheckpointWire(f *testing.F) {
	svc, err := NewService([]string{"ab{2}c", "a(.a){3}b"}, nil)
	if err != nil {
		f.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	corpus := bytes.Repeat([]byte("xabbc_axayaab_"), 40)
	for _, cut := range []int{0, 17, len(corpus) / 2, len(corpus)} {
		ss, err := svc.NewSession(&SessionConfig{CheckpointInterval: 32})
		if err != nil {
			f.Fatalf("NewSession: %v", err)
		}
		if err := ss.Feed(nil, corpus[:cut]); err != nil {
			f.Fatalf("Feed: %v", err)
		}
		wire, err := ss.Checkpoint().MarshalBinary()
		if err != nil {
			f.Fatalf("MarshalBinary: %v", err)
		}
		ss.Close()
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte("BVCK"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		ck, err := svc.DecodeSessionCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointStale) {
				t.Fatalf("decode error is untyped: %v", err)
			}
			return
		}
		// Accepted wire must round-trip exactly and resume into a session
		// that survives further input.
		again, err := ck.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted wire does not round-trip: %d vs %d bytes", len(again), len(data))
		}
		rs, err := svc.ResumeSession(ck, nil)
		if err != nil {
			t.Fatalf("resume of accepted checkpoint: %v", err)
		}
		if err := rs.Feed(nil, corpus[:64]); err != nil {
			t.Fatalf("feed after fuzz resume: %v", err)
		}
		rs.Close()
	})
}

func TestEngineFingerprintSemantics(t *testing.T) {
	a1 := MustCompile([]string{"ab{2}c", "c{3}"})
	a2 := MustCompile([]string{"ab{2}c", "c{3}"})
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Fatal("same patterns, same options: fingerprints must be equal")
	}
	if a1.Fingerprint() == MustCompile([]string{"ab{2}c"}).Fingerprint() {
		t.Fatal("different pattern sets share a fingerprint")
	}
	if a1.Fingerprint() == MustCompile([]string{"c{3}", "ab{2}c"}).Fingerprint() {
		t.Fatal("pattern order is semantic (indices name patterns in reports); fingerprints must differ")
	}
	if a1.Fingerprint() == MustCompile([]string{"ab{2}c", "c{3}"}, WithBVSize(32)).Fingerprint() {
		t.Fatal("different compile parameters share a fingerprint")
	}
}
