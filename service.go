package bvap

// The long-lived scan service. Engine is a compile-once artifact; Service
// wraps it with the lifecycle a deployed matcher needs — the mechanisms
// live in internal/serve, this file binds them to engines and streams:
//
//   - hot reload: Reload compiles a candidate pattern set in the
//     background, validates it in two phases (hardware-configuration
//     validation, then a swmatch cross-check over the probe corpus) and
//     publishes it atomically; scans in flight finish on the generation
//     they loaded, and a rejected candidate never becomes visible;
//   - admission control: Scan and ScanBatch pass through a bounded
//     concurrency gate with a bounded wait queue — under overload requests
//     are shed with ErrOverloaded instead of queueing unboundedly;
//   - degradation: each scan runs under a watchdog deadline with panic
//     containment; inputs that repeatedly time out or panic are
//     quarantined by a circuit breaker (ErrQuarantined) for a cooldown,
//     taking the pathological key out of service instead of the process;
//   - checkpoint/resume: NewSession opens a BVAP-S-style streaming session
//     that checkpoints its matching state every CheckpointInterval symbols
//     and commits match reports only at checkpoint boundaries, so an
//     interrupted stream resumes from the last checkpoint with no lost or
//     duplicated reports;
//   - drain: Drain/Close complete in-flight work, refuse new work with
//     ErrDraining, and bound the wait with the caller's context.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bvap/internal/serve"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// ServiceConfig tunes a Service. The zero value serves with GOMAXPROCS
// concurrent scans, no wait queue, no watchdog deadline, default quarantine
// thresholds, no probe corpus and no telemetry.
type ServiceConfig struct {
	// MaxConcurrent bounds the scans executing at once; values < 1 select
	// runtime.GOMAXPROCS(0).
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for a slot; 0 (and negative
	// values) shed immediately when the gate is full.
	MaxQueue int
	// ScanTimeout is the per-scan watchdog deadline layered on the
	// caller's context; 0 disables it.
	ScanTimeout time.Duration
	// QuarantineThreshold / QuarantineWindow / QuarantineCooldown tune the
	// circuit breaker: Threshold failures of one input key within Window
	// quarantine it for Cooldown. Zero values select 3 failures / 1 minute
	// / 30 seconds.
	QuarantineThreshold int
	QuarantineWindow    time.Duration
	QuarantineCooldown  time.Duration
	// ProbeCorpus are inputs every reload candidate must match correctly
	// (engine output cross-checked against the independent software
	// matchers) before it is published. An empty corpus skips the
	// cross-check phase.
	ProbeCorpus [][]byte
	// CompileOptions are applied to the initial compile and to every
	// reload.
	CompileOptions []Option
	// Metrics, when non-nil, accrues the bvap_serve_* gauges and counters
	// (generation, queue depth, sheds, quarantines, checkpoint age, ...).
	Metrics *telemetry.Registry
	// FlightRecorder, when non-nil, turns on request-scoped tracing: every
	// Scan / session Feed without a trace already in its context starts one,
	// records per-stage spans (breaker, admission, scan, shards, seam
	// replay, checkpoints), and lands in the recorder's ring — with scans
	// that blow the recorder's latency or energy budget pinned into its
	// black box. Nil disables tracing at zero cost (0 allocs on the scan
	// path; see TestServiceScanTracingDisabledAllocationFree).
	FlightRecorder *tracing.Recorder
	// EnergyProbeSymbols sizes the synthetic input of the pre-publish
	// energy calibration: each published engine is run through the BVAP
	// cycle model (over the probe corpus plus a synthetic ramp of this many
	// symbols) to fix a pJ/symbol rate, which prices the live per-scan
	// energy estimate (bvap_serve_scan_energy_pj, trace energy_pj).
	// 0 selects 4096; negative disables calibration — scans then report no
	// energy figure.
	EnergyProbeSymbols int
	// DefaultQuota is the per-tenant token-bucket admission quota applied
	// to tenants without a TenantQuotas entry (tenant ids ride the request
	// context; see WithTenant). The zero value is unlimited — the
	// single-tenant configuration pays one nil check.
	DefaultQuota QuotaConfig
	// TenantQuotas overrides DefaultQuota per tenant id.
	TenantQuotas map[string]QuotaConfig
	// RetainGenerations is how many retired engine generations the service
	// keeps addressable by fingerprint for wire-checkpoint resume
	// (Service.ResumeSessionBytes): a session checkpointed before a reload
	// can still land on the engine it was taken against, as long as that
	// engine is within the retention window. Values < 1 select 4.
	RetainGenerations int
}

func (c *ServiceConfig) fill() {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RetainGenerations < 1 {
		c.RetainGenerations = 4
	}
}

// QuotaConfig is one tenant's token-bucket allowance on the admission gate:
// a sustained admission rate plus a burst depth. The zero value is
// unlimited. It is internal/serve's QuotaConfig re-exported.
type QuotaConfig = serve.QuotaConfig

// tenantKey is the context key of the request tenant id.
type tenantKey struct{}

// WithTenant attributes the requests made with the returned context to
// tenant: admission decisions are metered per tenant
// (bvap_serve_admit_total) and, when the service configures quotas, gated
// by the tenant's token bucket before the request may contend for a shared
// admission slot. An empty tenant id is the anonymous "default" tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFromContext returns the tenant id attached by WithTenant, or ""
// when the context carries none.
func TenantFromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// Service is a supervised, long-lived scan front end over a hot-reloadable
// Engine. All methods are safe for concurrent use. Construct with
// NewService; close with Drain or Close.
type Service struct {
	cfg ServiceConfig
	sm  *serve.Metrics
	adm *serve.Admission
	brk *serve.Breaker
	gen *serve.Generations[*Engine]
	quo *serve.Quotas

	// retained holds the last RetainGenerations published engines keyed by
	// fingerprint, so a wire session checkpoint taken before a reload can
	// still resolve the engine it was pinned to (ResumeSessionBytes).
	// retainedOrder is the publication order, oldest first, for trimming.
	retainedMu    sync.Mutex
	retained      map[uint64]*Engine
	retainedOrder []uint64
}

// NewService compiles patterns and starts serving them as generation 1.
// The initial set passes the same two-phase validation reloads do, so a
// service never starts on a configuration it would refuse to reload into.
func NewService(patterns []string, cfg *ServiceConfig) (*Service, error) {
	var c ServiceConfig
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	sm := serve.NewMetrics(c.Metrics)
	s := &Service{
		cfg: c,
		sm:  sm,
		adm: serve.NewAdmission(serve.AdmissionConfig{MaxConcurrent: c.MaxConcurrent, MaxQueue: c.MaxQueue}, sm),
		brk: serve.NewBreaker(serve.BreakerConfig{
			Threshold: c.QuarantineThreshold,
			Window:    c.QuarantineWindow,
			Cooldown:  c.QuarantineCooldown,
		}, sm),
		quo:      serve.NewQuotas(c.DefaultQuota, c.TenantQuotas),
		retained: map[uint64]*Engine{},
	}
	e, err := s.buildEngine(context.Background(), patterns)
	if err != nil {
		return nil, err
	}
	if err := s.prepareEngine(e); err != nil {
		return nil, err
	}
	s.gen = serve.NewGenerations(e, sm)
	s.retain(e)
	return s, nil
}

// retain records a just-published engine in the fingerprint-keyed retention
// window, trimming the oldest beyond RetainGenerations. Re-publishing an
// equal fingerprint (same pattern set recompiled) refreshes its slot.
func (s *Service) retain(e *Engine) {
	fp := e.Fingerprint()
	s.retainedMu.Lock()
	defer s.retainedMu.Unlock()
	if _, ok := s.retained[fp]; ok {
		for i, f := range s.retainedOrder {
			if f == fp {
				s.retainedOrder = append(s.retainedOrder[:i], s.retainedOrder[i+1:]...)
				break
			}
		}
	}
	s.retained[fp] = e
	s.retainedOrder = append(s.retainedOrder, fp)
	for len(s.retainedOrder) > s.cfg.RetainGenerations {
		delete(s.retained, s.retainedOrder[0])
		s.retainedOrder = s.retainedOrder[1:]
	}
}

// engineByFingerprint resolves an engine a wire checkpoint is pinned to:
// the served generation first, then the retention window.
func (s *Service) engineByFingerprint(fp uint64) *Engine {
	if e := s.gen.Load().Value; e.Fingerprint() == fp {
		return e
	}
	s.retainedMu.Lock()
	defer s.retainedMu.Unlock()
	return s.retained[fp]
}

// buildEngine is the reload build phase: a plain background compile.
func (s *Service) buildEngine(ctx context.Context, patterns []string) (*Engine, error) {
	return CompileContext(ctx, patterns, s.cfg.CompileOptions...)
}

// validateEngine is the reload validation phase. Phase one vets the
// compiled hardware configuration; phase two requires at least one
// supported pattern (a candidate where every rule failed would silently
// serve nothing); phase three cross-checks the candidate's matches against
// the independent software matchers over the probe corpus. Failures are
// typed *ReloadError values naming the phase.
func (s *Service) validateEngine(e *Engine) error {
	if err := e.res.Config.Validate(); err != nil {
		return &serve.ReloadError{Phase: "validate", Err: err}
	}
	if r := e.res.Report; len(e.patterns) > 0 && r.Unsupported == len(e.patterns) {
		return &serve.ReloadError{Phase: "validate",
			Err: fmt.Errorf("no pattern in the candidate set compiled (%d rejected)", r.Unsupported)}
	}
	for i, probe := range s.cfg.ProbeCorpus {
		ms := e.FindAll(probe)
		if hook := crossCheckCorruptHook; hook != nil {
			ms = hook(ms)
		}
		if !e.verifyShard(probe, ms) {
			return &serve.ReloadError{Phase: "crosscheck",
				Err: fmt.Errorf("candidate disagrees with reference matcher on probe %d (%d bytes)", i, len(probe))}
		}
	}
	return nil
}

// prepareEngine is the full pre-publish pipeline of a candidate engine:
// validation (see validateEngine) followed by energy calibration. Both
// NewService and Reload publish only prepared engines, so a served engine
// always carries its energy rate.
func (s *Service) prepareEngine(e *Engine) error {
	if err := s.validateEngine(e); err != nil {
		return err
	}
	s.calibrateEngine(e)
	return nil
}

// calibrateEngine fixes the engine's pJ/symbol energy rate by replaying
// the probe corpus plus a synthetic byte ramp through the BVAP cycle
// model. Runs before the engine is published (the Engine immutability
// contract holds for everything scans can see), and never fails a reload:
// a configuration the cycle model rejects simply serves without an energy
// figure.
func (s *Service) calibrateEngine(e *Engine) {
	if s.cfg.EnergyProbeSymbols < 0 {
		return
	}
	n := s.cfg.EnergyProbeSymbols
	if n == 0 {
		n = 4096
	}
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		return
	}
	for _, probe := range s.cfg.ProbeCorpus {
		sim.Run(probe)
	}
	ramp := make([]byte, n)
	for i := range ramp {
		ramp[i] = byte(i*131 + 89)
	}
	sim.Run(ramp)
	sim.Result() // finalize: charges terminal leakage and I/O
	st := sim.Stats()
	if st.Symbols > 0 {
		e.energyRatePJPerSym = st.TotalEnergyPJ() / float64(st.Symbols)
	}
}

// serviceScanHook, when non-nil, runs at the start of every Scan's
// watchdog-bounded body — the test lever for deterministic slow-scan
// injection. Never set outside tests.
var serviceScanHook func(input []byte)

// crossCheckCorruptHook, when non-nil, corrupts the candidate's probe
// matches before the reload cross-check — the deterministic stand-in for a
// miscompiled candidate, letting tests exercise the crosscheck-rejection
// path. Never set outside tests.
var crossCheckCorruptHook func(ms []Match) []Match

// Reload swaps in a new pattern set: compile, validate (see
// validateEngine), publish. Scans admitted before the swap finish on their
// old generation; scans admitted after see the new one — there is no window
// where neither serves. On failure the served generation is unchanged and
// the error is a *ReloadError naming the rejecting phase ("build",
// "validate" or "crosscheck"). Concurrent Reloads serialize and all apply,
// in some order. Reload returns the new generation sequence number.
func (s *Service) Reload(ctx context.Context, patterns []string) (uint64, error) {
	if s.adm.Draining() {
		return 0, ErrDraining
	}
	gen, err := s.gen.Swap(
		func(*serve.Generation[*Engine]) (*Engine, error) { return s.buildEngine(ctx, patterns) },
		s.prepareEngine,
	)
	if err != nil {
		return 0, err
	}
	s.retain(gen.Value)
	return gen.Seq, nil
}

// PreparedReload is a validated-but-unpublished candidate pattern set: the
// node-local half of the fleet's two-phase coordinated reload. A
// coordinator Prepares on every node, compares Fingerprints (all nodes must
// have compiled semantically identical sets), and only then Commits
// everywhere; any node that fails to prepare aborts the round fleet-wide —
// rollback is non-publication, so a half-failed round leaves every node
// serving exactly what it served before.
type PreparedReload struct {
	svc    *Service
	staged *serve.Staged[*Engine]
}

// PrepareReload runs the build and validation phases of Reload — compile,
// hardware-configuration validation, probe-corpus cross-check, energy
// calibration — but stops short of publication. The candidate is held
// aside for Commit or Abort; scans continue on the current generation
// throughout, and concurrent Reloads/Prepares serialize exactly as
// concurrent Reloads do.
func (s *Service) PrepareReload(ctx context.Context, patterns []string) (*PreparedReload, error) {
	if s.adm.Draining() {
		return nil, ErrDraining
	}
	st, err := s.gen.Stage(
		func(*serve.Generation[*Engine]) (*Engine, error) { return s.buildEngine(ctx, patterns) },
		s.prepareEngine,
	)
	if err != nil {
		return nil, err
	}
	return &PreparedReload{svc: s, staged: st}, nil
}

// Fingerprint returns the candidate engine's fingerprint (see
// Engine.Fingerprint) — the value a fleet coordinator compares across
// nodes before committing a round.
func (p *PreparedReload) Fingerprint() uint64 { return p.staged.Value.Fingerprint() }

// Base returns the generation sequence the candidate was validated
// against.
func (p *PreparedReload) Base() uint64 { return p.staged.Base }

// Commit publishes the prepared candidate, returning the new generation
// sequence. It fails with an error unwrapping to ErrStaleGeneration when
// another reload published since PrepareReload — the candidate was vetted
// against a generation that no longer serves. Idempotent with Abort:
// whichever runs first wins.
func (p *PreparedReload) Commit() (uint64, error) {
	gen, err := p.staged.Commit()
	if err != nil {
		return 0, err
	}
	p.svc.retain(gen.Value)
	return gen.Seq, nil
}

// Abort discards the prepared candidate without publishing it.
func (p *PreparedReload) Abort() { p.staged.Abort() }

// Engine returns the currently served engine. The engine is immutable; a
// concurrent Reload publishes a new one rather than changing this one.
func (s *Service) Engine() *Engine { return s.gen.Load().Value }

// Generation returns the served generation sequence (1 at start, +1 per
// successful Reload).
func (s *Service) Generation() uint64 { return s.gen.Seq() }

// Quarantined returns the input keys currently held out of service by the
// circuit breaker, sorted.
func (s *Service) Quarantined() []string { return s.brk.Quarantined() }

// QuotaSaturation reports per-tenant quota consumption (0 = idle, 1 =
// exhausted; see serve.Quotas.Saturation), or nil when quotas are
// disabled. Surfaced by the fleet health plane.
func (s *Service) QuotaSaturation() map[string]float64 { return s.quo.Saturation() }

// inputKey digests an input for quarantine bookkeeping: cheap, stable, and
// collision-tolerant (a collision only couples two inputs' failure
// budgets).
func inputKey(input []byte) string {
	h := fnv.New64a()
	h.Write(input)
	return fmt.Sprintf("input:%016x", h.Sum64())
}

// Scan matches input against the served pattern set under the service's
// full protection ladder: quarantine check, admission, watchdog deadline,
// panic containment. Errors:
//
//   - ErrQuarantined: the input's key is cooling down after repeated
//     timeouts or panics;
//   - ErrOverloaded: shed by admission control (also unwraps to the
//     context error when the deadline expired while queued);
//   - ErrDraining: the service is shutting down;
//   - *PanicError: the scan body panicked (the input's key takes a
//     breaker failure);
//   - a context error: the watchdog deadline or the caller's own context
//     stopped the scan (a watchdog timeout takes a breaker failure;
//     caller cancellation does not).
func (s *Service) Scan(ctx context.Context, input []byte) ([]Match, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Tracing: adopt the caller's trace if one rides the context (bvapd
	// starts it per request); otherwise start — and own recording — one of
	// our own when a flight recorder is configured. With neither, tr is nil
	// and every tracing call below is a nil-check no-op.
	tr := tracing.FromContext(ctx)
	if tr == nil && s.cfg.FlightRecorder != nil {
		ctx, tr = s.cfg.FlightRecorder.StartTrace(ctx, "service.scan")
		defer s.cfg.FlightRecorder.Record(tr)
	}
	tr.SetInt("input_bytes", len(input))
	startedAt := time.Now()

	tenant := TenantFromContext(ctx)
	if !s.quo.Allow(tenant) {
		s.sm.Admit(tenant, "quota")
		tr.SetStr("outcome", "quota")
		return nil, fmt.Errorf("bvap: tenant %q: %w", tenant, ErrQuotaExceeded)
	}
	key := inputKey(input)
	_, bsp := tracing.StartSpan(ctx, "breaker")
	allowed := s.brk.Allow(key)
	bsp.End()
	if !allowed {
		tr.SetStr("outcome", "quarantined")
		return nil, fmt.Errorf("bvap: input %s: %w", key, ErrQuarantined)
	}
	_, asp := tracing.StartSpan(ctx, "admission")
	release, err := s.adm.Acquire(ctx)
	asp.End()
	if err != nil {
		s.sm.Admit(tenant, admitOutcome(err))
		tr.SetStr("outcome", "shed")
		return nil, err
	}
	s.sm.Admit(tenant, "ok")
	defer release()

	g := s.gen.Load() // pin one generation for the whole scan
	e := g.Value
	tr.SetInt("generation", int(g.Seq))
	var ms []Match
	sctx, ssp := tracing.StartSpan(ctx, "scan")
	outcome, werr := serve.Watchdog(sctx, s.cfg.ScanTimeout, "service scan", s.sm, func(wctx context.Context) error {
		if hook := serviceScanHook; hook != nil {
			// Inside the watchdog context: a stalling hook exercises the
			// timeout classification deterministically.
			hook(input)
		}
		var serr error
		ms, serr = e.scanShardAttempt(wctx, input, Budget{}, 0)
		return serr
	})
	ssp.End()
	// scanShardAttempt contains its own panics (pool safety), so they
	// surface as ordinary errors; reclassify for the breaker and metrics.
	var pe *PanicError
	if outcome == serve.OutcomeError && errors.As(werr, &pe) {
		outcome = serve.OutcomePanic
		s.sm.Panic()
	}
	s.sm.Scan(outcome.String())
	tr.SetStr("outcome", outcome.String())
	tr.SetInt("matches", len(ms))
	trID := tr.IDString()
	s.sm.ScanDuration(time.Since(startedAt), trID)
	if est, ok := e.ScanEnergyEstimatePJ(len(input)); ok {
		tr.SetEnergyEstimate(est)
		s.sm.ScanEnergy(est, trID)
	}
	switch outcome {
	case serve.OutcomeOK:
		s.brk.Success(key)
		return ms, nil
	case serve.OutcomeTimeout, serve.OutcomePanic:
		if s.brk.Failure(key) {
			// Tripped: subsequent Scans of this input shed with
			// ErrQuarantined until the cooldown elapses.
		}
		return nil, werr
	default:
		// Caller cancellation or an engine error (e.g. budget): not the
		// input's fault.
		return ms, werr
	}
}

// ScanBatch runs Engine.ScanBatch on the served generation under admission
// control: the whole batch occupies one admission slot (its internal
// parallelism is bounded by opts.Workers, as without the service). Shed and
// drain errors are as in Scan; per-input errors are in the results.
func (s *Service) ScanBatch(ctx context.Context, inputs [][]byte, opts *BatchOptions) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tenant := TenantFromContext(ctx)
	if !s.quo.Allow(tenant) {
		s.sm.Admit(tenant, "quota")
		return nil, fmt.Errorf("bvap: tenant %q: %w", tenant, ErrQuotaExceeded)
	}
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		s.sm.Admit(tenant, admitOutcome(err))
		return nil, err
	}
	s.sm.Admit(tenant, "ok")
	defer release()
	return s.Engine().ScanBatch(ctx, inputs, opts)
}

// admitOutcome maps an admission error onto the MetricAdmits outcome label.
func admitOutcome(err error) string {
	if errors.Is(err, ErrDraining) {
		return "draining"
	}
	return "shed"
}

// Drain stops admitting work (new requests fail with ErrDraining), lets
// in-flight scans finish, and returns when they have — or when ctx expires,
// in which case it returns the context error with work still in flight.
// Drain is idempotent.
func (s *Service) Drain(ctx context.Context) error { return s.adm.Drain(ctx) }

// Close is Drain without a bound: it waits for in-flight scans to finish.
func (s *Service) Close() error { return s.adm.Drain(context.Background()) }

// SessionConfig tunes a streaming session.
type SessionConfig struct {
	// CheckpointInterval is the number of input symbols between automatic
	// checkpoints; values < 1 select 4096. Smaller intervals bound the
	// replay after a failure more tightly at the cost of more frequent
	// snapshot work.
	CheckpointInterval int
	// OnMatch, when non-nil, receives every committed match exactly once,
	// in stream order, with End as the absolute stream offset. Matches are
	// delivered only at checkpoint boundaries (commit points); matches
	// found after the last checkpoint of a failed Feed are discarded and
	// regenerated when the caller re-feeds from Pos().
	OnMatch func(Match)
}

// DefaultCheckpointInterval is the SessionConfig.CheckpointInterval when
// unset.
const DefaultCheckpointInterval = 4096

// StreamSession is a long-lived BVAP-S style streaming scan with
// checkpoint/resume and exactly-once match delivery. A session pins the
// generation it was opened on (a Reload does not disturb open sessions) and
// is owned by one goroutine at a time, like a Stream.
//
// Delivery contract: OnMatch sees each match exactly once provided the
// caller follows the resume protocol — after a Feed error, continue feeding
// from absolute offset Pos() (the session has rewound its matching state to
// the last checkpoint; the tail since then is replayed, regenerating
// exactly the reports that were never committed).
type StreamSession struct {
	svc      *Service
	eng      *Engine
	gen      uint64
	stream   *Stream
	interval int
	onMatch  func(Match)

	ck      *StreamCheckpoint // last committed checkpoint
	pending []Match           // found since ck, not yet delivered
	sinceCk int               // symbols consumed since ck
	closed  bool

	// tr is the trace of the Feed currently on the stack (sessions are
	// single-goroutine, so plain assignment suffices); commit hangs its
	// checkpoint span off it. Nil outside a traced Feed.
	tr *tracing.Trace
}

// NewSession opens a streaming session on the current generation.
func (s *Service) NewSession(cfg *SessionConfig) (*StreamSession, error) {
	if s.adm.Draining() {
		return nil, ErrDraining
	}
	gen := s.gen.Load()
	return s.newSession(gen.Value, gen.Seq, cfg)
}

func (s *Service) newSession(e *Engine, seq uint64, cfg *SessionConfig) (*StreamSession, error) {
	var c SessionConfig
	if cfg != nil {
		c = *cfg
	}
	if c.CheckpointInterval < 1 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	ss := &StreamSession{
		svc:      s,
		eng:      e,
		gen:      seq,
		stream:   e.NewStream(),
		interval: c.CheckpointInterval,
		onMatch:  c.OnMatch,
	}
	ss.ck = ss.stream.Checkpoint() // position 0
	return ss, nil
}

// Generation returns the generation sequence this session is pinned to.
func (ss *StreamSession) Generation() uint64 { return ss.gen }

// Pos returns the committed stream position: the absolute offset of the
// next symbol to feed after a failure (everything before it has been
// matched and its reports delivered; everything after it has been rewound).
func (ss *StreamSession) Pos() int64 { return ss.ck.Symbols() }

// Feed consumes the next chunk of the stream, starting at the session's
// current (uncommitted) position. It checkpoints and commits pending match
// reports every CheckpointInterval symbols. On error — cancellation, an
// exhausted budget, or a panic in the scan body (returned as *PanicError) —
// the session rewinds to its last checkpoint and discards undelivered
// matches; the caller resumes by feeding again from absolute offset Pos().
func (ss *StreamSession) Feed(ctx context.Context, chunk []byte) error {
	if ss.closed {
		return ErrDraining
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Same trace adoption as Service.Scan: ride the caller's trace, or
	// start one per Feed when the service has a flight recorder.
	tr := tracing.FromContext(ctx)
	if tr == nil && ss.svc.cfg.FlightRecorder != nil {
		ctx, tr = ss.svc.cfg.FlightRecorder.StartTrace(ctx, "session.feed")
		defer ss.svc.cfg.FlightRecorder.Record(tr)
	}
	tr.SetInt("chunk_bytes", len(chunk))
	tr.SetInt("generation", int(ss.gen))
	ss.tr = tr
	defer func() { ss.tr = nil }()
	if est, ok := ss.eng.ScanEnergyEstimatePJ(len(chunk)); ok {
		tr.SetEnergyEstimate(est)
	}
	off := 0
	for off < len(chunk) {
		n := ss.interval - ss.sinceCk
		if n > len(chunk)-off {
			n = len(chunk) - off
		}
		base := int(ss.stream.symbolsRun) // absolute offset of chunk[off]
		fctx, fsp := tracing.StartSpan(ctx, "feed")
		fsp.SetInt("base", base)
		fsp.SetInt("bytes", n)
		ms, err := ss.feedGuarded(fctx, chunk[off:off+n], base)
		if err != nil {
			// Rewind to the last commit point: uncommitted matches are
			// discarded (never delivered) and the matching state returns
			// to Pos(), so a replay regenerates them exactly once.
			fsp.SetStr("rewind", "restored_to_checkpoint")
			fsp.End()
			tr.SetStr("outcome", "rewind")
			tr.SetInt("rewind_pos", int(ss.ck.Symbols()))
			_ = ss.stream.Restore(ss.ck)
			ss.pending = ss.pending[:0]
			ss.sinceCk = 0
			ss.svc.sm.CheckpointAge(0)
			return err
		}
		fsp.SetInt("matches", len(ms))
		fsp.End()
		ss.pending = append(ss.pending, ms...)
		off += n
		ss.sinceCk += n
		if ss.sinceCk >= ss.interval {
			ss.commit()
		} else {
			ss.svc.sm.CheckpointAge(int64(ss.sinceCk))
		}
	}
	tr.SetStr("outcome", "ok")
	return nil
}

// feedGuarded scans one sub-interval with panic containment: a panic in the
// step loop becomes a *PanicError and the session's rewind-to-checkpoint
// recovery applies, instead of the panic unwinding through the caller.
func (ss *StreamSession) feedGuarded(ctx context.Context, data []byte, base int) (ms []Match, err error) {
	defer func() {
		if v := recover(); v != nil {
			ms = nil
			err = &PanicError{Op: "session feed", Value: v, Stack: debug.Stack()}
		}
	}()
	if hook := sessionFeedHook; hook != nil {
		// Inside the guarded region: a panicking hook exercises the
		// rewind-to-checkpoint recovery exactly where a step would fail.
		hook(base, data)
	}
	return ss.stream.scanContext(ctx, data, base)
}

// sessionFeedHook, when non-nil, runs before every guarded sub-interval
// scan with the sub-interval's absolute base offset — the test lever for
// mid-stream failure injection. Never set outside tests.
var sessionFeedHook func(base int, data []byte)

// commit takes a checkpoint and delivers the pending matches.
func (ss *StreamSession) commit() {
	sp := ss.tr.StartSpan("checkpoint")
	sp.SetInt("delivered", len(ss.pending))
	ss.ck = ss.stream.Checkpoint()
	sp.SetInt("position", int(ss.ck.Symbols()))
	if ss.onMatch != nil {
		for _, m := range ss.pending {
			ss.onMatch(m)
		}
	}
	ss.pending = ss.pending[:0]
	ss.sinceCk = 0
	ss.svc.sm.CheckpointTaken()
	sp.End()
}

// Checkpoint forces a commit boundary now — pending matches are delivered
// and the matching state snapshotted — and returns a resumable handle. The
// handle survives the session object: Service.ResumeSession rebuilds an
// equivalent session from it (same pinned generation, same position), which
// is how a stream outlives the goroutine — or the restart — that was
// feeding it.
func (ss *StreamSession) Checkpoint() *SessionCheckpoint {
	ss.commit()
	return &SessionCheckpoint{eng: ss.eng, gen: ss.gen, ck: ss.ck}
}

// Close ends the session, committing (and delivering) any pending matches.
func (ss *StreamSession) Close() {
	if ss.closed {
		return
	}
	if len(ss.pending) > 0 || ss.sinceCk > 0 {
		ss.commit()
	}
	ss.closed = true
}

// SessionCheckpoint is a resumable handle to a streaming session's
// committed state: the pinned engine generation and the matching state at
// the last commit point.
type SessionCheckpoint struct {
	eng *Engine
	gen uint64
	ck  *StreamCheckpoint
}

// Pos returns the absolute stream offset the checkpoint resumes from.
func (ck *SessionCheckpoint) Pos() int64 { return ck.ck.Symbols() }

// Generation returns the generation the checkpoint is pinned to.
func (ck *SessionCheckpoint) Generation() uint64 { return ck.gen }

// ResumeSession reopens a streaming session from a checkpoint: a fresh
// stream is restored to the checkpoint's matching state and position, on
// the checkpoint's pinned generation (even if the service has since
// reloaded past it). The caller feeds from ck.Pos(); reports before it were
// already delivered and are not regenerated.
func (s *Service) ResumeSession(ck *SessionCheckpoint, cfg *SessionConfig) (*StreamSession, error) {
	if ck == nil {
		return nil, fmt.Errorf("bvap: nil session checkpoint")
	}
	if s.adm.Draining() {
		return nil, ErrDraining
	}
	ss, err := s.newSession(ck.eng, ck.gen, cfg)
	if err != nil {
		return nil, err
	}
	if err := ss.stream.Restore(ck.ck); err != nil {
		return nil, err
	}
	ss.ck = ck.ck
	return ss, nil
}
