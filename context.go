package bvap

// Context- and budget-aware entry points. The plain APIs (Compile, FindAll,
// Simulator.Run) stay untouched for callers that don't need cancellation;
// these variants thread a context.Context and resource budgets through the
// compile and simulation pipelines, checking at pattern/chunk granularity
// so cancellation is prompt without per-symbol overhead.

import (
	"context"
	"fmt"

	"bvap/internal/compiler"
)

// runChunkSymbols is the cancellation granularity of the chunked run loops:
// contexts and budgets are checked every chunk, so a cancel is honored
// within one chunk's worth of simulated symbols.
const runChunkSymbols = 1024

// CompileContext is Compile with cancellation: ctx is checked between
// patterns and before tile mapping, so a canceled or expired context stops
// compilation promptly with the context's error (wrapped; test with
// errors.Is(err, context.Canceled) / context.DeadlineExceeded). Combine
// with WithBudget to cap the total STEs the pattern set may allocate.
func CompileContext(ctx context.Context, patterns []string, opts ...Option) (*Engine, error) {
	copt := compiler.DefaultOptions()
	for _, o := range opts {
		o(&copt)
	}
	copt.Ctx = ctx
	res, err := compiler.Compile(patterns, copt)
	if err != nil {
		return nil, err
	}
	return newEngine(res, patterns), nil
}

// PatternErrors returns one typed *PatternError per pattern that failed to
// compile, in pattern order. Supported patterns contribute nothing. The
// errors unwrap to the ErrSyntax / ErrUnsupported / ErrBudget sentinels.
func (e *Engine) PatternErrors() []error {
	var out []error
	for i, pr := range e.res.Report.PerRegex {
		if pr.Supported {
			continue
		}
		kind := pr.Kind
		if kind == "" {
			kind = compiler.KindCapacity
		}
		out = append(out, &PatternError{
			Index:   i,
			Pattern: pr.Pattern,
			Kind:    kind,
			Reason:  pr.Reason,
		})
	}
	return out
}

// FindAllContext is FindAll with cancellation: the scan checks ctx every
// runChunkSymbols input bytes and returns the matches found so far together
// with the wrapped context error when canceled.
func (e *Engine) FindAllContext(ctx context.Context, input []byte) ([]Match, error) {
	s := e.NewStream()
	return s.scanContext(ctx, input, 0)
}

// SetBudget applies a run-time resource budget to this stream: ScanContext
// stops with a *BudgetError once MaxSymbols input bytes have been consumed.
// Consumption is cumulative across ScanContext calls until Reset, which
// restores the full allowance (the limit itself survives Reset) — so a
// pooled stream gives every input a fresh budget while a long-lived stream
// can still meter one logical input across several calls.
func (s *Stream) SetBudget(b Budget) { s.budget = b }

// ScanContext consumes input incrementally, returning every match (offsets
// relative to this call's input) and stopping early on context cancellation
// or an exhausted symbol budget. Partial results are returned alongside the
// error.
func (s *Stream) ScanContext(ctx context.Context, input []byte) ([]Match, error) {
	return s.scanContext(ctx, input, 0)
}

func (s *Stream) scanContext(ctx context.Context, input []byte, base int) ([]Match, error) {
	var out []Match
	for off := 0; off < len(input); {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("bvap: scan canceled at offset %d: %w", base+off, err)
		}
		end := off + runChunkSymbols
		if end > len(input) {
			end = len(input)
		}
		if s.budget.MaxSymbols > 0 {
			remaining := s.budget.MaxSymbols - s.symbolsRun
			if remaining <= 0 {
				return out, &BudgetError{Resource: "symbols",
					Limit: s.budget.MaxSymbols, Used: s.symbolsRun}
			}
			if int64(end-off) > remaining {
				end = off + int(remaining)
			}
		}
		for i := off; i < end; i++ {
			for _, p := range s.Step(input[i]) {
				out = append(out, Match{Pattern: p, End: base + i})
			}
		}
		s.symbolsRun += int64(end - off)
		off = end
	}
	return out, nil
}

// SetBudget applies a run-time resource budget to this simulator:
// RunContext stops with a *BudgetError once MaxSymbols input bytes have
// been simulated (cumulative across calls).
func (s *Simulator) SetBudget(b Budget) { s.budget = b }

// RunContext is Run with cancellation and budgets: the simulation advances
// in runChunkSymbols chunks, checking ctx (including deadlines) and the
// symbol budget between chunks. Statistics accumulated before the stop are
// retained, so a partial Result is still meaningful.
func (s *Simulator) RunContext(ctx context.Context, input []byte) error {
	for off := 0; off < len(input); {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("bvap: simulation canceled at offset %d: %w", off, err)
		}
		end := off + runChunkSymbols
		if end > len(input) {
			end = len(input)
		}
		if s.budget.MaxSymbols > 0 {
			remaining := s.budget.MaxSymbols - s.symbolsRun
			if remaining <= 0 {
				return &BudgetError{Resource: "symbols",
					Limit: s.budget.MaxSymbols, Used: s.symbolsRun}
			}
			if int64(end-off) > remaining {
				end = off + int(remaining)
			}
		}
		s.Run(input[off:end])
		s.symbolsRun += int64(end - off)
		off = end
	}
	return nil
}
