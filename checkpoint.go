package bvap

// BVAP-S checkpoint/resume. A long-lived stream (the §6 direct-sensor
// scenario) cannot afford to rescan from byte zero after an interruption, so
// the execution state that determines future matches — the active frontier,
// the BV contents of every active counting state, and the symbol cursor —
// can be snapshotted and restored:
//
//   - Stream.Checkpoint / Stream.Restore capture the software engine's
//     state. A checkpoint is tied to its Engine (not to one Stream), so it
//     can restore onto any stream of the same compiled set — including a
//     freshly built one, which is how a restarted process resumes;
//   - Simulator.Checkpoint / Simulator.Restore do the same for the
//     cycle-accurate model, reusing the rewind surface the fault-injection
//     harness already exercises. Monotone statistics (energy, cycles) are
//     never rewound: rolled-back work stays charged, which is the measured
//     cost of recovery.
//
// The Service layer builds exactly-once delivery on top: StreamSession (see
// service.go) commits match reports only at checkpoint boundaries, so a
// resume after a mid-interval failure replays the uncommitted tail and
// regenerates exactly the reports that were never delivered.

import (
	"fmt"

	"bvap/internal/nbva"
)

// StreamCheckpoint is an immutable snapshot of a Stream's matching state:
// per-machine active frontiers and BV vectors plus the cumulative symbol
// count. It stays valid across later Steps and may be restored repeatedly,
// onto the original stream or any other stream of the same Engine.
type StreamCheckpoint struct {
	engine  *Engine
	snaps   []*nbva.RunnerSnapshot
	symbols int64
}

// Symbols returns the cumulative symbols the stream had consumed (since its
// last Reset) when the checkpoint was taken — the report cursor a resuming
// caller feeds from.
func (ck *StreamCheckpoint) Symbols() int64 { return ck.symbols }

// Checkpoint captures the stream's current matching state.
func (s *Stream) Checkpoint() *StreamCheckpoint {
	ck := &StreamCheckpoint{engine: s.engine, symbols: s.symbolsRun}
	ck.snaps = make([]*nbva.RunnerSnapshot, len(s.runners))
	for i, r := range s.runners {
		if r != nil {
			ck.snaps[i] = r.Snapshot()
		}
	}
	return ck
}

// Restore rewinds the stream to a checkpoint taken on any stream of the
// same Engine. The stream's budget limit is configuration and survives;
// consumed symbols rewind to the checkpoint's cursor so budget accounting
// resumes consistently. Restoring a checkpoint from a different Engine is a
// programmer error and is rejected.
func (s *Stream) Restore(ck *StreamCheckpoint) error {
	if ck == nil || ck.engine != s.engine {
		return fmt.Errorf("bvap: checkpoint belongs to a different engine")
	}
	for i, r := range s.runners {
		if r != nil && ck.snaps[i] != nil {
			r.Restore(ck.snaps[i])
		}
	}
	s.symbolsRun = ck.symbols
	return nil
}

// SimCheckpoint is an immutable snapshot of a BVAP/BVAP-S simulator's
// functional state (runner frontiers, BV contents, stream position, match
// cursors, I/O occupancies). It is tied to the simulator it was taken on.
type SimCheckpoint struct {
	sim     *Simulator
	inner   any // faults.Checkpoint; kept opaque
	symbols int64
}

// Checkpoint captures the simulator's functional state. Only the BVAP and
// BVAP-S models support checkpointing; the unfolding baselines do not model
// a resumable stream and return an error.
func (s *Simulator) Checkpoint() (*SimCheckpoint, error) {
	if s.bvapSys == nil {
		return nil, fmt.Errorf("bvap: %v simulators do not support checkpointing (BVAP and BVAP-S only)", s.arch)
	}
	return &SimCheckpoint{sim: s, inner: s.bvapSys.Checkpoint(), symbols: s.symbolsRun}, nil
}

// Restore rewinds the simulator's functional state to a checkpoint taken on
// it. Accumulated statistics (energy, cycles, symbols) are not rewound —
// discarded work stays on the meter. Restoring another simulator's
// checkpoint is rejected.
func (s *Simulator) Restore(ck *SimCheckpoint) error {
	if ck == nil || ck.sim != s {
		return fmt.Errorf("bvap: checkpoint belongs to a different simulator")
	}
	s.bvapSys.Restore(ck.inner)
	s.symbolsRun = ck.symbols
	return nil
}
