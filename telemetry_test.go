package bvap

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"bvap/internal/hwsim"
	"bvap/internal/telemetry"
)

// TestArchitectureRoundTrip is the satellite round-trip test: parsing the
// String() form of every architecture yields the architecture back.
func TestArchitectureRoundTrip(t *testing.T) {
	if len(Architectures()) != 6 {
		t.Fatalf("Architectures() = %d entries, want 6", len(Architectures()))
	}
	for _, a := range Architectures() {
		got, err := ParseArchitecture(a.String())
		if err != nil {
			t.Errorf("ParseArchitecture(%q): %v", a.String(), err)
			continue
		}
		if got != a {
			t.Errorf("ParseArchitecture(%q) = %v, want %v", a.String(), got, a)
		}
		// Case-insensitive.
		if got, err := ParseArchitecture(strings.ToUpper(a.String())); err != nil || got != a {
			t.Errorf("ParseArchitecture(upper %q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArchitecture("tpu"); err == nil {
		t.Error("unknown architecture accepted")
	}
}

// telemetryWorkload builds a small but stage-diverse workload: bounded
// repetitions (BVM read/swap traffic), an unfold-threshold pattern, and a
// split pattern whose bound exceeds K.
func telemetryWorkload(t *testing.T) ([]string, []byte) {
	t.Helper()
	patterns := []string{"ab{50}c", "x.{10}y", "a{3}b", "k{200}m"}
	d, err := DatasetByName("Snort")
	if err != nil {
		t.Fatal(err)
	}
	return patterns, d.Input(16384, patterns)
}

// TestStageEnergyConservation is the acceptance-criterion test: the
// per-stage energies streamed into a TelemetrySink must sum to the
// simulator's terminal Stats.TotalEnergyPJ() within 0.1%, and the sink's
// symbol/cycle/match counters must equal the Result's.
func TestStageEnergyConservation(t *testing.T) {
	patterns, input := telemetryWorkload(t)
	for _, arch := range Architectures() {
		t.Run(arch.String(), func(t *testing.T) {
			var sim *Simulator
			var err error
			switch arch {
			case ArchBVAP, ArchBVAPStreaming:
				engine, cerr := Compile(patterns)
				if cerr != nil {
					t.Fatal(cerr)
				}
				sim, err = engine.NewSimulator(arch)
			default:
				sim, err = NewBaselineSimulator(arch, patterns)
			}
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			sink := sim.Instrument(reg)
			sim.Run(input)
			r := sim.Result()

			var totalPJ float64
			if sim.bvapSys != nil {
				totalPJ = sim.bvapSys.Stats().TotalEnergyPJ()
			} else {
				totalPJ = sim.baseSys.Stats().TotalEnergyPJ()
			}
			stagePJ := sink.TotalStageEnergyPJ()
			if totalPJ <= 0 {
				t.Fatalf("no energy recorded (total = %v)", totalPJ)
			}
			if rel := math.Abs(stagePJ-totalPJ) / totalPJ; rel > 0.001 {
				t.Errorf("stage sum %.6f pJ vs total %.6f pJ (rel err %.5f > 0.1%%)",
					stagePJ, totalPJ, rel)
			}

			// The sink's step counters agree with the Result.
			snap := map[string]telemetry.Sample{}
			for _, s := range reg.Snapshot() {
				if len(s.Labels) == 0 {
					snap[s.Name] = s
				}
			}
			for name, want := range map[string]uint64{
				hwsim.MetricSymbols: r.Symbols,
				hwsim.MetricCycles:  r.Cycles,
				hwsim.MetricMatches: r.Matches,
			} {
				s, ok := snap[name]
				if !ok {
					t.Fatalf("metric %s missing from snapshot", name)
				}
				if uint64(s.Value) != want {
					t.Errorf("%s = %v, want %d", name, s.Value, want)
				}
			}
			if r.Matches == 0 {
				t.Error("workload produced no matches; conservation test is too weak")
			}
		})
	}
}

// TestSimulatorSinkRepeatedFinish pins the delta-reporting contract: the
// terminal stages (io_buffer, leakage) are reported to the sink as deltas,
// so repeated Finish calls keep the sink's stage totals consistent with
// Stats.TotalEnergyPJ() instead of double-charging.
func TestSimulatorSinkRepeatedFinish(t *testing.T) {
	patterns, input := telemetryWorkload(t)
	engine, err := Compile(patterns)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := engine.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sink := sim.Instrument(reg)
	sim.Run(input)
	for i := 0; i < 3; i++ {
		sim.bvapSys.Finish()
		total := sim.bvapSys.Stats().TotalEnergyPJ()
		stage := sink.TotalStageEnergyPJ()
		if rel := math.Abs(stage-total) / total; rel > 0.001 {
			t.Fatalf("after Finish #%d: stage sum %.6f vs total %.6f (rel err %.5f)",
				i+1, stage, total, rel)
		}
	}
}

// TestCompileTelemetry exercises WithMetrics and WithTracer end to end:
// phase counters and rewrite decisions accrue, and the emitted Chrome trace
// is valid JSON with the pipeline's phase spans.
func TestCompileTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf, telemetry.FormatChrome)
	patterns := []string{"ab{50}c", "a{3}b", "k{200}m", "(unclosed"}
	if _, err := Compile(patterns, WithMetrics(reg), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	byName := map[string]telemetry.Sample{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		for _, v := range s.Labels {
			key += "/" + v
		}
		byName[key] = s
	}
	if got := byName["bvap_compile_patterns_total"].Value; got != 4 {
		t.Errorf("patterns_total = %v, want 4", got)
	}
	if got := byName["bvap_compile_unsupported_total"].Value; got != 1 {
		t.Errorf("unsupported_total = %v, want 1", got)
	}
	// a{3}b is below the default unfold threshold (8); k{200}m exceeds the
	// default K (64) and splits; ab{50}c and k{200}m keep BV-STEs.
	if got := byName["bvap_compile_rewrite_total/unfold"].Value; got < 1 {
		t.Errorf("unfold decisions = %v, want >= 1", got)
	}
	if got := byName["bvap_compile_rewrite_total/split"].Value; got < 1 {
		t.Errorf("split decisions = %v, want >= 1", got)
	}
	if got := byName["bvap_compile_rewrite_total/counted"].Value; got < 1 {
		t.Errorf("counted decisions = %v, want >= 1", got)
	}
	// Every phase accrued wall time.
	for _, phase := range []string{"parse", "rewrite", "glushkov", "ah", "instruction-selection", "tile-mapping"} {
		s, ok := byName["bvap_compile_phase_seconds_total/"+phase]
		if !ok {
			t.Errorf("phase %q missing", phase)
			continue
		}
		if s.Value < 0 {
			t.Errorf("phase %q seconds = %v", phase, s.Value)
		}
	}

	raw := buf.Bytes()
	if !json.Valid(raw) {
		t.Fatalf("invalid compile trace: %s", raw)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"parse", "rewrite", "glushkov", "ah", "instruction-selection", "tile-mapping", "rewrite_decision", "tile_mapping"} {
		if !seen[want] {
			t.Errorf("compile trace missing %q event", want)
		}
	}
}

// TestStreamInstrument checks the engine-level counters: symbols, matches
// and the occupancy gauge accrue on an instrumented stream and match an
// uninstrumented reference run.
func TestStreamInstrument(t *testing.T) {
	patterns, input := telemetryWorkload(t)
	engine, err := Compile(patterns)
	if err != nil {
		t.Fatal(err)
	}
	wantMatches := engine.Count(input)

	reg := telemetry.NewRegistry()
	s := engine.NewStream()
	s.Instrument(reg)
	got := 0
	for _, b := range input {
		got += len(s.Step(b))
	}
	if got != wantMatches {
		t.Fatalf("instrumented stream found %d matches, reference %d", got, wantMatches)
	}
	byName := map[string]float64{}
	for _, smp := range reg.Snapshot() {
		byName[smp.Name] = smp.Value
	}
	if v := byName[MetricEngineSymbols]; v != float64(len(input)) {
		t.Errorf("%s = %v, want %d", MetricEngineSymbols, v, len(input))
	}
	if v := byName[MetricEngineMatches]; v != float64(wantMatches) {
		t.Errorf("%s = %v, want %d", MetricEngineMatches, v, wantMatches)
	}
	if _, ok := byName[MetricEngineActiveStates]; !ok {
		t.Errorf("%s missing", MetricEngineActiveStates)
	}
	// Detach and keep stepping: counters freeze.
	s.Instrument(nil)
	s.Step('a')
	after := telemetry.Sample{}
	for _, smp := range reg.Snapshot() {
		if smp.Name == MetricEngineSymbols {
			after = smp
		}
	}
	if after.Value != float64(len(input)) {
		t.Errorf("detached stream still counting: %v", after.Value)
	}
}
