package bvap

import (
	"testing"

	"bvap/internal/hwsim"
	"bvap/internal/telemetry"
)

// BenchmarkTelemetryOverhead pins the zero-overhead-when-disabled contract:
// the uninstrumented hot paths (Stream.Step with no registry, the simulator
// Step with a nil sink) must allocate nothing and stay within a few percent
// of the seed, while the instrumented variants quantify what an attached
// registry costs. Numbers are recorded in EXPERIMENTS.md.
func BenchmarkTelemetryOverhead(b *testing.B) {
	patterns := []string{"ab{50}c", "x.{10}y", "a{3}b", "k{200}m"}
	d, err := DatasetByName("Snort")
	if err != nil {
		b.Fatal(err)
	}
	input := d.Input(4096, patterns)
	engine, err := Compile(patterns)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("EngineStep/nosink", func(b *testing.B) {
		s := engine.NewStream()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(input[i%len(input)])
		}
	})
	b.Run("EngineStep/registry", func(b *testing.B) {
		s := engine.NewStream()
		s.Instrument(telemetry.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(input[i%len(input)])
		}
	})

	newSys := func(b *testing.B) *hwsim.BVAPSystem {
		sim, err := engine.NewSimulator(ArchBVAP)
		if err != nil {
			b.Fatal(err)
		}
		return sim.bvapSys
	}
	b.Run("BVAPSystemStep/nosink", func(b *testing.B) {
		sys := newSys(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
	b.Run("BVAPSystemStep/sink", func(b *testing.B) {
		sys := newSys(b)
		sys.SetSink(hwsim.NewTelemetrySink(telemetry.NewRegistry()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
}
