package bvap

import (
	"testing"

	"bvap/internal/hwsim"
	"bvap/internal/profile"
	"bvap/internal/telemetry"
)

// BenchmarkTelemetryOverhead pins the zero-overhead-when-disabled contract:
// the uninstrumented hot paths (Stream.Step with no registry, the simulator
// Step with a nil sink) must allocate nothing and stay within a few percent
// of the seed, while the instrumented variants quantify what an attached
// registry costs. Numbers are recorded in EXPERIMENTS.md.
func BenchmarkTelemetryOverhead(b *testing.B) {
	patterns := []string{"ab{50}c", "x.{10}y", "a{3}b", "k{200}m"}
	d, err := DatasetByName("Snort")
	if err != nil {
		b.Fatal(err)
	}
	input := d.Input(4096, patterns)
	engine, err := Compile(patterns)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("EngineStep/nosink", func(b *testing.B) {
		s := engine.NewStream()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(input[i%len(input)])
		}
	})
	b.Run("EngineStep/registry", func(b *testing.B) {
		s := engine.NewStream()
		s.Instrument(telemetry.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(input[i%len(input)])
		}
	})

	newSys := func(b *testing.B) *hwsim.BVAPSystem {
		sim, err := engine.NewSimulator(ArchBVAP)
		if err != nil {
			b.Fatal(err)
		}
		return sim.bvapSys
	}
	b.Run("BVAPSystemStep/nosink", func(b *testing.B) {
		sys := newSys(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
	b.Run("BVAPSystemStep/sink", func(b *testing.B) {
		sys := newSys(b)
		sys.SetSink(hwsim.NewTelemetrySink(telemetry.NewRegistry()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
	b.Run("BVAPSystemStep/profiler", func(b *testing.B) {
		sim, err := engine.NewSimulator(ArchBVAP)
		if err != nil {
			b.Fatal(err)
		}
		sim.Profile(profile.Options{})
		sys := sim.bvapSys
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
	b.Run("BVAPSystemStep/profiler+sink", func(b *testing.B) {
		sim, err := engine.NewSimulator(ArchBVAP)
		if err != nil {
			b.Fatal(err)
		}
		p := profile.New(engine.res.Config, profile.Options{})
		sim.SetSink(hwsim.FanOut(p, hwsim.NewTelemetrySink(telemetry.NewRegistry())))
		sys := sim.bvapSys
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Step(input[i%len(input)])
		}
	})
}

// TestUninstrumentedStepAllocationFree enforces the acceptance criterion of
// the profiler work: with no profiler (or any sink) attached, the hwsim hot
// path allocates zero bytes per symbol. The provenance emission sites added
// for the profiler must stay behind their nil checks. A warm-up run lets
// scratch buffers (active lists, report FIFOs) reach steady state first.
func TestUninstrumentedStepAllocationFree(t *testing.T) {
	patterns := []string{"ab{50}c", "x.{10}y", "a{3}b", "k{200}m"}
	d, err := DatasetByName("Snort")
	if err != nil {
		t.Fatal(err)
	}
	input := d.Input(4096, patterns)

	engine, err := Compile(patterns)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := engine.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.bvapSys
	sys.Run(input) // warm up scratch buffers
	if avg := testing.AllocsPerRun(10, func() {
		for _, c := range input[:512] {
			sys.Step(c)
		}
	}); avg != 0 {
		t.Fatalf("uninstrumented BVAP Step allocated %.2f times per 512 symbols, want 0", avg)
	}

	base, err := NewBaselineSimulator(ArchCAMA, patterns)
	if err != nil {
		t.Fatal(err)
	}
	bsys := base.baseSys
	bsys.Run(input)
	if avg := testing.AllocsPerRun(10, func() {
		for _, c := range input[:512] {
			bsys.Step(c)
		}
	}); avg != 0 {
		t.Fatalf("uninstrumented baseline Step allocated %.2f times per 512 symbols, want 0", avg)
	}
}
