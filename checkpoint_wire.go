package bvap

// The wire form of a session checkpoint — the migration currency of the
// clustered service. SessionCheckpoint.MarshalBinary serializes a
// committed streaming position into a self-validating byte string;
// Service.DecodeSessionCheckpoint / ResumeSessionBytes reconstruct an
// equivalent session in another process, as long as that process serves
// (or retains; see ServiceConfig.RetainGenerations) an engine with the
// same fingerprint — i.e. compiled from the same pattern set with the
// same parameters. Together with the session layer's commit-at-checkpoint
// delivery, this is what lets an in-flight BVAP-S stream checkpoint on one
// node and resume on another with byte-identical, exactly-once match
// reports.
//
// Layout (little-endian):
//
//	[4]  magic "BVCK"
//	u8   version (1)
//	u64  engine fingerprint
//	u64  pinned generation sequence
//	u64  committed symbol position
//	u32  machine count
//	per machine: u8 presence, then the runner snapshot wire
//	             (internal/nbva) when present
//	u64  FNV-64a checksum over everything above
//
// Decoding trusts nothing: the checksum gates all parsing of variable-
// length content, the fingerprint must resolve to a live or retained
// engine, the machine count must equal that engine's, presence bits must
// match the engine's supported set, and every snapshot is re-validated
// against its machine (bounds, widths, liveness) with occupancy counters
// recomputed rather than read. A corrupt byte string fails with
// ErrCheckpointCorrupt; a fingerprint this service cannot serve fails
// with ErrCheckpointStale.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"bvap/internal/nbva"
)

var (
	// ErrCheckpointCorrupt marks a wire session checkpoint that failed
	// structural validation: bad magic, unknown version, checksum
	// mismatch, truncation, or snapshot content the pinned engine's
	// machines could never reach. The checkpoint cannot be resumed.
	ErrCheckpointCorrupt = errors.New("session checkpoint corrupt")
	// ErrCheckpointStale marks a structurally valid wire checkpoint whose
	// engine fingerprint this service neither serves nor retains — the
	// fleet reloaded to a semantically different pattern set since the
	// checkpoint was taken, or the retention window
	// (ServiceConfig.RetainGenerations) has passed. The stream must be
	// restarted rather than resumed.
	ErrCheckpointStale = errors.New("session checkpoint stale: engine fingerprint not served or retained")
)

// checkpointWireMagic and checkpointWireVersion frame the wire form.
const (
	checkpointWireMagic   = "BVCK"
	checkpointWireVersion = 1
)

// MarshalBinary serializes the checkpoint for migration or durable
// storage. The result embeds the engine fingerprint, the committed
// position, every machine's runner snapshot and a trailing checksum; it is
// self-contained and remains decodable by any Service whose served or
// retained engine set includes the fingerprint.
func (ck *SessionCheckpoint) MarshalBinary() ([]byte, error) {
	e := ck.eng
	machines := e.res.Machines
	if len(ck.ck.snaps) != len(machines) {
		return nil, fmt.Errorf("bvap: checkpoint has %d snapshots for %d machines", len(ck.ck.snaps), len(machines))
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, checkpointWireMagic...)
	buf = append(buf, checkpointWireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, e.Fingerprint())
	buf = binary.LittleEndian.AppendUint64(buf, ck.gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.ck.symbols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(machines)))
	for i, snap := range ck.ck.snaps {
		if snap == nil {
			buf = append(buf, 0)
			continue
		}
		if machines[i] == nil {
			return nil, fmt.Errorf("bvap: checkpoint has a snapshot for unsupported machine %d", i)
		}
		buf = append(buf, 1)
		var err error
		buf, err = snap.AppendWire(buf, machines[i])
		if err != nil {
			return nil, fmt.Errorf("bvap: encoding snapshot of machine %d: %w", i, err)
		}
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64()), nil
}

// DecodeSessionCheckpoint reconstructs a resumable session checkpoint from
// its wire form, binding it to this service's engine with the matching
// fingerprint. Errors unwrap to ErrCheckpointCorrupt (structural damage)
// or ErrCheckpointStale (unknown fingerprint).
func (s *Service) DecodeSessionCheckpoint(data []byte) (*SessionCheckpoint, error) {
	const header = 4 + 1 + 8 + 8 + 8 + 4
	if len(data) < header+8 {
		return nil, fmt.Errorf("bvap: %w: %d bytes is shorter than any checkpoint", ErrCheckpointCorrupt, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("bvap: %w: checksum mismatch", ErrCheckpointCorrupt)
	}
	if string(body[:4]) != checkpointWireMagic {
		return nil, fmt.Errorf("bvap: %w: bad magic %q", ErrCheckpointCorrupt, body[:4])
	}
	if body[4] != checkpointWireVersion {
		return nil, fmt.Errorf("bvap: %w: unknown version %d", ErrCheckpointCorrupt, body[4])
	}
	fp := binary.LittleEndian.Uint64(body[5:])
	gen := binary.LittleEndian.Uint64(body[13:])
	symbols := int64(binary.LittleEndian.Uint64(body[21:]))
	nmach := int(binary.LittleEndian.Uint32(body[29:]))
	if symbols < 0 {
		return nil, fmt.Errorf("bvap: %w: negative symbol position", ErrCheckpointCorrupt)
	}
	e := s.engineByFingerprint(fp)
	if e == nil {
		return nil, fmt.Errorf("bvap: %w (fingerprint %016x)", ErrCheckpointStale, fp)
	}
	machines := e.res.Machines
	if nmach != len(machines) {
		return nil, fmt.Errorf("bvap: %w: %d machines on the wire, engine has %d", ErrCheckpointCorrupt, nmach, len(machines))
	}
	rest := body[header:]
	snaps := make([]*nbva.RunnerSnapshot, nmach)
	for i := 0; i < nmach; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("bvap: %w: truncated before machine %d", ErrCheckpointCorrupt, i)
		}
		presence := rest[0]
		rest = rest[1:]
		switch presence {
		case 0:
			if machines[i] != nil {
				return nil, fmt.Errorf("bvap: %w: no snapshot for supported machine %d", ErrCheckpointCorrupt, i)
			}
		case 1:
			if machines[i] == nil {
				return nil, fmt.Errorf("bvap: %w: snapshot present for unsupported machine %d", ErrCheckpointCorrupt, i)
			}
			snap, r, err := nbva.DecodeRunnerSnapshotWire(rest, machines[i])
			if err != nil {
				return nil, fmt.Errorf("bvap: %w: machine %d: %v", ErrCheckpointCorrupt, i, err)
			}
			snaps[i], rest = snap, r
		default:
			return nil, fmt.Errorf("bvap: %w: presence byte %d for machine %d", ErrCheckpointCorrupt, presence, i)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bvap: %w: %d trailing bytes", ErrCheckpointCorrupt, len(rest))
	}
	return &SessionCheckpoint{
		eng: e,
		gen: gen,
		ck:  &StreamCheckpoint{engine: e, snaps: snaps, symbols: symbols},
	}, nil
}

// ResumeSessionBytes is ResumeSession from the wire form: decode (checksum,
// fingerprint resolution, snapshot validation), then reopen a session at
// the checkpoint's committed position. This is the receiving half of a
// live migration — the sending node ships ck.MarshalBinary() and its
// delivered-match cursor; the receiver resumes here and feeds from Pos().
func (s *Service) ResumeSessionBytes(data []byte, cfg *SessionConfig) (*StreamSession, error) {
	ck, err := s.DecodeSessionCheckpoint(data)
	if err != nil {
		return nil, err
	}
	return s.ResumeSession(ck, cfg)
}
