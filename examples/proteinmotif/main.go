// proteinmotif searches protein sequences for PROSITE-style motifs — the
// bioinformatics workload of the paper's evaluation. PROSITE patterns are
// dominated by small bounded repetitions over amino-acid classes (the
// zinc-finger motif below is C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H in
// PROSITE notation), which is why counting support matters for this domain.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bvap"
)

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func main() {
	motifs := []string{
		// C2H2 zinc finger.
		"C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H",
		// N-glycosylation site: N-{P}-[ST]-{P}.
		"N[^P][ST][^P]",
		// EF-hand calcium-binding loop (simplified).
		"D.{2}[DNS][ILVFYW].{4}[DE]",
	}
	engine, err := bvap.Compile(motifs, bvap.WithBVSize(16), bvap.WithUnfoldThreshold(4))
	if err != nil {
		log.Fatal(err)
	}

	sequence := syntheticProteome(200_000, 7)
	plantZincFinger(sequence, 1500)

	counts := make([]int, len(motifs))
	stream := engine.NewStream()
	for _, b := range sequence {
		for _, m := range stream.Step(b) {
			counts[m]++
		}
	}

	fmt.Printf("scanned a %d-residue synthetic proteome\n\n", len(sequence))
	for i, motif := range motifs {
		fmt.Printf("  motif %-40q hit %5d sites\n", motif, counts[i])
	}

	rep := engine.Report()
	fmt.Printf("\nhardware: %d STEs (%d BV-STEs); PROSITE bounds are small, so the\n"+
		"best Table 5 parameters use a 16-bit virtual BV and unfold threshold 4\n",
		rep.TotalSTEs, rep.TotalBVSTEs)
}

// syntheticProteome draws residues with a mild hydrophobic bias.
func syntheticProteome(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = aminoAcids[r.Intn(len(aminoAcids))]
	}
	return seq
}

// plantZincFinger inserts genuine C2H2 motifs so the scan has true
// positives.
func plantZincFinger(seq []byte, every int) {
	motif := []byte("CAACAAACLAAAAAAAAHAAAH")
	for pos := every; pos+len(motif) < len(seq); pos += every {
		copy(seq[pos:], motif)
	}
}
