// snortids simulates the paper's flagship use case: network intrusion
// detection with Snort-style rules, which lean heavily on bounded
// repetitions (e.g. url=.{8000}). It compiles a synthetic Snort rule set,
// scans generated traffic on the BVAP cycle model and on the CAMA, eAP and
// CA baselines, and prints the energy/area/throughput comparison.
package main

import (
	"fmt"
	"log"

	"bvap"
)

func main() {
	snort, err := bvap.DatasetByName("Snort")
	if err != nil {
		log.Fatal(err)
	}
	rules := snort.Patterns(120)
	traffic := snort.Input(64<<10, rules)
	fmt.Printf("scanning %d KiB of traffic against %d Snort-style rules\n\n",
		len(traffic)>>10, len(rules))

	// BVAP.
	engine, err := bvap.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	rep := engine.Report()
	unfolded := 0
	for _, p := range rep.Patterns {
		unfolded += p.UnfoldedSTEs
	}
	fmt.Printf("BVAP image: %d STEs (%d BV-STEs) on %d tiles; unfolding would need %d STEs\n\n",
		rep.TotalSTEs, rep.TotalBVSTEs, rep.Tiles, unfolded)

	sim, err := engine.NewSimulator(bvap.ArchBVAP)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(traffic)
	results := []bvap.Result{sim.Result()}

	for _, arch := range []bvap.Architecture{bvap.ArchCAMA, bvap.ArchEAP, bvap.ArchCA} {
		base, err := bvap.NewBaselineSimulator(arch, rules)
		if err != nil {
			log.Fatal(err)
		}
		base.Run(traffic)
		results = append(results, base.Result())
	}

	fmt.Printf("%-8s %12s %10s %10s %14s %10s\n",
		"arch", "nJ/byte", "mm²", "Gbps", "Gbps/mm²", "alerts")
	for _, r := range results {
		fmt.Printf("%-8s %12.4f %10.3f %10.2f %14.2f %10d\n",
			r.Architecture, r.EnergyPerSymbolNJ, r.AreaMm2,
			r.ThroughputGbps, r.ComputeDensityGbpsPerMm2, r.Matches)
	}

	bvapRes, camaRes := results[0], results[1]
	fmt.Printf("\nBVAP vs CAMA: %.0f%% less energy, %.0f%% less area\n",
		(1-bvapRes.EnergyPerSymbolNJ/camaRes.EnergyPerSymbolNJ)*100,
		(1-bvapRes.AreaMm2/camaRes.AreaMm2)*100)
}
