// streaming demonstrates BVAP-S (§6), the constant-throughput mode for
// direct sensor connection: the Bit Vector Module runs on every symbol, the
// system clock drops, and the matching/transition circuits run at a lower
// supply voltage. The example compares BVAP and BVAP-S on the same
// edge-monitoring workload and prints the energy/throughput trade.
//
// The second half runs the same feed through the long-lived service layer:
// a checkpointed stream session is "crashed" mid-feed and resumed from its
// last checkpoint with no lost or duplicated detections, then the pattern
// set is hot-reloaded under the session's feet without disturbing it.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"os"

	"bvap"
	"bvap/internal/tracing"
)

// logger carries the example's structured log output; the service demo
// attaches trace_id / generation / outcome fields to its lifecycle lines
// the way a deployed monitor would.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// fatal logs a structured error line and exits.
func fatal(msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	// Edge telemetry patterns: watch for a sensor escape sequence, a
	// stuck-at run, and a framed packet with a bounded payload.
	patterns := []string{
		`\x1b\x5b[0-9]{1,8}m`, // ANSI-style escape with a counted field
		"U{64}",               // 64 identical readings = stuck sensor
		`\x02.{16,64}\x03`,    // STX ... ETX frame, 16–64 payload bytes
	}
	engine, err := bvap.Compile(patterns)
	if err != nil {
		fatal("compile failed", err)
	}

	stream := sensorStream(512<<10, 3)

	run := func(arch bvap.Architecture) bvap.Result {
		sim, err := engine.NewSimulator(arch)
		if err != nil {
			fatal("simulator construction failed", err)
		}
		sim.Run(stream)
		return sim.Result()
	}
	normal := run(bvap.ArchBVAP)
	streaming := run(bvap.ArchBVAPStreaming)

	fmt.Printf("processed %d KiB of sensor data, %d events detected\n\n",
		len(stream)>>10, normal.Matches)
	fmt.Printf("%-8s %12s %10s %12s %10s\n", "mode", "nJ/byte", "Gbps", "power (W)", "stalls")
	for _, r := range []bvap.Result{normal, streaming} {
		fmt.Printf("%-8s %12.4f %10.2f %12.4f %10d\n",
			r.Architecture, r.EnergyPerSymbolNJ, r.ThroughputGbps, r.PowerW, r.StallCycles)
	}
	fmt.Printf("\nBVAP-S trades %.0f%% of throughput for %.0f%% less energy and %.0f%% less power\n"+
		"(paper: 67%% / 39%% / 79%%) — the constant cycle needs no input buffering,\n"+
		"which is what a direct sensor connection requires.\n",
		(1-streaming.ThroughputGbps/normal.ThroughputGbps)*100,
		(1-streaming.EnergyPerSymbolNJ/normal.EnergyPerSymbolNJ)*100,
		(1-streaming.PowerW/normal.PowerW)*100)

	serviceDemo(patterns, stream)
}

// serviceDemo feeds the sensor stream through a bvap.Service stream
// session, crashes it mid-feed, resumes from the last checkpoint, and
// hot-reloads the pattern set — the lifecycle a deployed monitor needs.
func serviceDemo(patterns []string, stream []byte) {
	// The flight recorder retains completed feed traces: every structured
	// log line below can be joined to a full span tree by trace_id.
	rec := tracing.NewRecorder(tracing.Config{Capacity: 32})
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{FlightRecorder: rec})
	if err != nil {
		fatal("service start failed", err)
	}
	defer svc.Close()

	// Reference: one uninterrupted pass over the whole stream.
	want := svc.Engine().FindAll(stream)

	var delivered []bvap.Match
	sess, err := svc.NewSession(&bvap.SessionConfig{
		CheckpointInterval: 8 << 10,
		OnMatch:            func(m bvap.Match) { delivered = append(delivered, m) },
	})
	if err != nil {
		fatal("session open failed", err)
	}

	ctx := context.Background()
	cut := 2 * len(stream) / 3
	if err := sess.Feed(ctx, stream[:cut]); err != nil {
		fatal("feed failed", err)
	}
	logger.Info("fed", "trace_id", lastTraceID(rec), "generation", svc.Generation(),
		"bytes", cut, "outcome", "ok")
	ck := sess.Checkpoint() // durable handle; survives the "process"
	sess.Close()            // simulated crash after the checkpoint

	// A new session resumes exactly where the checkpoint was taken —
	// reports delivered before the crash are never re-emitted.
	resumed, err := svc.ResumeSession(ck, &bvap.SessionConfig{
		CheckpointInterval: 8 << 10,
		OnMatch:            func(m bvap.Match) { delivered = append(delivered, m) },
	})
	if err != nil {
		fatal("resume failed", err)
	}
	if err := resumed.Feed(ctx, stream[ck.Pos():]); err != nil {
		fatal("resumed feed failed", err)
	}
	logger.Info("fed", "trace_id", lastTraceID(rec), "generation", svc.Generation(),
		"bytes", int64(len(stream))-ck.Pos(), "outcome", "ok")
	resumed.Close()

	exact := len(delivered) == len(want)
	for i := range delivered {
		if !exact || delivered[i] != want[i] {
			exact = false
			break
		}
	}
	fmt.Printf("\nservice: crashed at byte %d of %d, resumed from checkpoint at %d\n"+
		"         %d events delivered across the crash (reference %d, exactly-once=%v)\n",
		cut, len(stream), ck.Pos(), len(delivered), len(want), exact)

	// Hot reload: ship an extra detector without dropping the service.
	gen, err := svc.Reload(ctx, append(append([]string{}, patterns...), "Q{32}"))
	if err != nil {
		fatal("reload failed", err)
	}
	logger.Info("reloaded", "generation", gen, "patterns", len(patterns)+1, "outcome", "ok")
	fmt.Printf("service: hot-reloaded %d→%d patterns, now serving generation %d\n",
		len(patterns), len(patterns)+1, gen)
}

// lastTraceID returns the id of the most recently recorded trace, joining
// log lines to the flight recorder's ring.
func lastTraceID(rec *tracing.Recorder) string {
	if recent := rec.Recent(); len(recent) > 0 {
		return recent[0].IDString()
	}
	return ""
}

// sensorStream mixes idle readings with occasional frames, escapes, and a
// stuck-sensor episode.
func sensorStream(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for len(out) < n {
		switch r.Intn(20) {
		case 0: // framed packet
			out = append(out, 0x02)
			payload := 20 + r.Intn(40)
			for i := 0; i < payload; i++ {
				out = append(out, byte('A'+r.Intn(26)))
			}
			out = append(out, 0x03)
		case 1: // escape sequence
			out = append(out, 0x1b, 0x5b)
			digits := 1 + r.Intn(4)
			for i := 0; i < digits; i++ {
				out = append(out, byte('0'+r.Intn(10)))
			}
			out = append(out, 'm')
		case 2: // stuck sensor episode
			for i := 0; i < 70; i++ {
				out = append(out, 'U')
			}
		default: // idle telemetry
			for i := 0; i < 32; i++ {
				out = append(out, byte(' '+r.Intn(64)))
			}
		}
	}
	return out[:n]
}
