// dse shows how to run a design space exploration (§8, Fig. 13) with the
// public API: sweep the virtual bit-vector size and the unfolding threshold
// for a workload, measure energy/area/throughput on the cycle model, and
// pick the figure-of-merit-optimal configuration the way the compiler's
// Table 5 defaults were derived.
package main

import (
	"fmt"
	"log"

	"bvap"
)

func main() {
	ds, err := bvap.DatasetByName("YARA")
	if err != nil {
		log.Fatal(err)
	}
	rules := ds.Patterns(60)
	input := ds.Input(8<<10, rules)

	type point struct {
		bv, th int
		res    bvap.Result
	}
	var best *point
	fmt.Printf("%8s %10s %12s %10s %14s %12s\n",
		"bv_size", "unfold_th", "nJ/byte", "mm²", "Gbps/mm²", "FoM")
	for _, bv := range []int{16, 32, 64} {
		for _, th := range []int{4, 8, 12} {
			engine, err := bvap.Compile(rules,
				bvap.WithBVSize(bv), bvap.WithUnfoldThreshold(th))
			if err != nil {
				log.Fatal(err)
			}
			sim, err := engine.NewSimulator(bvap.ArchBVAP)
			if err != nil {
				log.Fatal(err)
			}
			sim.Run(input)
			p := point{bv: bv, th: th, res: sim.Result()}
			fmt.Printf("%8d %10d %12.4f %10.3f %14.2f %12.6f\n",
				bv, th, p.res.EnergyPerSymbolNJ, p.res.AreaMm2,
				p.res.ComputeDensityGbpsPerMm2, p.res.FoM)
			if best == nil || p.res.FoM < best.res.FoM {
				q := p
				best = &q
			}
		}
	}
	fmt.Printf("\nbest FoM: bv_size=%d unfold_th=%d (Table 5 reports 64/8 for YARA)\n",
		best.bv, best.th)
}
