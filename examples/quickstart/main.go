// Quickstart: compile a few regexes with bounded repetitions, match a byte
// stream, and inspect the hardware resources the patterns would occupy on
// BVAP versus a conventional unfolding automata processor.
package main

import (
	"fmt"
	"log"

	"bvap"
)

func main() {
	patterns := []string{
		"ab{3}c",        // exact counting
		"x.{100}y",      // a ClamAV-style gap
		`\d{3}-\d{4}`,   // a RegexLib-style phone number
		"GET /[a-z]{8}", // an HTTP-ish token
	}
	engine, err := bvap.Compile(patterns)
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("abbbc 555-0199 GET /download x")
	for _, m := range engine.FindAll(input) {
		fmt.Printf("pattern %q matched ending at offset %d\n",
			patterns[m.Pattern], m.End)
	}

	fmt.Println("\nhardware resources (BVAP vs unfolding baseline):")
	for _, p := range engine.Report().Patterns {
		if !p.Supported {
			fmt.Printf("  %-16q unsupported: %s\n", p.Pattern, p.Reason)
			continue
		}
		fmt.Printf("  %-16q %4d STEs (%d with bit vectors) vs %5d unfolded → %.1fx smaller\n",
			p.Pattern, p.STEs, p.BVSTEs, p.UnfoldedSTEs,
			float64(p.UnfoldedSTEs)/float64(p.STEs))
	}

	// Streaming use: feed bytes one at a time.
	stream := engine.NewStream()
	fmt.Println("\nstreaming:")
	for i, b := range []byte("abbbcabbbc") {
		for _, p := range stream.Step(b) {
			fmt.Printf("  byte %d completed a match of %q\n", i, patterns[p])
		}
	}
}
