package bvap

import (
	"testing"

	"bvap/internal/swmatch"
)

// TestIntegrationAllDatasets drives the full stack — dataset generation,
// compilation, JSON round trip inside the simulator, cycle simulation on
// BVAP and CAMA — for every benchmark profile, and differentially verifies
// the match results against the independent reference matcher. This is the
// repository-level version of the paper's §8 consistency methodology.
func TestIntegrationAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	for _, ds := range Datasets() {
		ds := ds
		t.Run(ds.Name(), func(t *testing.T) {
			patterns := ds.Patterns(40)
			input := ds.Input(3000, patterns)

			engine, err := Compile(patterns)
			if err != nil {
				t.Fatal(err)
			}
			rep := engine.Report()
			supported := 0
			for _, p := range rep.Patterns {
				if p.Supported {
					supported++
				}
			}
			if supported < len(patterns)*9/10 {
				t.Fatalf("only %d/%d patterns compiled", supported, len(patterns))
			}

			// Functional match results vs the reference matcher.
			got := map[int][]int{}
			for _, m := range engine.FindAll(input) {
				got[m.Pattern] = append(got[m.Pattern], m.End)
			}
			totalMatches := 0
			for i, p := range rep.Patterns {
				if !p.Supported {
					continue
				}
				ref, err := swmatch.New(patterns[i])
				if err != nil {
					t.Fatalf("reference for %q: %v", patterns[i], err)
				}
				want := ref.MatchEnds(input)
				if len(got[i]) != len(want) {
					t.Fatalf("%q: engine %d matches, reference %d",
						patterns[i], len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("%q: match %d at %d vs %d",
							patterns[i], j, got[i][j], want[j])
					}
				}
				totalMatches += len(want)
			}

			// Cycle simulation sanity on both BVAP modes and CAMA.
			for _, arch := range []Architecture{ArchBVAP, ArchBVAPStreaming} {
				sim, err := engine.NewSimulator(arch)
				if err != nil {
					t.Fatal(err)
				}
				sim.Run(input)
				res := sim.Result()
				if res.Matches != uint64(totalMatches) {
					t.Fatalf("%v: %d matches, expected %d", arch, res.Matches, totalMatches)
				}
				if res.EnergyPerSymbolNJ <= 0 || res.ThroughputGbps <= 0 || res.AreaMm2 <= 0 {
					t.Fatalf("%v: degenerate metrics %+v", arch, res)
				}
			}
			cama, err := NewBaselineSimulator(ArchCAMA, patterns)
			if err != nil {
				t.Fatal(err)
			}
			cama.Run(input)
			if cama.Result().Symbols != uint64(len(input)) {
				t.Fatal("CAMA did not consume the stream")
			}
		})
	}
}

// TestIntegrationMatchRateSanity checks the generated corpora stay in the
// paper's regime ("the match rate is typically lower than 10%").
func TestIntegrationMatchRateSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	for _, ds := range Datasets() {
		patterns := ds.Patterns(30)
		input := ds.Input(4000, patterns)
		engine, err := Compile(patterns)
		if err != nil {
			t.Fatal(err)
		}
		rate := float64(engine.Count(input)) / float64(len(input))
		if rate > 0.30 {
			t.Errorf("%s: match rate %.2f implausibly high", ds.Name(), rate)
		}
	}
}
