package bvap

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime/debug"
	"strings"
	"sync"
	"testing"

	"bvap/internal/parascan"
	"bvap/internal/telemetry"
)

// metricValue returns the value of the named sample (matching all given
// labels) from a registry snapshot, or 0 when absent.
func metricValue(reg *telemetry.Registry, name string, labels map[string]string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	return 0
}

func TestSeamWindow(t *testing.T) {
	cases := []struct {
		patterns []string
		want     int
		bounded  bool
	}{
		{[]string{"ab{3,6}c"}, 8, true},
		{[]string{"abc"}, 3, true},
		{[]string{"a{10}", "b{2,4}c"}, 10, true},
		{[]string{"^ab{1,4}c"}, 6, true},
		{[]string{"a+b"}, 0, false},
		{[]string{"abc", "a*"}, 0, false},
		{[]string{"a{3,}"}, 0, false},
	}
	for _, tc := range cases {
		e := MustCompile(tc.patterns)
		w, ok := e.SeamWindow()
		if w != tc.want || ok != tc.bounded {
			t.Errorf("SeamWindow(%q) = %d, %v; want %d, %v", tc.patterns, w, ok, tc.want, tc.bounded)
		}
		// Cached second call agrees.
		if w2, ok2 := e.SeamWindow(); w2 != w || ok2 != ok {
			t.Errorf("SeamWindow(%q) second call diverged", tc.patterns)
		}
	}
}

func TestSeamWindowIgnoresUnsupported(t *testing.T) {
	// An unsupported pattern (here: one that blows the per-set STE budget or
	// uses syntax the hardware mapping rejects) never matches, so it must not
	// constrain the seam window. Unsupported-ness is asserted, not assumed.
	e := MustCompile([]string{"ab{2}c", "a{9999999}"})
	rep := e.Report()
	if rep.Patterns[1].Supported {
		t.Skip("second pattern unexpectedly supported; pick a harsher one")
	}
	if w, ok := e.SeamWindow(); !ok || w != 4 {
		t.Fatalf("SeamWindow = %d, %v; want 4, true (unsupported pattern must not constrain)", w, ok)
	}
}

func TestPatternReach(t *testing.T) {
	cases := []struct {
		pattern string
		reach   int
		bounded bool
	}{
		{"abc", 3, true},
		{"(ab){3}c", 7, true},
		{"a|bcd", 3, true},
		{"a{2,5}", 5, true},
		{"a*bc", 0, false},
		{"a{3,}", 0, false},
	}
	for _, tc := range cases {
		r, ok, err := PatternReach(tc.pattern)
		if err != nil {
			t.Fatalf("PatternReach(%q): %v", tc.pattern, err)
		}
		if r != tc.reach || ok != tc.bounded {
			t.Errorf("PatternReach(%q) = %d, %v; want %d, %v", tc.pattern, r, ok, tc.reach, tc.bounded)
		}
	}
	if _, _, err := PatternReach("a{2,1}"); err == nil {
		t.Error("PatternReach accepted invalid pattern")
	}
}

func TestFindAllParallelFallbackReasons(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name     string
		patterns []string
		input    string
		opts     ParallelOptions
		reason   string
	}{
		{"unbounded", []string{"a+b"}, strings.Repeat("aab", 50), ParallelOptions{ChunkSize: 16}, "unbounded_reach"},
		{"short", []string{"ab{2}c"}, "xabbcx", ParallelOptions{ChunkSize: 64}, "short_input"},
		{"window", []string{"ab{30,60}c"}, strings.Repeat("x", 200), ParallelOptions{ChunkSize: 32}, "window_dominates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			tc.opts.Metrics = reg
			e := MustCompile(tc.patterns)
			got, err := e.FindAllParallel(ctx, []byte(tc.input), &tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.FindAll([]byte(tc.input)); !matchesEqual(got, want) {
				t.Fatalf("fallback path diverged from FindAll:\npar %v\nseq %v", got, want)
			}
			if v := metricValue(reg, parascan.MetricFallbacks, map[string]string{"reason": tc.reason}); v != 1 {
				t.Fatalf("fallback_total{reason=%q} = %v, want 1 (snapshot %+v)", tc.reason, v, reg.Snapshot())
			}
			if v := metricValue(reg, parascan.MetricChunks, nil); v != 0 {
				t.Fatalf("chunks_scanned_total = %v on a fallback, want 0", v)
			}
		})
	}
}

func TestFindAllParallelTelemetry(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2}c"}) // seam window 4
	if w, ok := e.SeamWindow(); !ok || w != 4 {
		t.Fatalf("SeamWindow = %d, %v, want 4, true", w, ok)
	}
	input := []byte(strings.Repeat("xabbcx", 20)) // 120 bytes
	reg := telemetry.NewRegistry()
	got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 3, ChunkSize: 30, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if want := e.FindAll(input); !matchesEqual(got, want) {
		t.Fatalf("diverged:\npar %v\nseq %v", got, want)
	}
	// 120 bytes in 30-byte chunks → 4 chunks; every chunk but the first
	// replays the full 4-byte window.
	if v := metricValue(reg, parascan.MetricChunks, nil); v != 4 {
		t.Errorf("chunks_scanned_total = %v, want 4", v)
	}
	if v := metricValue(reg, parascan.MetricSeamReplays, nil); v != 3 {
		t.Errorf("seam_replays_total = %v, want 3", v)
	}
	if v := metricValue(reg, parascan.MetricSeamReplayBytes, nil); v != 12 {
		t.Errorf("seam_replay_bytes_total = %v, want 12", v)
	}
	if v := metricValue(reg, parascan.MetricWorkersBusy, nil); v != 0 {
		t.Errorf("workers_busy = %v after completion, want 0", v)
	}
}

func TestScanBatchBudget(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab"})
	inputs := [][]byte{
		[]byte(strings.Repeat("ab", 10)),  // 20 bytes, within budget
		[]byte(strings.Repeat("ab", 100)), // 200 bytes, over budget
		[]byte(strings.Repeat("ab", 10)),  // fresh budget again: must succeed
	}
	results, err := e.ScanBatch(ctx, inputs, &BatchOptions{
		Workers: 1, // serialize so pooled-stream reuse is guaranteed exercised
		Budget:  Budget{MaxSymbols: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("input %d: unexpected error %v (budget must reset per input)", i, results[i].Err)
		}
		if want := e.FindAll(inputs[i]); !matchesEqual(results[i].Matches, want) {
			t.Fatalf("input %d diverged", i)
		}
	}
	var be *BudgetError
	if !errors.As(results[1].Err, &be) || !errors.Is(results[1].Err, ErrBudget) {
		t.Fatalf("input 1: err = %v, want *BudgetError", results[1].Err)
	}
	if be.Resource != "symbols" || be.Limit != 50 {
		t.Fatalf("input 1: BudgetError = %+v", be)
	}
	// Partial matches up to the budget are retained.
	if len(results[1].Matches) == 0 {
		t.Fatal("input 1: no partial matches before budget trip")
	}
	for _, m := range results[1].Matches {
		if m.End >= 50 {
			t.Fatalf("input 1: match past budget boundary: %+v", m)
		}
	}
}

func TestScanBatchCancellation(t *testing.T) {
	e := MustCompile([]string{"ab{2}c"})
	inputs := make([][]byte, 64)
	for i := range inputs {
		inputs[i] = []byte(strings.Repeat("xabbc", 200))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-canceled: nothing may start
	results, err := e.ScanBatch(ctx, inputs, &BatchOptions{Workers: 4})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("len(results) = %d, want %d", len(results), len(inputs))
	}
	for i, r := range results {
		if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("input %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestFindAllParallelCancellation(t *testing.T) {
	e := MustCompile([]string{"ab{2}c"})
	input := []byte(strings.Repeat("xabbc", 2000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 2, ChunkSize: 256})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamResetRestoresBudget is the regression test for the Reset
// contract: Reset clears consumed symbols (a pooled stream starts every
// input with the full allowance) while the configured limit survives.
func TestStreamResetRestoresBudget(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab"})
	s := e.NewStream()
	s.SetBudget(Budget{MaxSymbols: 10})

	long := []byte(strings.Repeat("ab", 20))
	_, err := s.ScanContext(ctx, long)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("first scan err = %v, want *BudgetError", err)
	}

	// Without Reset, consumption is cumulative: the very next scan trips
	// immediately.
	if _, err := s.ScanContext(ctx, []byte("ab")); !errors.As(err, &be) {
		t.Fatalf("cumulative scan err = %v, want *BudgetError", err)
	}

	// Reset restores the full allowance but keeps the limit.
	s.Reset()
	ms, err := s.ScanContext(ctx, []byte("abababab")) // 8 ≤ 10
	if err != nil {
		t.Fatalf("post-Reset scan err = %v, want nil", err)
	}
	if len(ms) != 4 {
		t.Fatalf("post-Reset matches = %v, want 4 matches", ms)
	}
	// The limit itself survived: 12 > 10 trips again.
	s.Reset()
	if _, err := s.ScanContext(ctx, long); !errors.As(err, &be) {
		t.Fatalf("limit did not survive Reset: err = %v", err)
	}
}

// TestShardResilienceLadder drives the detect/retry/degrade ladder with the
// test-only corruption hook: a shard whose first attempt is corrupted is
// retried; a shard corrupted on every attempt degrades to the reference
// matcher's output. Either way the final matches equal FindAll's.
func TestShardResilienceLadder(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2}c", "b{2}"})
	input := []byte("xabbcxbbx" + strings.Repeat("abbc", 5))
	want := e.FindAll(input)

	defer func() { shardCorruptHook = nil }()

	t.Run("retry-recovers", func(t *testing.T) {
		shardCorruptHook = func(in []byte, attempt int, ms []Match) []Match {
			if attempt == 0 && len(ms) > 0 {
				return ms[:len(ms)-1] // drop a match → cross-check mismatch
			}
			return ms
		}
		reg := telemetry.NewRegistry()
		results, err := e.ScanBatch(ctx, [][]byte{input}, &BatchOptions{
			Workers:    1,
			Metrics:    reg,
			Resilience: &ShardResilience{CrossCheck: true, MaxRetries: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := results[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Retries != 1 {
			t.Fatalf("Retries = %d, want 1", r.Retries)
		}
		if !matchesEqual(r.Matches, want) {
			t.Fatalf("recovered matches diverged:\ngot  %v\nwant %v", r.Matches, want)
		}
		if v := metricValue(reg, parascan.MetricShardRetries, nil); v != 1 {
			t.Errorf("shard_retries_total = %v, want 1", v)
		}
		if v := metricValue(reg, parascan.MetricShardFallbacks, nil); v != 0 {
			t.Errorf("shard_fallbacks_total = %v, want 0", v)
		}
	})

	t.Run("degrade-to-reference", func(t *testing.T) {
		shardCorruptHook = func(in []byte, attempt int, ms []Match) []Match {
			return append(ms[:0:0], append(ms, Match{Pattern: 0, End: 0})...)
		}
		reg := telemetry.NewRegistry()
		results, err := e.ScanBatch(ctx, [][]byte{input}, &BatchOptions{
			Workers:    1,
			Metrics:    reg,
			Resilience: &ShardResilience{CrossCheck: true, MaxRetries: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := results[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Retries != 2 {
			t.Fatalf("Retries = %d, want 2", r.Retries)
		}
		// Degraded output comes from the independent reference matcher and
		// must still equal the oracle (both are correct implementations).
		if !matchesEqual(r.Matches, want) {
			t.Fatalf("degraded matches diverged:\ngot  %v\nwant %v", r.Matches, want)
		}
		if v := metricValue(reg, parascan.MetricShardRetries, nil); v != 2 {
			t.Errorf("shard_retries_total = %v, want 2", v)
		}
		if v := metricValue(reg, parascan.MetricShardFallbacks, nil); v != 1 {
			t.Errorf("shard_fallbacks_total = %v, want 1", v)
		}
	})

	t.Run("clean-run-no-retries", func(t *testing.T) {
		shardCorruptHook = nil
		results, err := e.ScanBatch(ctx, [][]byte{input}, &BatchOptions{
			Workers:    1,
			Resilience: &ShardResilience{CrossCheck: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := results[0]; r.Retries != 0 || !matchesEqual(r.Matches, want) {
			t.Fatalf("clean resilient run: %+v", r)
		}
	})
}

// TestEngineSharedConcurrently is the race/stress satellite: 16 goroutines
// hammer one shared Engine with a mix of ScanBatch, FindAllParallel,
// NewStream+Step, instrumented streams, Report and SeamWindow. Run under
// -race (CI does, across GOMAXPROCS 1/2/8) this pins the
// Engine-immutable-after-Compile contract.
func TestEngineSharedConcurrently(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2,5}c", "b{3}", "^ab"})
	input := []byte(strings.Repeat("xabbbcxbbb", 30))
	want := e.FindAll(input)
	batch := [][]byte{input, input[:100], input[100:], nil}
	wantBatch := make([][]Match, len(batch))
	for i, in := range batch {
		wantBatch[i] = e.FindAll(in)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reg := telemetry.NewRegistry()
			for iter := 0; iter < 20; iter++ {
				switch (g + iter) % 4 {
				case 0:
					results, err := e.ScanBatch(ctx, batch, &BatchOptions{Workers: 2, Metrics: reg})
					if err != nil {
						errc <- err
						return
					}
					for i, r := range results {
						if r.Err != nil || !matchesEqual(r.Matches, wantBatch[i]) {
							errc <- fmt.Errorf("goroutine %d: batch input %d diverged", g, i)
							return
						}
					}
				case 1:
					got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 2, ChunkSize: 64, Metrics: reg})
					if err != nil {
						errc <- err
						return
					}
					if !matchesEqual(got, want) {
						errc <- fmt.Errorf("goroutine %d: FindAllParallel diverged", g)
						return
					}
				case 2:
					s := e.NewStream()
					s.Instrument(reg)
					n := 0
					for _, b := range input {
						n += len(s.Step(b))
					}
					if n != len(want) {
						errc <- fmt.Errorf("goroutine %d: stream count %d, want %d", g, n, len(want))
						return
					}
				default:
					if rep := e.Report(); rep.TotalSTEs == 0 {
						errc <- fmt.Errorf("goroutine %d: empty report", g)
						return
					}
					if _, ok := e.SeamWindow(); !ok {
						errc <- fmt.Errorf("goroutine %d: SeamWindow unbounded", g)
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanBatchSteadyStateAllocs is the allocation-regression satellite:
// once the stream pool is warm, per-input cost is pooled — the per-batch
// allocation count must not grow with the number of inputs (matchless
// inputs, so no match storage is charged).
func TestScanBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts randomly; allocation counts are meaningless")
	}
	ctx := context.Background()
	e := MustCompile([]string{"ab{2}c"})
	// sync.Pool is emptied by GC; disable collection during measurement so
	// the test observes the engine's allocation behaviour, not the
	// collector's pool-clearing schedule.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	mk := func(n int) [][]byte {
		inputs := make([][]byte, n)
		for i := range inputs {
			inputs[i] = []byte(strings.Repeat("x", 256)) // no matches
		}
		return inputs
	}
	small, large := mk(8), mk(64)
	opts := &BatchOptions{Workers: 1}
	run := func(inputs [][]byte) float64 {
		return testing.AllocsPerRun(100, func() {
			results, err := e.ScanBatch(ctx, inputs, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range results {
				if results[i].Err != nil || results[i].Matches != nil {
					t.Fatal("unexpected result")
				}
			}
		})
	}
	run(small) // warm the pool
	a8, a64 := run(small), run(large)
	// Fixed per-batch overhead (results slice, done slice, closure, worker
	// bookkeeping) is allowed; per-input allocations are not. Slack of 8
	// absorbs incidental GC clearing the sync.Pool mid-measurement.
	if a64 > a8+8 {
		t.Fatalf("ScanBatch allocations grow with input count: 8 inputs → %.1f allocs, 64 inputs → %.1f", a8, a64)
	}
	t.Logf("ScanBatch allocs/batch: 8 inputs %.1f, 64 inputs %.1f", a8, a64)
}

func BenchmarkScanBatch(b *testing.B) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2,5}c", "b{3}"})
	inputs := make([][]byte, 32)
	for i := range inputs {
		inputs[i] = []byte(strings.Repeat("xabbbcx", 512)) // ~3.5 KiB each
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := &BatchOptions{Workers: workers}
			b.ReportAllocs()
			b.SetBytes(int64(len(inputs)) * int64(len(inputs[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ScanBatch(ctx, inputs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFindAllParallel(b *testing.B) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2,5}c", "b{3}"})
	input := []byte(strings.Repeat("xabbbcx", 64<<10/7)) // ~64 KiB
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			e.FindAll(input)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := &ParallelOptions{Workers: workers, ChunkSize: 8 << 10}
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.FindAllParallel(ctx, input, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestFindAllParallelNilAndEmpty pins edge-case parity with FindAll.
func TestFindAllParallelNilAndEmpty(t *testing.T) {
	ctx := context.Background()
	e := MustCompile([]string{"ab{2}c"})
	for _, input := range [][]byte{nil, {}, []byte("x")} {
		got, err := e.FindAllParallel(ctx, input, &ParallelOptions{ChunkSize: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if want := e.FindAll(input); !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: par %v, seq %v", input, got, want)
		}
	}
	// Empty batch.
	results, err := e.ScanBatch(ctx, nil, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

// TestCompileContextEngineParallelReady pins that engines built through
// CompileContext carry the same parallel-scan plumbing as Compile's (a
// regression guard for the pooled fields).
func TestCompileContextEngineParallelReady(t *testing.T) {
	ctx := context.Background()
	e, err := CompileContext(ctx, []string{"ab{2}c"})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("xabbcx", 40))
	got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: 2, ChunkSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if want := e.FindAll(input); !matchesEqual(got, want) {
		t.Fatalf("CompileContext engine diverged:\npar %v\nseq %v", got, want)
	}
	if _, err := e.ScanBatch(ctx, [][]byte{input}, nil); err != nil {
		t.Fatal(err)
	}
}
