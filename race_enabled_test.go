//go:build race

package bvap

// raceEnabled reports whether the race detector is active in this build.
// The allocation-regression tests skip under -race: the detector makes
// sync.Pool randomly drop Puts (to shake out reuse races), so pooled
// objects are intentionally reallocated and per-input allocation counts
// are meaningless there.
const raceEnabled = true
