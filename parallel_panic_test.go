package bvap

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"bvap/internal/parascan"
)

// A panicking shard must degrade that one input — typed *PanicError at its
// index — while the rest of the batch completes normally, every pooled
// stream is returned, and the engine keeps serving afterwards.
func TestScanBatchShardPanicIsContained(t *testing.T) {
	e := MustCompile([]string{"ab{2}c"})
	poison := []byte("poison-abbc")
	inputs := [][]byte{
		[]byte("xxabbcxx"),
		poison,
		[]byte("abbcabbc"),
		[]byte("no match here"),
	}
	shardCorruptHook = func(input []byte, attempt int, ms []Match) []Match {
		if bytes.Equal(input, poison) {
			panic("shard blew up")
		}
		return ms
	}
	defer func() { shardCorruptHook = nil }()

	results, err := e.ScanBatch(context.Background(), inputs, &BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("ScanBatch: %v", err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("poisoned input error = %v (%T), want *PanicError", results[1].Err, results[1].Err)
	}
	if pe.Op != "batch shard" || pe.Value != "shard blew up" {
		t.Errorf("PanicError = {Op: %q, Value: %v}", pe.Op, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "scanShardAttempt") {
		t.Errorf("PanicError.Stack does not mention the scan frame:\n%s", pe.Stack)
	}
	if results[1].Matches != nil {
		t.Errorf("poisoned input returned matches: %v", results[1].Matches)
	}
	// The healthy inputs are unaffected.
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("input %d: unexpected error %v", i, results[i].Err)
		}
	}
	if got := len(results[0].Matches); got != 1 {
		t.Errorf("input 0: %d matches, want 1", got)
	}
	if got := len(results[2].Matches); got != 2 {
		t.Errorf("input 2: %d matches, want 2", got)
	}
	// Every pooled stream came back despite the panic.
	if out := e.StreamsOut(); out != 0 {
		t.Errorf("StreamsOut() = %d after panicking batch, want 0", out)
	}
	// The engine still serves: the previously poisoned input scans fine
	// once the hook is gone.
	shardCorruptHook = nil
	ms := e.FindAll(poison)
	if len(ms) != 1 {
		t.Errorf("post-panic FindAll(poison) = %v, want one match", ms)
	}
}

// Every input panicking still yields a full result set and an empty pool
// checkout count — the worker goroutines themselves never die.
func TestScanBatchAllShardsPanic(t *testing.T) {
	e := MustCompile([]string{"ab{2}c"})
	shardCorruptHook = func([]byte, int, []Match) []Match { panic("every shard") }
	defer func() { shardCorruptHook = nil }()

	inputs := make([][]byte, 16)
	for i := range inputs {
		inputs[i] = []byte("abbc")
	}
	results, err := e.ScanBatch(context.Background(), inputs, &BatchOptions{Workers: 4})
	if err != nil {
		t.Fatalf("ScanBatch: %v", err)
	}
	for i, r := range results {
		var pe *PanicError
		if !errors.As(r.Err, &pe) {
			t.Fatalf("input %d: err = %v, want *PanicError", i, r.Err)
		}
	}
	if out := e.StreamsOut(); out != 0 {
		t.Errorf("StreamsOut() = %d, want 0", out)
	}
}

// A panic inside a chunk scan surfaces as FindAllParallel's error (wrapped
// *PanicError), with the pool intact and the engine reusable.
func TestFindAllParallelChunkPanic(t *testing.T) {
	e := MustCompile([]string{"ab{2}c"}) // bounded reach: parallel path taken
	input := bytes.Repeat([]byte("xabbcx"), 4000)
	opts := &ParallelOptions{Workers: 2, ChunkSize: 4 << 10}

	chunkPanicHook = func(parascan.Chunk) { panic("chunk blew up") }
	defer func() { chunkPanicHook = nil }()

	ms, err := e.FindAllParallel(context.Background(), input, opts)
	if err == nil {
		t.Fatal("FindAllParallel returned nil error despite panicking chunks")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want wrapped *PanicError", err, err)
	}
	if pe.Op != "chunk scan" {
		t.Errorf("PanicError.Op = %q, want chunk scan", pe.Op)
	}
	if ms != nil {
		t.Errorf("matches = %v, want nil on failure", ms)
	}
	if out := e.StreamsOut(); out != 0 {
		t.Errorf("StreamsOut() = %d after panicking chunks, want 0", out)
	}

	// Recovery: with the hook cleared the same call matches the oracle.
	chunkPanicHook = nil
	got, err := e.FindAllParallel(context.Background(), input, opts)
	if err != nil {
		t.Fatalf("post-panic FindAllParallel: %v", err)
	}
	want := e.FindAll(input)
	if len(got) != len(want) {
		t.Fatalf("post-panic parallel scan: %d matches, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v != oracle %+v", i, got[i], want[i])
		}
	}
}
