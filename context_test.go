package bvap

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ctxPatterns is a small pattern set used across the cancellation tests;
// one pattern is deliberately broken and one blows the compile budget.
var ctxPatterns = []string{"ab{3}c", "x{2,30}y", "(?i)get /[a-z]{8}"}

func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Many patterns so the per-pattern check must fire long before the end.
	pats := make([]string, 500)
	for i := range pats {
		pats[i] = "a{2,200}b"
	}
	_, err := CompileContext(ctx, pats)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled at pattern") {
		t.Fatalf("err = %v, want a pattern position", err)
	}
}

func TestCompileContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := CompileContext(ctx, ctxPatterns); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCompileContextUncanceled(t *testing.T) {
	e, err := CompileContext(context.Background(), ctxPatterns)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Count([]byte("abbbc xxxxy")); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestFindAllContextCanceled(t *testing.T) {
	e := MustCompile(ctxPatterns)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	matches, err := e.FindAllContext(ctx, make([]byte, 1<<16))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if matches != nil {
		t.Fatalf("canceled-before-start scan returned matches: %v", matches)
	}
}

func TestScanContextPartialResults(t *testing.T) {
	e := MustCompile([]string{"ab"})
	s := e.NewStream()
	// Build input with one match inside the first chunk and one far past
	// the symbol budget.
	input := make([]byte, 4*runChunkSymbols)
	copy(input[10:], "ab")
	copy(input[3*runChunkSymbols:], "ab")
	s.SetBudget(Budget{MaxSymbols: runChunkSymbols})
	matches, err := s.ScanContext(context.Background(), input)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, does not unwrap to ErrBudget", err)
	}
	if be.Resource != "symbols" || be.Limit != runChunkSymbols {
		t.Fatalf("budget error = %+v", be)
	}
	if len(matches) != 1 || matches[0].End != 11 {
		t.Fatalf("partial matches = %v, want the one pre-budget match at 11", matches)
	}
}

func TestRunContextDeadline(t *testing.T) {
	e := MustCompile(ctxPatterns)
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := sim.RunContext(ctx, make([]byte, 1<<16)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The partial result must still be coherent (no symbols ran).
	if r := sim.Result(); r.Symbols != 0 {
		t.Fatalf("symbols = %d after immediate deadline", r.Symbols)
	}
}

func TestRunContextSymbolBudget(t *testing.T) {
	e := MustCompile(ctxPatterns)
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBudget(Budget{MaxSymbols: 3 * runChunkSymbols / 2})
	err = sim.RunContext(context.Background(), make([]byte, 1<<16))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	// The budget clamps mid-chunk: exactly MaxSymbols ran.
	if r := sim.Result(); r.Symbols != uint64(3*runChunkSymbols/2) {
		t.Fatalf("symbols = %d, want %d", r.Symbols, 3*runChunkSymbols/2)
	}
}

func TestCompileBudgetIsolatesPatterns(t *testing.T) {
	// A tight STE budget: the first pattern fits, the second (much larger)
	// is rejected with a budget error, the third fits again.
	e, err := Compile([]string{"ab", "(abcdefgh){1,9}(ijklmnop){1,9}(qrstuvwx){1,9}", "cd"},
		WithBudget(Budget{MaxStates: 8}))
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if !rep.Patterns[0].Supported || !rep.Patterns[2].Supported {
		t.Fatalf("small patterns rejected: %+v", rep.Patterns)
	}
	if rep.Patterns[1].Supported {
		t.Fatal("oversized pattern slipped past the budget")
	}
	errs := e.PatternErrors()
	if len(errs) != 1 {
		t.Fatalf("PatternErrors = %v, want 1", errs)
	}
	var pe *PatternError
	if !errors.As(errs[0], &pe) || pe.Index != 1 {
		t.Fatalf("pattern error = %v", errs[0])
	}
	if !errors.Is(errs[0], ErrBudget) {
		t.Fatalf("err = %v, does not unwrap to ErrBudget", errs[0])
	}
	// Matching still works for the surviving patterns.
	if got := e.Count([]byte("ab cd")); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestPatternErrorKinds(t *testing.T) {
	// (a{64}){64} nests counters into one cluster needing more BVs than a
	// tile holds → capacity.
	e := MustCompile([]string{"ok", "bad(", "(a{64}){64}"})
	var syntax, unsupported int
	for _, err := range e.PatternErrors() {
		switch {
		case errors.Is(err, ErrSyntax):
			syntax++
		case errors.Is(err, ErrUnsupported):
			unsupported++
		default:
			t.Errorf("unclassified pattern error: %v", err)
		}
	}
	if syntax != 1 || unsupported != 1 {
		t.Fatalf("syntax=%d unsupported=%d, want 1 and 1", syntax, unsupported)
	}
}

// TestContextCancelNoGoroutineLeak pins that the context-aware paths spawn
// no goroutines at all: cancellation is checked inline at chunk boundaries,
// so there is nothing to leak.
func TestContextCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e := MustCompile(ctxPatterns)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _ = e.FindAllContext(ctx, make([]byte, 1<<14))
		sim, err := e.NewSimulator(ArchBVAPStreaming)
		if err != nil {
			t.Fatal(err)
		}
		_ = sim.RunContext(ctx, make([]byte, 1<<14))
		_, _ = CompileContext(ctx, ctxPatterns)
	}
	// Allow the runtime a moment to retire anything transient.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d → %d across canceled runs", before, after)
	}
}

func TestRunResilientCanceled(t *testing.T) {
	e := MustCompile(ctxPatterns)
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectFaults(UniformFaultPlan(3, 1e-3, true)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := sim.RunResilient(ctx, make([]byte, 1<<14), ResilienceConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Windows != 0 {
		t.Fatalf("windows = %d after immediate cancel", rep.Windows)
	}
}
