package bvap

import (
	"testing"

	"bvap/internal/swmatch"
)

// TestAnchoredPatterns exercises the ^ start anchor end to end: parser →
// compiler → JSON config → cycle simulator, against the reference matcher.
func TestAnchoredPatterns(t *testing.T) {
	e := MustCompile([]string{"^abc", "abc", "^a{3}b"})

	// Unanchored "abc" matches twice; anchored "^abc" only at the start.
	input := []byte("abcxabc")
	got := map[int]int{}
	for _, m := range e.FindAll(input) {
		got[m.Pattern]++
	}
	if got[0] != 1 {
		t.Fatalf("^abc matched %d times, want 1", got[0])
	}
	if got[1] != 2 {
		t.Fatalf("abc matched %d times, want 2", got[1])
	}

	// Anchored counting: only a stream-initial run counts.
	e2 := MustCompile([]string{"^a{3}b"})
	if e2.Count([]byte("aaab")) != 1 {
		t.Fatal("^a{3}b missed the stream-initial match")
	}
	if e2.Count([]byte("xaaab")) != 0 {
		t.Fatal("^a{3}b matched mid-stream")
	}
}

func TestAnchoredAgainstReference(t *testing.T) {
	patterns := []string{"^ab{3}c", "^x.{5}y", "^(?i)get /", "(?i)^post /"}
	inputs := []string{
		"abbbc", "xabbbc", "x12345y", "zx12345y",
		"GET /index", "xGET /index", "POST /x", "zPOST /x",
		"abbbcabbbc", "",
	}
	e := MustCompile(patterns)
	for _, in := range inputs {
		got := map[int][]int{}
		for _, m := range e.FindAll([]byte(in)) {
			got[m.Pattern] = append(got[m.Pattern], m.End)
		}
		for i, pat := range patterns {
			ref, err := swmatch.New(pat)
			if err != nil {
				t.Fatalf("%q: %v", pat, err)
			}
			want := ref.MatchEnds([]byte(in))
			if len(got[i]) != len(want) {
				t.Fatalf("%q on %q: engine %v, reference %v", pat, in, got[i], want)
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("%q on %q: engine %v, reference %v", pat, in, got[i], want)
				}
			}
		}
	}
}

func TestAnchoredSimulatorAndBaseline(t *testing.T) {
	patterns := []string{"^header.{20}x"}
	input := append([]byte("header12345678901234567890x"), []byte(" header12345678901234567890x")...)
	want := swmatch.MustNew(patterns[0]).Count(input)
	if want != 1 {
		t.Fatalf("reference count = %d, want 1", want)
	}

	e := MustCompile(patterns)
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(input)
	if got := sim.Result().Matches; got != uint64(want) {
		t.Fatalf("BVAP simulator matches = %d, want %d", got, want)
	}

	base, err := NewBaselineSimulator(ArchCAMA, patterns)
	if err != nil {
		t.Fatal(err)
	}
	base.Run(input)
	if got := base.Result().Matches; got != uint64(want) {
		t.Fatalf("CAMA simulator matches = %d, want %d", got, want)
	}
}

func TestAnchorRestrictionsRejected(t *testing.T) {
	for _, pat := range []string{"a^b", "a$", "^a$", "(^a)"} {
		if err := ParsePattern(pat); err == nil {
			t.Errorf("%q accepted", pat)
		}
	}
	// ParsePattern on a leading anchor is fine.
	if err := ParsePattern("^abc"); err != nil {
		t.Fatalf("^abc rejected: %v", err)
	}
}

func TestStreamResetReArmsAnchor(t *testing.T) {
	e := MustCompile([]string{"^ab"})
	s := e.NewStream()
	s.Step('a')
	if hits := s.Step('b'); len(hits) != 1 {
		t.Fatal("missed anchored match at start")
	}
	// Later in the same stream: no re-arm.
	s.Step('a')
	if hits := s.Step('b'); len(hits) != 0 {
		t.Fatal("anchored pattern re-armed mid-stream")
	}
	// After Reset the anchor arms again.
	s.Reset()
	s.Step('a')
	if hits := s.Step('b'); len(hits) != 1 {
		t.Fatal("anchored pattern did not re-arm after Reset")
	}
}
