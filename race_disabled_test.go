//go:build !race

package bvap

// raceEnabled reports whether the race detector is active in this build.
const raceEnabled = false
