package bvap

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"bvap/internal/serve"
)

// The service sentinels are aliases of internal/serve's values, so
// errors.Is must hold across the package boundary in both directions and
// through arbitrary wrapping.
func TestServiceSentinelRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		public   error
		internal error
	}{
		{"overloaded", ErrOverloaded, serve.ErrOverloaded},
		{"draining", ErrDraining, serve.ErrDraining},
		{"quarantined", ErrQuarantined, serve.ErrQuarantined},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.public != tc.internal { //nolint:errorlint // identity is the contract under test
				t.Fatalf("public sentinel is not the internal value")
			}
			wrapped := fmt.Errorf("request 17: %w", tc.public)
			if !errors.Is(wrapped, tc.public) {
				t.Errorf("errors.Is(wrapped, public) = false")
			}
			if !errors.Is(wrapped, tc.internal) {
				t.Errorf("errors.Is(wrapped, internal) = false")
			}
		})
	}
	// The sentinels are distinct from each other and from the compile/run
	// taxonomy.
	all := []error{ErrOverloaded, ErrDraining, ErrQuarantined, ErrSyntax, ErrBudget, ErrUnsupported}
	for i, a := range all {
		for j, b := range all {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %d unexpectedly Is sentinel %d", i, j)
			}
		}
	}
}

// A shed request whose deadline expired while queued unwraps to both
// ErrOverloaded and the context error, so callers can triage either way.
func TestOverloadedCarriesContextError(t *testing.T) {
	adm := serve.NewAdmission(serve.AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)
	release, err := adm.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = adm.Acquire(ctx)
	if err == nil {
		t.Fatal("Acquire with expired ctx on a full gate returned nil")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("errors.Is(err, ErrOverloaded) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// PanicError is a type alias for internal/serve's type, so errors.As works
// on errors produced by either package.
func TestPanicErrorRoundTrip(t *testing.T) {
	guarded := serve.Guard("unit", func() { panic("boom") })
	if guarded == nil {
		t.Fatal("Guard swallowed the panic")
	}
	var pe *PanicError
	if !errors.As(guarded, &pe) {
		t.Fatalf("errors.As(*PanicError) = false for %T", guarded)
	}
	if pe.Op != "unit" || pe.Value != "boom" {
		t.Errorf("PanicError = {Op: %q, Value: %v}, want {unit, boom}", pe.Op, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	wrapped := fmt.Errorf("scan failed: %w", guarded)
	var pe2 *serve.PanicError
	if !errors.As(wrapped, &pe2) {
		t.Error("errors.As through a wrap using the internal type = false")
	}
}

// ReloadError is likewise an alias; the phase annotation and the wrapped
// cause both survive the boundary.
func TestReloadErrorRoundTrip(t *testing.T) {
	cause := errors.New("cross-check mismatch on probe 3")
	err := fmt.Errorf("reload rejected: %w", &serve.ReloadError{Phase: "crosscheck", Err: cause})
	var re *ReloadError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*ReloadError) = false")
	}
	if re.Phase != "crosscheck" {
		t.Errorf("Phase = %q, want crosscheck", re.Phase)
	}
	if !errors.Is(err, cause) {
		t.Error("ReloadError does not unwrap to its cause")
	}
}
