package bvap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"bvap/internal/swmatch"
)

func TestQuickstartFlow(t *testing.T) {
	e := MustCompile([]string{"ab{3}c", "hello"})
	matches := e.FindAll([]byte("xabbbcy hello"))
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].Pattern != 0 || matches[0].End != 5 {
		t.Fatalf("first match = %+v", matches[0])
	}
	if matches[1].Pattern != 1 || matches[1].End != 12 {
		t.Fatalf("second match = %+v", matches[1])
	}
	if e.Count([]byte("abbbcabbbc")) != 2 {
		t.Fatal("count wrong")
	}
}

func TestCompileOptions(t *testing.T) {
	e := MustCompile([]string{"a{100}"}, WithBVSize(16), WithUnfoldThreshold(4))
	rep := e.Report()
	if !rep.Patterns[0].Supported {
		t.Fatalf("unsupported: %s", rep.Patterns[0].Reason)
	}
	// With K=16, a{100} splits into ⌈100/16⌉ = 7 chunks.
	if rep.Patterns[0].BVSTEs < 7 {
		t.Fatalf("BVSTEs = %d", rep.Patterns[0].BVSTEs)
	}
	if _, err := Compile([]string{"a"}, WithBVSize(13)); err == nil {
		t.Fatal("invalid BV size accepted")
	}
}

func TestReportSavings(t *testing.T) {
	e := MustCompile([]string{"url=.{8000}"})
	rep := e.Report()
	p := rep.Patterns[0]
	if !p.Supported {
		t.Fatalf("unsupported: %s", p.Reason)
	}
	// §3: 8004 STEs unfolded, ~270 in BVAP.
	if p.UnfoldedSTEs != 8004 {
		t.Fatalf("unfolded = %d", p.UnfoldedSTEs)
	}
	if p.STEs >= p.UnfoldedSTEs/20 {
		t.Fatalf("BVAP STEs = %d, no compression", p.STEs)
	}
}

func TestBadPatternIsolated(t *testing.T) {
	e := MustCompile([]string{"good", "bad("})
	rep := e.Report()
	if rep.Unsupported != 1 || rep.Patterns[1].Supported {
		t.Fatalf("report = %+v", rep)
	}
	// The good pattern still matches; the bad one never does.
	ms := e.FindAll([]byte("goodbad("))
	for _, m := range ms {
		if m.Pattern == 1 {
			t.Fatal("unsupported pattern matched")
		}
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestStreamIncremental(t *testing.T) {
	e := MustCompile([]string{"ab"})
	s := e.NewStream()
	if hits := s.Step('a'); len(hits) != 0 {
		t.Fatal("premature match")
	}
	if hits := s.Step('b'); len(hits) != 1 || hits[0] != 0 {
		t.Fatal("missed match")
	}
	s.Reset()
	if hits := s.Step('b'); len(hits) != 0 {
		t.Fatal("stale state after reset")
	}
}

func TestWriteConfig(t *testing.T) {
	e := MustCompile([]string{"ab{9}c"})
	var buf bytes.Buffer
	if err := e.WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version"`, `"machines"`, `"tiles"`, `"is_bv"`} {
		if !strings.Contains(out, want) {
			t.Errorf("config missing %s", want)
		}
	}
}

func TestEngineAgainstReferenceMatcher(t *testing.T) {
	patterns := []string{"ab{4}c", "x.{10}y", `\d{3}`, "foo|ba{2,5}r"}
	e := MustCompile(patterns)
	r := rand.New(rand.NewSource(21))
	input := make([]byte, 3000)
	alphabet := "abcxyfor0123"
	for i := range input {
		input[i] = alphabet[r.Intn(len(alphabet))]
	}
	got := map[int][]int{}
	for _, m := range e.FindAll(input) {
		got[m.Pattern] = append(got[m.Pattern], m.End)
	}
	for i, pat := range patterns {
		want := swmatch.MustNew(pat).MatchEnds(input)
		if len(got[i]) != len(want) {
			t.Fatalf("%q: %d vs %d matches", pat, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("%q: mismatch at %d", pat, j)
			}
		}
	}
}

func TestSimulatorFlow(t *testing.T) {
	patterns := []string{"attack.{50}x", "benign"}
	e := MustCompile(patterns)
	sim, err := e.NewSimulator(ArchBVAP)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("benign attack", 200))
	sim.Run(input)
	res := sim.Result()
	if res.Symbols != uint64(len(input)) {
		t.Fatalf("symbols = %d", res.Symbols)
	}
	if res.Matches == 0 {
		t.Fatal("no matches")
	}
	if res.EnergyPerSymbolNJ <= 0 || res.AreaMm2 <= 0 || res.ThroughputGbps <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
	// Baseline on the same patterns.
	base, err := NewBaselineSimulator(ArchCAMA, patterns)
	if err != nil {
		t.Fatal(err)
	}
	base.Run(input)
	bres := base.Result()
	if bres.Matches != res.Matches {
		t.Fatalf("matches differ: BVAP %d, CAMA %d", res.Matches, bres.Matches)
	}
}

func TestSimulatorArchValidation(t *testing.T) {
	e := MustCompile([]string{"a"})
	if _, err := e.NewSimulator(ArchCAMA); err == nil {
		t.Fatal("engine simulator accepted a baseline arch")
	}
	if _, err := NewBaselineSimulator(ArchBVAP, []string{"a"}); err == nil {
		t.Fatal("baseline simulator accepted BVAP")
	}
	for _, a := range []Architecture{ArchBVAP, ArchBVAPStreaming, ArchCAMA, ArchCA, ArchEAP, ArchCNT} {
		if a.String() == "" {
			t.Fatal("empty arch name")
		}
	}
}

func TestDatasetsAPI(t *testing.T) {
	ds := Datasets()
	if len(ds) != 7 {
		t.Fatalf("datasets = %d", len(ds))
	}
	snort, err := DatasetByName("Snort")
	if err != nil {
		t.Fatal(err)
	}
	pats := snort.Patterns(25)
	if len(pats) != 25 {
		t.Fatalf("patterns = %d", len(pats))
	}
	in := snort.Input(1000, pats)
	if len(in) != 1000 {
		t.Fatalf("input = %d", len(in))
	}
	st := AnalyzePatterns(pats)
	if st.Regexes != 25 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := DatasetByName("missing"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestParseAndAnalyze(t *testing.T) {
	if err := ParsePattern("a{3,5}b"); err != nil {
		t.Fatal(err)
	}
	if err := ParsePattern("a("); err == nil {
		t.Fatal("bad pattern accepted")
	}
	counting, bound, unfolded, err := AnalyzePattern(".*a.{100}")
	if err != nil || !counting || bound != 100 || unfolded != 102 {
		t.Fatalf("analyze = %v %d %d %v", counting, bound, unfolded, err)
	}
}

func TestConcurrentStreams(t *testing.T) {
	// An Engine is shared; each goroutine gets its own Stream. Run with
	// -race in CI to catch accidental shared state.
	e := MustCompile([]string{"ab{5}c", "x.{20}y"})
	input := []byte(strings.Repeat("abbbbbc x12345678901234567890y ", 50))
	want := e.Count(input)
	const workers = 8
	results := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			s := e.NewStream()
			n := 0
			for _, b := range input {
				n += len(s.Step(b))
			}
			results <- n
		}()
	}
	for w := 0; w < workers; w++ {
		if got := <-results; got != want {
			t.Fatalf("worker got %d matches, want %d", got, want)
		}
	}
}
