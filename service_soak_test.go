package bvap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServiceChaosSoak is the acceptance soak for the service layer: a
// checkpointed stream session survives injected panics and forced
// crash/resume cycles while concurrent scanners hammer admission control,
// a poison input trips the quarantine breaker, and three hot reloads land
// mid-flight. The session's delivered report set must be byte-identical to
// an undisturbed sequential reference, with no dropped correct matches in
// the scan plane, no stuck pooled streams, and no leaked goroutines.
func TestServiceChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a wall-clock test")
	}
	before := runtime.NumGoroutine()

	basePatterns := []string{"ab{2}c", "ab{2,5}c", "c{3}"}
	svc, err := NewService(basePatterns, &ServiceConfig{
		MaxConcurrent:       2,
		MaxQueue:            2,
		ScanTimeout:         time.Second,
		QuarantineThreshold: 3,
		QuarantineWindow:    time.Minute,
		QuarantineCooldown:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The session pins generation 1; the reference must come from the
	// same engine, captured before any reload swaps the service.
	corpus := checkpointInput(99, 128<<10)
	pinned := svc.Engine()
	want := pinned.FindAll(corpus)
	if len(want) == 0 {
		t.Fatal("degenerate corpus: no reference matches")
	}

	// Fault plan: three one-shot panics injected into the session's
	// guarded feed path, each at a fixed stream position. After the
	// rewind, the replay crosses the same position again — the fired map
	// keeps the bomb from re-detonating, modeling a transient fault.
	bombs := []int{20011, 50023, 90017}
	var fired sync.Map
	sessionFeedHook = func(base int, data []byte) {
		for _, b := range bombs {
			if base < b && base+len(data) >= b {
				if _, dup := fired.LoadOrStore(b, true); !dup {
					panic(fmt.Sprintf("chaos: injected fault at %d", b))
				}
			}
		}
	}
	defer func() { sessionFeedHook = nil }()

	// Poison input for the scan plane: every scan of it panics, so the
	// breaker must quarantine it after QuarantineThreshold failures.
	poison := []byte("poison-input-marker")
	serviceScanHook = func(in []byte) {
		if bytes.Equal(in, poison) {
			panic("chaos: poison input")
		}
	}
	defer func() { serviceScanHook = nil }()

	// ---- Session plane: feed with faults + forced crash/resume. ----
	var delivered []Match
	cfg := &SessionConfig{
		CheckpointInterval: 2048,
		OnMatch:            func(m Match) { delivered = append(delivered, m) },
	}
	sess, err := svc.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sessionDone := make(chan struct{})
	go func() {
		defer close(sessionDone)
		ctx := context.Background()
		panics, crashes, cursor := 0, 0, 0
		for cursor < len(corpus) {
			end := cursor + 1500
			if end > len(corpus) {
				end = len(corpus)
			}
			if err := sess.Feed(ctx, corpus[cursor:end]); err != nil {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Errorf("session feed: unexpected error %v", err)
					return
				}
				panics++
				// Rewound to the last commit: replay from Pos(), which
				// may be well before the failed chunk.
				cursor = int(sess.Pos())
				continue
			}
			cursor = end
			// Every ~16 KiB, crash the whole session object and
			// resume a fresh one from the durable handle.
			if crashes < 4 && cursor/(16<<10) > crashes {
				ck := sess.Checkpoint() // commits: ck.Pos() == cursor
				sess.Close()            // simulated process death
				next, err := svc.ResumeSession(ck, cfg)
				if err != nil {
					t.Errorf("ResumeSession: %v", err)
					return
				}
				if got := int(next.Pos()); got != cursor {
					t.Errorf("resumed at %d, cursor %d", got, cursor)
					return
				}
				sess = next
				crashes++
			}
		}
		sess.Close()
		if panics != len(bombs) {
			t.Errorf("session absorbed %d injected panics, want %d", panics, len(bombs))
		}
		if crashes != 4 {
			t.Errorf("session crash/resume cycles = %d, want 4", crashes)
		}
	}()

	// ---- Scan plane: concurrent scanners + poison + hot reloads. ----
	goodInput := []byte("..abbc..abbc..abbc..") // 3 hits of pattern 0
	const wantPerScan = 3
	var dropped, poisonRejects atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-sessionDone:
					return
				default:
				}
				in := goodInput
				if i%7 == g {
					in = poison
				}
				ms, err := svc.Scan(context.Background(), in)
				switch {
				case err == nil:
					if &in[0] == &poison[0] {
						dropped.Add(1) // poison must never succeed
						continue
					}
					n := 0
					for _, m := range ms {
						if m.Pattern == 0 {
							n++
						}
					}
					if n != wantPerScan {
						dropped.Add(1)
					}
				case errors.Is(err, ErrOverloaded):
					// Expected shedding under a 2+2 gate.
				case errors.Is(err, ErrQuarantined) || isPanicErr(err):
					if &in[0] != &poison[0] {
						dropped.Add(1)
					} else {
						poisonRejects.Add(1)
					}
				default:
					t.Errorf("scan: unexpected error %v", err)
					return
				}
			}
		}(g)
	}

	// Three concurrent hot reloads, each keeping the base patterns (so
	// pattern 0's match count is invariant across generations) and adding
	// a generation marker.
	var reloadsOK atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			next := append(append([]string{}, basePatterns...),
				fmt.Sprintf("soakgen%dx{%d}", r, 4+r))
			if _, err := svc.Reload(context.Background(), next); err != nil {
				t.Errorf("reload %d: %v", r, err)
				return
			}
			reloadsOK.Add(1)
		}(r)
	}

	<-sessionDone
	wg.Wait()

	// ---- Verdict. ----
	if got := reloadsOK.Load(); got != 3 {
		t.Errorf("concurrent reloads applied = %d, want 3", got)
	}
	if gen := svc.Generation(); gen != 4 {
		t.Errorf("final generation = %d, want 4", gen)
	}
	if n := dropped.Load(); n != 0 {
		t.Errorf("scan plane dropped %d correct results", n)
	}
	if poisonRejects.Load() == 0 {
		t.Error("poison input was never rejected")
	}
	if q := svc.Quarantined(); len(q) != 1 {
		t.Errorf("quarantine set = %v, want exactly the poison key", q)
	}

	// Byte-identical delivery: the interrupted, faulted, reloaded-under
	// session reports exactly what one undisturbed pass reports.
	if len(delivered) != len(want) {
		t.Fatalf("session delivered %d reports, reference %d", len(delivered), len(want))
	}
	for i := range delivered {
		if delivered[i] != want[i] {
			t.Fatalf("report %d: %+v != reference %+v", i, delivered[i], want[i])
		}
	}

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n := pinned.StreamsOut(); n != 0 {
		t.Errorf("%d pooled streams checked out of the pinned engine", n)
	}
	if n := svc.Engine().StreamsOut(); n != 0 {
		t.Errorf("%d pooled streams checked out of the live engine", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d → %d across the soak", before, after)
	}
}

func isPanicErr(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
