package bvap

// Serving-path tracing: the exact-energy property across every modeled
// architecture, the flight-recorder integration of Service.Scan and
// streaming sessions, and the disabled-path zero-allocation pin.

import (
	"context"
	"strings"
	"testing"
	"time"

	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// TestTraceEnergyExactAcrossArchitectures is the acceptance property of
// the tracing layer's energy accounting: for every modeled architecture,
// the per-stage energy partition a tracing.EnergySink produces sums
// left-to-right to Stats.TotalEnergyPJ() bit-for-bit (==, not within an
// epsilon).
func TestTraceEnergyExactAcrossArchitectures(t *testing.T) {
	patterns := []string{"ab{2}c", "b{3}", "a{2,4}b", "cd{1,8}"}
	input := make([]byte, 4096)
	for i := range input {
		input[i] = "abcd"[i%7%4]
	}
	eng, err := Compile(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range Architectures() {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			var sim *Simulator
			var err error
			switch arch {
			case ArchBVAP, ArchBVAPStreaming:
				sim, err = eng.NewSimulator(arch)
			default:
				sim, err = NewBaselineSimulator(arch, patterns)
			}
			if err != nil {
				t.Fatal(err)
			}
			sink := sim.TraceEnergy()
			sim.Run(input)
			res := sim.Result() // finalize: terminal I/O + leakage land in the sink
			st := sim.Stats()

			tr := tracing.NewTrace("sim." + arch.String())
			p := sink.Finish(tr, st)
			if p.TotalPJ != st.TotalEnergyPJ() {
				t.Fatalf("partition TotalPJ %v != Stats.TotalEnergyPJ %v", p.TotalPJ, st.TotalEnergyPJ())
			}
			if got := p.Sum(); got != st.TotalEnergyPJ() {
				t.Fatalf("stage sum %b != TotalEnergyPJ %b (not bit-exact)", got, st.TotalEnergyPJ())
			}
			if pj, ok := tr.EnergyPJ(); !ok || pj != st.TotalEnergyPJ() {
				t.Fatalf("trace energy = %v, %v", pj, ok)
			}
			if tr.EnergyEstimated() {
				t.Fatal("simulator partition flagged as estimate")
			}
			if res.Symbols != uint64(len(input)) {
				t.Fatalf("symbols = %d", res.Symbols)
			}
			// The JSON view's stage map re-sums to the same total (map
			// iteration order doesn't matter for equality of the stored
			// values; the exactness claim is about the slice order).
			v := tr.View()
			if v.EnergyPJ != st.TotalEnergyPJ() || v.EnergyEstimated {
				t.Fatalf("view energy = %+v", v)
			}
		})
	}
}

// TestServiceScanTraced exercises the full serve-path span tree: breaker,
// admission and scan spans with a shard span nested under scan, outcome
// and generation attributes, the calibrated energy estimate, the
// flight-recorder ring, and the exemplar-carrying histograms.
func TestServiceScanTraced(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := tracing.NewRecorder(tracing.Config{Capacity: 16})
	svc, err := NewService([]string{"ab{2}c", "b{3}"}, &ServiceConfig{
		Metrics:        reg,
		FlightRecorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	input := []byte("xxabbcxxbbbxx")
	ms, err := svc.Scan(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	if rec.Recorded() != 1 {
		t.Fatalf("recorded = %d, want 1", rec.Recorded())
	}
	tr := rec.Recent()[0]
	v := tr.View()
	if v.Name != "service.scan" {
		t.Fatalf("trace name = %q", v.Name)
	}
	if !v.Done {
		t.Fatal("recorded trace not finished")
	}
	if v.Attrs["outcome"] != "ok" || v.Attrs["generation"] != 1 ||
		v.Attrs["input_bytes"] != len(input) || v.Attrs["matches"] != len(ms) {
		t.Fatalf("trace attrs = %v", v.Attrs)
	}
	spanNames := map[string]string{} // name -> span id
	parents := map[string]string{}
	for _, sp := range v.Spans {
		spanNames[sp.Name] = sp.SpanID
		parents[sp.Name] = sp.ParentID
		if !sp.Done {
			t.Fatalf("span %q not ended", sp.Name)
		}
	}
	for _, want := range []string{"breaker", "admission", "scan", "shard"} {
		if spanNames[want] == "" {
			t.Fatalf("missing span %q in %v", want, v.Spans)
		}
	}
	if parents["shard"] != spanNames["scan"] {
		t.Fatalf("shard span parented under %q, want the scan span", parents["shard"])
	}
	if parents["breaker"] != "" || parents["admission"] != "" || parents["scan"] != "" {
		t.Fatalf("top-level spans have parents: %v", parents)
	}

	// Calibration ran at construction, so the scan carries an energy
	// estimate and the energy histogram an exemplar.
	if !v.EnergyEstimated || v.EnergyPJ <= 0 {
		t.Fatalf("energy estimate = %v (estimated=%v)", v.EnergyPJ, v.EnergyEstimated)
	}
	rate, ok := svc.Engine().ScanEnergyEstimatePJ(len(input))
	if !ok || rate != v.EnergyPJ {
		t.Fatalf("engine estimate %v (ok=%v) != trace %v", rate, ok, v.EnergyPJ)
	}

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"bvap_serve_scan_duration_ms", "bvap_serve_scan_energy_pj"} {
		if !strings.Contains(out, name+"_count 1") {
			t.Fatalf("%s not observed:\n%s", name, out)
		}
	}
	if !strings.Contains(out, `trace_id="`+v.TraceID+`"`) {
		t.Fatalf("exemplar trace id %s missing from OpenMetrics output:\n%s", v.TraceID, out)
	}

	// Lookup and the Chrome conversion work on the recorded trace.
	if rec.Lookup(tr.ID()) != tr {
		t.Fatal("Lookup lost the trace")
	}
	sb.Reset()
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents"`) {
		t.Fatal("chrome document malformed")
	}
}

// TestServiceScanAdoptsCallerTrace: a trace already in the context (the
// bvapd per-request trace) is used as-is — the service neither starts nor
// records its own.
func TestServiceScanAdoptsCallerTrace(t *testing.T) {
	rec := tracing.NewRecorder(tracing.Config{})
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{FlightRecorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, tr := rec.StartTrace(context.Background(), "request")
	if _, err := svc.Scan(ctx, []byte("abbc")); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() != 0 {
		t.Fatalf("service recorded the caller's trace (recorded=%d)", rec.Recorded())
	}
	v := tr.View()
	if v.Attrs["outcome"] != "ok" {
		t.Fatalf("caller trace missing scan attrs: %v", v.Attrs)
	}
	rec.Record(tr)
	if rec.Recorded() != 1 {
		t.Fatal("caller-owned Record failed")
	}
}

// TestServiceScanQuarantinePinsTrace: a watchdog-stalled scan both trips
// the breaker path attributes and, with a tight latency budget, lands in
// the recorder's black box.
func TestServiceScanLatencyBudgetPin(t *testing.T) {
	rec := tracing.NewRecorder(tracing.Config{LatencyBudget: time.Nanosecond})
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{FlightRecorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Scan(context.Background(), []byte("abbc")); err != nil {
		t.Fatal(err)
	}
	if rec.PinnedTotal() != 1 {
		t.Fatalf("pinned = %d, want 1 (every real scan exceeds 1ns)", rec.PinnedTotal())
	}
	if p, reason := rec.Pinned()[0].Pinned(); !p || reason != "latency_budget" {
		t.Fatalf("pin reason = %v/%q", p, reason)
	}
}

// TestStreamSessionTraced: session feeds carry feed and checkpoint spans
// and the rewind path stamps its reason on the trace.
func TestStreamSessionTraced(t *testing.T) {
	rec := tracing.NewRecorder(tracing.Config{Capacity: 8})
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{FlightRecorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ss, err := svc.NewSession(&SessionConfig{CheckpointInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Feed(context.Background(), []byte("xxabbcxxabbcxxab")); err != nil {
		t.Fatal(err)
	}
	ss.Close()
	if rec.Recorded() != 1 {
		t.Fatalf("recorded = %d, want 1", rec.Recorded())
	}
	v := rec.Recent()[0].View()
	if v.Name != "session.feed" || v.Attrs["outcome"] != "ok" || v.Attrs["generation"] != 1 {
		t.Fatalf("feed trace = %+v", v)
	}
	feeds, checkpoints := 0, 0
	for _, sp := range v.Spans {
		switch sp.Name {
		case "feed":
			feeds++
		case "checkpoint":
			if sp.Attrs["delivered"] == nil || sp.Attrs["position"] == nil {
				t.Fatalf("checkpoint span attrs = %v", sp.Attrs)
			}
			checkpoints++
		}
	}
	// 16 bytes at interval 8: two feed sub-intervals, two commits.
	if feeds != 2 || checkpoints != 2 {
		t.Fatalf("feeds=%d checkpoints=%d, want 2/2", feeds, checkpoints)
	}

	// Rewind path: a panicking feed hook stamps the rewind attributes.
	ss2, err := svc.NewSession(&SessionConfig{CheckpointInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	sessionFeedHook = func(base int, data []byte) { panic("injected feed fault") }
	defer func() { sessionFeedHook = nil }()
	if err := ss2.Feed(context.Background(), []byte("abbcabbc")); err == nil {
		t.Fatal("injected fault did not surface")
	}
	sessionFeedHook = nil
	v2 := rec.Recent()[0].View()
	if v2.Attrs["outcome"] != "rewind" || v2.Attrs["rewind_pos"] != 0 {
		t.Fatalf("rewind trace attrs = %v", v2.Attrs)
	}
}

// TestServiceScanTracingDisabledAllocationFree pins the pure tracing
// surface of a scan — context lookup, span creation, attribute setting,
// recorder interaction — at 0 allocs/op when no recorder is configured.
// (Service.Scan as a whole allocates for its quarantine input key and
// match storage regardless of tracing; the contract here is that tracing
// adds nothing.)
func TestServiceScanTracingDisabledAllocationFree(t *testing.T) {
	var rec *tracing.Recorder
	ctx := context.Background()
	work := func() {
		ctx2, tr := rec.StartTrace(ctx, "service.scan")
		tr.SetInt("input_bytes", 4096)
		_, bsp := tracing.StartSpan(ctx2, "breaker")
		bsp.End()
		_, asp := tracing.StartSpan(ctx2, "admission")
		asp.End()
		sctx, ssp := tracing.StartSpan(ctx2, "scan")
		_, shsp := tracing.StartSpan(sctx, "shard")
		shsp.SetInt("attempt", 0)
		shsp.End()
		ssp.End()
		tr.SetStr("outcome", "ok")
		_ = tr.IDString()
		rec.Record(tr)
	}
	work()
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Fatalf("disabled tracing surface allocates %v allocs/op, want 0", allocs)
	}
}

// TestServiceUntracedScanStillWorks: no recorder, no registry — the
// fully-disabled configuration scans as before.
func TestServiceUntracedScanStillWorks(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ms, err := svc.Scan(context.Background(), []byte("xxabbc"))
	if err != nil || len(ms) != 1 {
		t.Fatalf("scan = %v, %v", ms, err)
	}
	// Calibration still priced the engine (it is independent of tracing).
	if _, ok := svc.Engine().ScanEnergyEstimatePJ(10); !ok {
		t.Fatal("default service not calibrated")
	}
	// And an uncalibrated engine reports none.
	eng, err := Compile([]string{"ab{2}c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.ScanEnergyEstimatePJ(10); ok {
		t.Fatal("bare engine claims an energy estimate")
	}
}

// TestServiceCalibrationDisabled: EnergyProbeSymbols < 0 turns the
// pre-publish calibration off.
func TestServiceCalibrationDisabled(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{EnergyProbeSymbols: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, ok := svc.Engine().ScanEnergyEstimatePJ(10); ok {
		t.Fatal("calibration ran despite EnergyProbeSymbols < 0")
	}
}

// TestFindAllParallelTraceAttrs: the chunked scan stamps chunk count and
// seam window (or the fallback reason) on the active trace.
func TestFindAllParallelTraceAttrs(t *testing.T) {
	eng, err := Compile([]string{"ab{2}c"})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 3*DefaultChunkSize)
	for i := range input {
		input[i] = "abc x"[i%5]
	}
	rec := tracing.NewRecorder(tracing.Config{})
	ctx, tr := rec.StartTrace(context.Background(), "parallel")
	if _, err := eng.FindAllParallel(ctx, input, nil); err != nil {
		t.Fatal(err)
	}
	v := tr.View()
	if v.Attrs["chunks"] == nil || v.Attrs["seam_window"] == nil {
		t.Fatalf("parallel trace attrs = %v", v.Attrs)
	}
	chunkSpans := 0
	for _, sp := range v.Spans {
		if sp.Name == "chunk" {
			chunkSpans++
		}
	}
	if chunkSpans != v.Attrs["chunks"] {
		t.Fatalf("chunk spans = %d, attr = %v", chunkSpans, v.Attrs["chunks"])
	}

	// Short input: fallback reason instead.
	ctx2, tr2 := rec.StartTrace(context.Background(), "parallel")
	if _, err := eng.FindAllParallel(ctx2, []byte("xxabbc"), nil); err != nil {
		t.Fatal(err)
	}
	if got := tr2.View().Attrs["parallel_fallback"]; got != "short_input" {
		t.Fatalf("fallback attr = %v", got)
	}
}
