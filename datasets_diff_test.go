package bvap

import (
	"testing"

	"bvap/internal/swmatch"
)

// TestDatasetsDifferentialMatchSets pushes every dataset profile through
// the engine's FindAll and asserts the exact (pattern, end) match SET —
// not just the count — against the independent swmatch reference, pattern
// by pattern. This is stricter than the count conformance the rebar suite
// checks: two engines can agree on totals while disagreeing on which
// pattern matched where. Small enough to run in -short mode; the
// long-form cross-architecture sweep lives in TestIntegrationAllDatasets.
func TestDatasetsDifferentialMatchSets(t *testing.T) {
	sample, inputLen := 24, 2048
	if testing.Short() {
		sample, inputLen = 12, 1024
	}
	for _, ds := range Datasets() {
		ds := ds
		t.Run(ds.Name(), func(t *testing.T) {
			patterns := ds.Patterns(sample)
			input := ds.Input(inputLen, patterns)

			engine, err := Compile(patterns)
			if err != nil {
				t.Fatal(err)
			}
			rep := engine.Report()

			got := map[Match]bool{}
			for _, m := range engine.FindAll(input) {
				got[m] = true
			}

			want := map[Match]bool{}
			refMatches := 0
			for i, pr := range rep.Patterns {
				if !pr.Supported {
					continue
				}
				ref, err := swmatch.New(patterns[i])
				if err != nil {
					t.Fatalf("swmatch rejects supported pattern %q: %v", patterns[i], err)
				}
				for _, end := range ref.MatchEnds(input) {
					want[Match{Pattern: i, End: end}] = true
					refMatches++
				}
			}

			for m := range want {
				if !got[m] {
					t.Errorf("FindAll missed pattern %d (%q) ending at %d",
						m.Pattern, patterns[m.Pattern], m.End)
				}
			}
			for m := range got {
				if !want[m] {
					t.Errorf("FindAll reported pattern %d (%q) ending at %d; reference does not",
						m.Pattern, patterns[m.Pattern], m.End)
				}
			}
			if len(want) == 0 {
				t.Fatalf("reference found no matches in %s corpus — workload degenerate", ds.Name())
			}
		})
	}
}
