package bvap

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
)

// TestFaultNilPlanGolden pins the zero-cost promise of the fault subsystem
// from the outside: with no fault plan injected, the whole pipeline —
// compile, run, energy/area/throughput accounting, component breakdown —
// produces byte-identical output to the golden capture taken before the
// fault hooks existed. Any drift here means the nil path is no longer free.
func TestFaultNilPlanGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fault_nil_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	patterns := []string{"ab{3}c", "a(.a){3}b", "x{2,30}y", "(?i)get /[a-z]{8}", "^hdr.{10}z"}
	eng, err := Compile(patterns)
	if err != nil {
		t.Fatal(err)
	}
	alpha := "abcxyget /hdrz "
	input := make([]byte, 4096)
	s := uint32(12345)
	for i := range input {
		s = s*1664525 + 1013904223
		input[i] = alpha[int(s)%len(alpha)]
	}
	var got bytes.Buffer
	for _, arch := range []Architecture{ArchBVAP, ArchBVAPStreaming} {
		sim, err := eng.NewSimulator(arch)
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(input)
		r := sim.Result()
		fmt.Fprintf(&got, "%s|%d|%d|%d|%d|%.10g|%.10g|%.10g|%.10g\n",
			r.Architecture, r.Symbols, r.Cycles, r.Matches, r.StallCycles,
			r.EnergyPerSymbolNJ, r.AreaMm2, r.ThroughputGbps, r.FoM)
		got.WriteString(sim.Breakdown())
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("nil-fault-plan output drifted from golden capture.\n--- got ---\n%s--- want ---\n%s",
			got.Bytes(), want)
	}
}

// TestFaultRunResilientDeterminism pins seed-level reproducibility at the
// public API: two simulators with the same plan and input produce identical
// resilience reports, fault counters and fault traces.
func TestFaultRunResilientDeterminism(t *testing.T) {
	patterns := []string{"ab{3}c", "x{2,30}y", "(?i)get /[a-z]{8}"}
	input := make([]byte, 1<<14)
	s := uint32(99)
	alpha := "abxyget /cz"
	for i := range input {
		s = s*1664525 + 1013904223
		input[i] = alpha[int(s)%len(alpha)]
	}
	run := func() (ResilienceReport, []FaultEvent) {
		e := MustCompile(patterns)
		sim, err := e.NewSimulator(ArchBVAP)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectFaults(UniformFaultPlan(17, 2e-3, true)); err != nil {
			t.Fatal(err)
		}
		rep, err := sim.RunResilient(context.Background(), input, ResilienceConfig{
			Window: 256, MaxRetries: 2, CrossCheck: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, sim.FaultTrace()
	}
	ra, ta := run()
	rb, tb := run()
	if ra != rb {
		t.Fatalf("reports diverge:\n a=%+v\n b=%+v", ra, rb)
	}
	if ra.Faults.TotalInjected() == 0 {
		t.Fatal("no faults injected; determinism test is vacuous")
	}
	if ra.Windows == 0 || ra.Retries == 0 {
		t.Fatalf("harness did not exercise recovery: %+v", ra)
	}
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace[%d] diverges: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}
